//! Umbrella crate for the SSMDVFS reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency. See the workspace `README.md` and `DESIGN.md` for the
//! architecture, and the member crates for the real APIs:
//!
//! * [`gpu_sim`] — cycle-approximate SIMT GPU timing simulator (GPGPU-Sim stand-in)
//! * [`gpu_power`] — component-level power/energy/EDP model (McPAT stand-in)
//! * [`gpu_workloads`] — synthetic Rodinia/Parboil/PolyBench benchmark suite
//! * [`tinynn`] — from-scratch MLP training/compression library
//! * [`ssmdvfs`] — the paper's contribution: datagen, models, controller, ASIC model
//! * [`dvfs_baselines`] — PCSTALL, F-LEMMA, ondemand, static and oracle governors
//!
//! # Examples
//!
//! A one-minute tour — simulate a benchmark, then ask what an analytical
//! governor would have saved:
//!
//! ```
//! use ssmdvfs_repro::dvfs_baselines::{PcstallConfig, PcstallGovernor};
//! use ssmdvfs_repro::gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
//! use ssmdvfs_repro::gpu_workloads::by_name;
//!
//! let cfg = GpuConfig::small_test();
//! let bench = by_name("lbm").expect("part of the suite").scaled(0.05);
//! let horizon = Time::from_micros(10_000.0);
//!
//! let mut base_sim = Simulation::new(cfg.clone(), bench.workload().clone());
//! let mut base_gov = StaticGovernor::default_point(&cfg.vf_table);
//! let base = base_sim.run(&mut base_gov, horizon).edp_report();
//!
//! let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
//! let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
//! let tuned = sim.run(&mut governor, horizon).edp_report();
//!
//! assert!(tuned.normalized_edp(&base) < 1.0, "DVFS saves EDP on memory-bound work");
//! ```

pub use dvfs_baselines;
pub use gpu_power;
pub use gpu_sim;
pub use gpu_workloads;
pub use ssmdvfs;
pub use tinynn;
