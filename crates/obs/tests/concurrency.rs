//! The metrics registry must be exact under contention: counters and
//! histograms are the inputs to SLO gates and rate windows, so a lost
//! increment is a wrong answer, not just noise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::metrics::Registry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N writer threads hammering one counter and one histogram: the final
    /// snapshot must account for every single increment and observation.
    #[test]
    fn concurrent_writers_never_lose_increments(
        threads in 2usize..6,
        per_thread in 100u64..2_000,
        step in 1u64..5,
    ) {
        obs::set_enabled(true);
        let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
        let counter = registry.counter("prop.hits");
        let histogram = registry.histogram("prop.latency");
        let start = Arc::new(AtomicBool::new(false));

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = Arc::clone(&counter);
                let histogram = Arc::clone(&histogram);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    while !start.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    for i in 0..per_thread {
                        counter.inc(step);
                        // Spread observations across buckets so merging
                        // is exercised, not just one hot bucket.
                        histogram.record(((t as u64 * 131 + i) % 4096) as f64);
                    }
                })
            })
            .collect();
        start.store(true, Ordering::Release);
        for handle in handles {
            handle.join().expect("writer thread panicked");
        }

        let snapshot = registry.snapshot();
        let expected = threads as u64 * per_thread;
        prop_assert_eq!(
            snapshot.counters.get("prop.hits").copied(),
            Some(expected * step),
            "counter lost increments"
        );
        let hist = snapshot.histograms.get("prop.latency").expect("histogram present");
        prop_assert_eq!(hist.count, expected, "histogram lost observations");
        let bucket_total: u64 = hist.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, expected, "bucket counts disagree with total");
    }

    /// Concurrent gauge writers: the last write wins, but the final value
    /// must be one of the values actually written (no torn f64 reads).
    #[test]
    fn concurrent_gauge_writes_are_never_torn(threads in 2usize..6, writes in 50u64..500) {
        obs::set_enabled(true);
        let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
        let gauge = registry.gauge("prop.level");
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gauge = Arc::clone(&gauge);
                std::thread::spawn(move || {
                    for i in 0..writes {
                        gauge.set(t as f64 + i as f64 / 1000.0);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("writer thread panicked");
        }
        let value = registry.snapshot().gauges.get("prop.level").copied().expect("gauge present");
        let plausible = (0..threads)
            .any(|t| (0..writes).any(|i| value == t as f64 + i as f64 / 1000.0));
        prop_assert!(plausible, "gauge read a value nobody wrote: {value}");
    }
}
