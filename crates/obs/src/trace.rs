//! Span-based tracing into per-thread ring buffers, exported as Chrome
//! `trace_event` JSON.
//!
//! Each thread records completed spans into its own bounded [`Ring`] — a
//! push takes the thread's *own* uncontended mutex, never a global one —
//! and a global drain collects every thread's events for export. The
//! export format is the Chrome Trace Event "JSON object format"
//! (`{"traceEvents": [...]}` with `ph: "X"` complete events), loadable
//! directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Spans are RAII guards: opening records the start instant, dropping
//! records the event. When observability is disabled ([`crate::enabled`]),
//! [`crate::span!`] produces a no-op guard without formatting the name or
//! reading the clock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ring::Ring;

/// Default per-thread event-ring capacity (newest events win).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One completed span, timestamped in microseconds relative to the first
/// observation of the process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span name (e.g. `replay:lbm#3@op2`).
    pub name: String,
    /// Category (e.g. `datagen`, `exec`, `train`, `sim`).
    pub cat: String,
    /// Start, µs since the trace epoch.
    pub ts_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Recording thread's trace id.
    pub tid: u64,
}

struct ThreadBuf {
    tid: u64,
    name: String,
    ring: Mutex<Ring<TraceEvent>>,
}

static BUFS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch.
fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Sets the ring capacity used by threads that have not yet recorded a
/// span (existing thread buffers keep their capacity).
pub fn set_thread_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

fn local_buf() -> Arc<ThreadBuf> {
    thread_local! {
        static LOCAL: Arc<ThreadBuf> = {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_string);
            let buf = Arc::new(ThreadBuf {
                tid,
                name,
                ring: Mutex::new(Ring::new(RING_CAPACITY.load(Ordering::Relaxed))),
            });
            BUFS.lock().expect("trace buffer registry poisoned").push(Arc::clone(&buf));
            buf
        };
    }
    LOCAL.with(Arc::clone)
}

/// An in-flight span; records a [`TraceEvent`] when dropped.
///
/// Construct through [`crate::span!`] (which skips name formatting while
/// disabled) or [`span`].
#[must_use = "a span measures the scope it lives in"]
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    cat: &'static str,
    start_us: f64,
}

impl Span {
    /// A no-op span (what [`crate::span!`] yields while disabled).
    pub fn disabled() -> Span {
        Span { inner: None }
    }
}

/// Opens a span; the returned guard records the event on drop. Returns a
/// no-op guard while observability is disabled.
pub fn span(name: impl Into<String>, cat: &'static str) -> Span {
    if !crate::enabled() {
        return Span::disabled();
    }
    Span { inner: Some(SpanInner { name: name.into(), cat, start_us: now_us() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let end = now_us();
        let buf = local_buf();
        let event = TraceEvent {
            name: inner.name,
            cat: inner.cat.to_string(),
            ts_us: inner.start_us,
            dur_us: (end - inner.start_us).max(0.0),
            tid: buf.tid,
        };
        buf.ring.lock().expect("trace ring poisoned").push(event);
    }
}

/// Records an instantaneous (zero-duration) event.
pub fn instant(name: impl Into<String>, cat: &'static str) {
    if !crate::enabled() {
        return;
    }
    let buf = local_buf();
    let event = TraceEvent {
        name: name.into(),
        cat: cat.to_string(),
        ts_us: now_us(),
        dur_us: 0.0,
        tid: buf.tid,
    };
    buf.ring.lock().expect("trace ring poisoned").push(event);
}

/// Collects (and clears) every thread's retained events, sorted by start
/// time, together with the `(tid, thread name)` table.
///
/// # Panics
///
/// Panics if a trace buffer lock is poisoned.
pub fn drain() -> (Vec<TraceEvent>, Vec<(u64, String)>) {
    let bufs = BUFS.lock().expect("trace buffer registry poisoned");
    let mut events = Vec::new();
    let mut threads = Vec::new();
    for buf in bufs.iter() {
        threads.push((buf.tid, buf.name.clone()));
        events.extend(buf.ring.lock().expect("trace ring poisoned").drain());
    }
    events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    (events, threads)
}

/// Drains every buffer and renders the Chrome Trace Event JSON object
/// format: complete (`ph: "X"`) events plus `thread_name` metadata, ready
/// for `chrome://tracing` / Perfetto.
///
/// # Panics
///
/// Panics if a trace buffer lock is poisoned.
pub fn chrome_trace_json() -> String {
    use serde::Value;
    let (events, threads) = drain();
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + threads.len());
    for (tid, name) in threads {
        let mut args = serde::Map::new();
        args.insert("name".into(), Value::String(name));
        let mut m = serde::Map::new();
        m.insert("ph".into(), Value::String("M".into()));
        m.insert("name".into(), Value::String("thread_name".into()));
        m.insert("pid".into(), Value::Number(serde::Number::U(1)));
        m.insert("tid".into(), Value::Number(serde::Number::U(tid)));
        m.insert("args".into(), Value::Object(args));
        out.push(Value::Object(m));
    }
    for e in events {
        let mut m = serde::Map::new();
        m.insert("ph".into(), Value::String("X".into()));
        m.insert("name".into(), Value::String(e.name));
        m.insert("cat".into(), Value::String(e.cat));
        m.insert("ts".into(), Value::Number(serde::Number::F(e.ts_us)));
        m.insert("dur".into(), Value::Number(serde::Number::F(e.dur_us)));
        m.insert("pid".into(), Value::Number(serde::Number::U(1)));
        m.insert("tid".into(), Value::Number(serde::Number::U(e.tid)));
        out.push(Value::Object(m));
    }
    let mut root = serde::Map::new();
    root.insert("traceEvents".into(), Value::Array(out));
    root.insert("displayTimeUnit".into(), Value::String("ms".into()));
    serde_json::to_string(&Value::Object(root)).expect("trace serialization")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_enabled(false);
        {
            let _s = span("ignored", "test");
        }
        // The shared buffers may hold events from other tests; a disabled
        // span must simply not add one with this name.
        let (events, _) = drain();
        assert!(events.iter().all(|e| e.name != "ignored"));
    }

    #[test]
    fn spans_nest_and_export_as_chrome_trace() {
        crate::set_enabled(true);
        {
            let _outer = span("outer-span-test", "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span("inner-span-test", "test");
        }
        let json = chrome_trace_json();
        crate::set_enabled(false);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("outer-span-test"));
        assert!(json.contains("inner-span-test"));
        assert!(json.contains("thread_name"));
        // The export must be valid JSON.
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let outer = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("outer-span-test"))
            .expect("outer event present");
        assert_eq!(outer.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(outer.get("dur").and_then(serde::Value::as_f64).unwrap() >= 1_000.0);
    }

    #[test]
    fn cross_thread_events_all_drain() {
        crate::set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span(format!("worker-span-{i}"), "test");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (events, _) = drain();
        crate::set_enabled(false);
        for i in 0..4 {
            assert!(
                events.iter().any(|e| e.name == format!("worker-span-{i}")),
                "worker {i}'s span must survive its thread"
            );
        }
    }
}
