//! A minimal leveled logger writing to stderr.
//!
//! Library crates in this workspace must not print directly (CI rejects
//! stray `println!`/`eprintln!` in library code); they log through the
//! [`crate::error!`], [`crate::warn!`], [`crate::info!`] and
//! [`crate::debug!`] macros instead, and the CLI/bench binaries pick the
//! threshold via `--log-level`. Unlike metrics and tracing, logging is
//! *not* gated on [`crate::enabled`] — progress output stays useful in an
//! untraced run — but each macro checks the level (one relaxed atomic
//! load) before formatting.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from silent to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No output at all.
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Progress milestones (the default).
    Info = 3,
    /// Per-step detail for debugging.
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global log threshold; messages above it are dropped before
/// formatting.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log threshold.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level != Level::Off && level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Parses a `--log-level` value (`off`, `error`, `warn`, `info`, `debug`;
/// case-insensitive).
///
/// # Errors
///
/// Returns the unrecognized input.
pub fn parse_level(s: &str) -> Result<Level, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(Level::Off),
        "error" => Ok(Level::Error),
        "warn" | "warning" => Ok(Level::Warn),
        "info" => Ok(Level::Info),
        "debug" | "trace" => Ok(Level::Debug),
        other => Err(format!("unknown log level '{other}' (off|error|warn|info|debug)")),
    }
}

/// Writes one formatted message to stderr. Called by the logging macros
/// after the level check; prefer those over calling this directly.
pub fn write(level: Level, args: fmt::Arguments<'_>) {
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    // A failed stderr write (closed pipe) is not worth crashing over.
    let _ = writeln!(lock, "[{}] {}", level.tag(), args);
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($fmt:tt)+) => {
        if $crate::log::level_enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, format_args!($($fmt)+));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($fmt:tt)+) => {
        if $crate::log::level_enabled($crate::log::Level::Warn) {
            $crate::log::write($crate::log::Level::Warn, format_args!($($fmt)+));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($fmt:tt)+) => {
        if $crate::log::level_enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, format_args!($($fmt)+));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($fmt:tt)+) => {
        if $crate::log::level_enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, format_args!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_threshold() {
        assert!(Level::Error < Level::Debug);
        set_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        set_level(Level::Off);
        assert!(!level_enabled(Level::Error));
        set_level(Level::Info);
        assert!(level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(parse_level("OFF").unwrap(), Level::Off);
        assert_eq!(parse_level("warning").unwrap(), Level::Warn);
        assert_eq!(parse_level("Debug").unwrap(), Level::Debug);
        assert!(parse_level("loud").is_err());
    }
}
