//! A bounded ring buffer that keeps the newest N items.
//!
//! Shared by the trace buffers (per-thread event rings) and the DVFS audit
//! trail (per-run decision ring): both want a hard memory bound with the
//! oldest entries evicted first.

/// A fixed-capacity ring keeping the most recent [`Ring::capacity`] pushes.
///
/// # Examples
///
/// ```
/// let mut r = obs::Ring::new(2);
/// r.push(1);
/// r.push(2);
/// r.push(3);
/// assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(r.total_pushed(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    cap: usize,
    total: u64,
}

impl<T> Ring<T> {
    /// Creates a ring retaining at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(1);
        Ring { buf: Vec::with_capacity(cap.min(1024)), head: 0, cap, total: 0 }
    }

    /// The maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The number of currently retained items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Appends an item, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Iterates the retained items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, linear) = self.buf.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Drains the retained items oldest-first, leaving the ring empty.
    pub fn drain(&mut self) -> Vec<T> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        buf.rotate_left(head);
        buf
    }

    /// Removes every retained item without resetting the push total.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Restores the ring to its freshly-constructed state — empty, push
    /// total zeroed — while keeping the buffer allocation, so a per-run
    /// consumer (e.g. the DVFS audit trail) can reset without reallocating.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = Ring::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_pushed(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = Ring::new(10);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn drain_returns_oldest_first_and_empties() {
        let mut r = Ring::new(2);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.drain(), vec![3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 5, "drain must not reset the push total");
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn reset_zeroes_total_but_keeps_capacity() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 0);
        assert_eq!(r.capacity(), 3);
        r.push(7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7]);
        assert_eq!(r.total_pushed(), 1);
    }

    #[test]
    fn exact_boundary_wrap() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        r.push(4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }
}
