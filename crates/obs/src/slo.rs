//! The SLO engine: declarative threshold rules over perf trajectories,
//! metrics snapshots, and DVFS audit trails.
//!
//! `ssmdvfs slo-check` evaluates a list of [`SloRule`]s against
//! [`SloInputs`] assembled by the CLI — the newest checked-in
//! `docs/perf/BENCH_*.json` point per series (the *baseline*), a freshly
//! measured point (the *current*), a `--metrics-out` snapshot, and an
//! audit JSONL — and renders a pass/fail report. A failing rule names
//! itself, so CI output reads `FAIL train-throughput: ...`.
//!
//! Rules are written in a small TOML subset ([`parse_slo_toml`]): an
//! array-of-tables `[[rule]]` per rule with scalar `key = value` pairs
//! (strings, numbers, booleans, `#` comments). Four kinds exist:
//!
//! | `kind`                  | checks                                              |
//! |-------------------------|-----------------------------------------------------|
//! | `max_regression`        | current BENCH value vs. newest baseline point       |
//! | `min_ratio`             | counter ÷ (sum of counters) from a metrics snapshot |
//! | `max_counter`           | a counter's absolute ceiling                        |
//! | `max_calibration_error` | mean \|calibration error\| over an audit trail      |
//!
//! A rule whose input is absent (no current point, counters all zero, no
//! audit) is reported `SKIP`, not `FAIL` — the gate constrains what was
//! measured, and `ssmdvfs slo-check --strict` upgrades skips to failures
//! when a pipeline must prove it measured everything.

use std::collections::BTreeMap;
use std::fmt;

use crate::audit::AuditRecord;
use crate::metrics::MetricsSnapshot;

/// Which direction of change counts as a regression for `max_regression`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (throughputs, speedups, hit counts).
    HigherIsBetter,
    /// Smaller values are better (latencies, energy, error).
    LowerIsBetter,
}

/// One declarative threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The rule's name, quoted in the violation report.
    pub name: String,
    /// What the rule checks.
    pub kind: RuleKind,
}

/// The check a rule performs. See the module docs for the TOML spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// `current[source][key]` must not regress from
    /// `baseline[source][key]` by more than `max_regression_pct` percent.
    /// Negative budgets demand improvement.
    MaxRegression {
        /// BENCH series name, e.g. `BENCH_train`.
        source: String,
        /// Numeric field inside the BENCH point, e.g. `epochs_per_sec`.
        key: String,
        /// Allowed regression, percent of the baseline value.
        max_regression_pct: f64,
        /// Which direction counts as worse.
        direction: Direction,
    },
    /// `numerator / Σ denominator` over snapshot counters must be ≥ `min`.
    MinRatio {
        /// Counter forming the numerator.
        numerator: String,
        /// Counters summed into the denominator (the numerator is usually
        /// among them, e.g. hits / (hits + misses)).
        denominator: Vec<String>,
        /// Minimum acceptable ratio.
        min: f64,
    },
    /// A snapshot counter must not exceed `max` (absent counters read 0).
    MaxCounter {
        /// Counter to bound.
        counter: String,
        /// Inclusive ceiling.
        max: f64,
    },
    /// Mean `|calibration_error|` over the audit records must be ≤
    /// `max_abs`.
    MaxCalibrationError {
        /// Inclusive ceiling on the mean absolute relative error.
        max_abs: f64,
    },
}

/// A flat numeric view of one BENCH point (booleans read 0/1).
pub type BenchPoint = BTreeMap<String, f64>;

/// Everything a rule set can be evaluated against. Any part may be
/// absent; rules that need it are skipped.
#[derive(Debug, Clone, Default)]
pub struct SloInputs {
    /// Newest trajectory point per BENCH series (`BENCH_train` → fields).
    pub baseline: BTreeMap<String, BenchPoint>,
    /// Freshly measured point per series.
    pub current: BTreeMap<String, BenchPoint>,
    /// A `--metrics-out` registry snapshot.
    pub metrics: Option<MetricsSnapshot>,
    /// Parsed audit-trail records.
    pub audit: Option<Vec<AuditRecord>>,
}

/// How one rule fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within its threshold.
    Pass,
    /// Out of threshold — the report fails.
    Fail,
    /// The input it needs was not provided or never moved.
    Skip,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Pass => "PASS",
            Status::Fail => "FAIL",
            Status::Skip => "SKIP",
        })
    }
}

/// One evaluated rule: status plus a human-readable measurement line.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// The rule's name.
    pub name: String,
    /// Pass, fail, or skip.
    pub status: Status,
    /// What was measured against what threshold.
    pub detail: String,
}

/// The full evaluation, renderable as the violation report.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One outcome per rule, in rule order.
    pub outcomes: Vec<RuleOutcome>,
    /// Whether skipped rules count as failures.
    pub strict: bool,
}

impl SloReport {
    /// Whether the gate passes (no failures; in strict mode, no skips
    /// either).
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| match o.status {
            Status::Pass => true,
            Status::Fail => false,
            Status::Skip => !self.strict,
        })
    }

    /// Names of the rules that failed (including strict-mode skips).
    pub fn violations(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.status == Status::Fail || (self.strict && o.status == Status::Skip))
            .map(|o| o.name.as_str())
            .collect()
    }
}

impl fmt::Display for SloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.outcomes {
            writeln!(f, "{} {}: {}", o.status, o.name, o.detail)?;
        }
        let failed = self.violations();
        if failed.is_empty() {
            write!(f, "SLO check passed ({} rules)", self.outcomes.len())
        } else {
            write!(f, "SLO check FAILED: {}", failed.join(", "))
        }
    }
}

fn eval_one(rule: &SloRule, inputs: &SloInputs) -> RuleOutcome {
    let (status, detail) = match &rule.kind {
        RuleKind::MaxRegression { source, key, max_regression_pct, direction } => {
            let base = inputs.baseline.get(source).and_then(|p| p.get(key));
            let cur = inputs.current.get(source).and_then(|p| p.get(key));
            match (base, cur) {
                (None, _) => (Status::Skip, format!("no baseline point for {source}.{key}")),
                (_, None) => (Status::Skip, format!("no current point for {source}.{key}")),
                (Some(&0.0), Some(_)) => (Status::Skip, format!("baseline {source}.{key} is zero")),
                (Some(&b), Some(&c)) => {
                    let regression_pct = match direction {
                        Direction::HigherIsBetter => (b - c) / b * 100.0,
                        Direction::LowerIsBetter => (c - b) / b * 100.0,
                    };
                    let status = if regression_pct <= *max_regression_pct {
                        Status::Pass
                    } else {
                        Status::Fail
                    };
                    (
                        status,
                        format!(
                            "{source}.{key} {c:.4} vs baseline {b:.4}: {regression_pct:+.1}% \
                             regression (budget {max_regression_pct:+.1}%)"
                        ),
                    )
                }
            }
        }
        RuleKind::MinRatio { numerator, denominator, min } => match &inputs.metrics {
            None => (Status::Skip, "no metrics snapshot provided".to_string()),
            Some(snap) => {
                let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
                let num = get(numerator);
                let den: u64 = denominator.iter().map(|n| get(n)).sum();
                if den == 0 {
                    (Status::Skip, format!("{} never moved", denominator.join("+")))
                } else {
                    let ratio = num as f64 / den as f64;
                    let status = if ratio >= *min { Status::Pass } else { Status::Fail };
                    (
                        status,
                        format!(
                            "{numerator}/({}) = {ratio:.3} (min {min:.3})",
                            denominator.join("+")
                        ),
                    )
                }
            }
        },
        RuleKind::MaxCounter { counter, max } => match &inputs.metrics {
            None => (Status::Skip, "no metrics snapshot provided".to_string()),
            Some(snap) => {
                let value = snap.counters.get(counter).copied().unwrap_or(0) as f64;
                let status = if value <= *max { Status::Pass } else { Status::Fail };
                (status, format!("{counter} = {value} (max {max})"))
            }
        },
        RuleKind::MaxCalibrationError { max_abs } => match &inputs.audit {
            None => (Status::Skip, "no audit trail provided".to_string()),
            Some(records) => {
                let errors: Vec<f64> =
                    records.iter().filter_map(AuditRecord::calibration_error).collect();
                if errors.is_empty() {
                    (Status::Skip, "audit trail has no calibrated epochs".to_string())
                } else {
                    let mean = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
                    let status = if mean <= *max_abs { Status::Pass } else { Status::Fail };
                    (
                        status,
                        format!(
                            "mean |calibration error| {mean:.4} over {} epochs (max {max_abs})",
                            errors.len()
                        ),
                    )
                }
            }
        },
    };
    RuleOutcome { name: rule.name.clone(), status, detail }
}

/// Evaluates `rules` against `inputs`.
pub fn evaluate(rules: &[SloRule], inputs: &SloInputs, strict: bool) -> SloReport {
    SloReport { outcomes: rules.iter().map(|r| eval_one(r, inputs)).collect(), strict }
}

/// The rules `ssmdvfs slo-check` applies when no `--slo` file is given:
/// generous regression budgets on the two BENCH throughput series, a
/// replay-cache effectiveness floor, a quarantine-drop ceiling, and a
/// calibration-error ceiling. Budgets are wide because CI containers and
/// developer machines differ; `docs/perf/slo.toml` is the checked-in,
/// tunable version of the same policy.
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "train-throughput".into(),
            kind: RuleKind::MaxRegression {
                source: "BENCH_train".into(),
                key: "epochs_per_sec".into(),
                max_regression_pct: 90.0,
                direction: Direction::HigherIsBetter,
            },
        },
        SloRule {
            name: "sim-throughput".into(),
            kind: RuleKind::MaxRegression {
                source: "BENCH_sim".into(),
                key: "skip_cycles_per_sec".into(),
                max_regression_pct: 90.0,
                direction: Direction::HigherIsBetter,
            },
        },
        SloRule {
            name: "replay-cache-hit-ratio".into(),
            kind: RuleKind::MinRatio {
                numerator: "sim.cache_hits".into(),
                denominator: vec!["sim.cache_hits".into(), "sim.cache_misses".into()],
                min: 0.5,
            },
        },
        SloRule {
            name: "quarantine-drops".into(),
            kind: RuleKind::MaxCounter { counter: "exec.quarantine_dropped".into(), max: 0.0 },
        },
        SloRule {
            name: "calibration-error".into(),
            kind: RuleKind::MaxCalibrationError { max_abs: 0.5 },
        },
    ]
}

/// Error raised while parsing an SLO rule file, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloParseError {
    /// 1-based line the error was found on (0 for end-of-file checks).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SloParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slo rules line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SloParseError {}

#[derive(Debug, Clone, PartialEq)]
enum TomlVal {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl TomlVal {
    fn type_name(&self) -> &'static str {
        match self {
            TomlVal::Str(_) => "string",
            TomlVal::Num(_) => "number",
            TomlVal::Bool(_) => "boolean",
        }
    }
}

fn parse_scalar(raw: &str, line: usize) -> Result<TomlVal, SloParseError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(SloParseError { line, message: format!("unterminated string: {raw}") });
        };
        return Ok(TomlVal::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(TomlVal::Bool(true)),
        "false" => return Ok(TomlVal::Bool(false)),
        _ => {}
    }
    raw.parse::<f64>().map(TomlVal::Num).map_err(|_| SloParseError {
        line,
        message: format!("expected a string, number or boolean, got '{raw}'"),
    })
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

struct RawRule {
    line: usize,
    fields: BTreeMap<String, (TomlVal, usize)>,
}

fn typed_rule(raw: &RawRule) -> Result<SloRule, SloParseError> {
    let field_str = |key: &str| -> Result<String, SloParseError> {
        match raw.fields.get(key) {
            Some((TomlVal::Str(s), _)) => Ok(s.clone()),
            Some((v, line)) => Err(SloParseError {
                line: *line,
                message: format!("'{key}' must be a string, got {}", v.type_name()),
            }),
            None => Err(SloParseError {
                line: raw.line,
                message: format!("rule is missing required key '{key}'"),
            }),
        }
    };
    let field_num = |key: &str| -> Result<f64, SloParseError> {
        match raw.fields.get(key) {
            Some((TomlVal::Num(n), _)) => Ok(*n),
            Some((v, line)) => Err(SloParseError {
                line: *line,
                message: format!("'{key}' must be a number, got {}", v.type_name()),
            }),
            None => Err(SloParseError {
                line: raw.line,
                message: format!("rule is missing required key '{key}'"),
            }),
        }
    };
    let name = field_str("name")?;
    let kind = field_str("kind")?;
    let kind = match kind.as_str() {
        "max_regression" => {
            let direction = match raw.fields.get("direction") {
                None => Direction::HigherIsBetter,
                Some((TomlVal::Str(s), line)) => match s.as_str() {
                    "higher_is_better" => Direction::HigherIsBetter,
                    "lower_is_better" => Direction::LowerIsBetter,
                    other => {
                        return Err(SloParseError {
                            line: *line,
                            message: format!(
                                "'direction' must be higher_is_better or lower_is_better, got '{other}'"
                            ),
                        })
                    }
                },
                Some((v, line)) => {
                    return Err(SloParseError {
                        line: *line,
                        message: format!("'direction' must be a string, got {}", v.type_name()),
                    })
                }
            };
            RuleKind::MaxRegression {
                source: field_str("source")?,
                key: field_str("key")?,
                max_regression_pct: field_num("max_regression_pct")?,
                direction,
            }
        }
        "min_ratio" => RuleKind::MinRatio {
            numerator: field_str("numerator")?,
            denominator: field_str("denominator")?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
            min: field_num("min")?,
        },
        "max_counter" => {
            RuleKind::MaxCounter { counter: field_str("counter")?, max: field_num("max")? }
        }
        "max_calibration_error" => RuleKind::MaxCalibrationError { max_abs: field_num("max_abs")? },
        other => {
            return Err(SloParseError {
                line: raw.line,
                message: format!(
                    "unknown rule kind '{other}' \
                     (max_regression|min_ratio|max_counter|max_calibration_error)"
                ),
            })
        }
    };
    Ok(SloRule { name, kind })
}

/// Parses the TOML subset described in the module docs into rules.
///
/// # Errors
///
/// Returns the first syntax or schema error with its line number.
pub fn parse_slo_toml(text: &str) -> Result<Vec<SloRule>, SloParseError> {
    let mut raws: Vec<RawRule> = Vec::new();
    for (idx, full_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(full_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            raws.push(RawRule { line: line_no, fields: BTreeMap::new() });
            continue;
        }
        if line.starts_with('[') {
            return Err(SloParseError {
                line: line_no,
                message: format!("only [[rule]] tables are supported, got '{line}'"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SloParseError {
                line: line_no,
                message: format!("expected 'key = value', got '{line}'"),
            });
        };
        let Some(rule) = raws.last_mut() else {
            return Err(SloParseError {
                line: line_no,
                message: "key/value pair before the first [[rule]]".to_string(),
            });
        };
        let key = key.trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SloParseError { line: line_no, message: format!("invalid key '{key}'") });
        }
        let value = parse_scalar(value, line_no)?;
        if rule.fields.insert(key.clone(), (value, line_no)).is_some() {
            return Err(SloParseError {
                line: line_no,
                message: format!("duplicate key '{key}' in rule"),
            });
        }
    }
    if raws.is_empty() {
        return Err(SloParseError { line: 0, message: "no [[rule]] tables found".to_string() });
    }
    raws.iter().map(typed_rule).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(fields: &[(&str, f64)]) -> BenchPoint {
        fields.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn regression_rule(budget: f64) -> SloRule {
        SloRule {
            name: "thru".into(),
            kind: RuleKind::MaxRegression {
                source: "BENCH_train".into(),
                key: "epochs_per_sec".into(),
                max_regression_pct: budget,
                direction: Direction::HigherIsBetter,
            },
        }
    }

    #[test]
    fn regression_within_and_over_budget() {
        let mut inputs = SloInputs::default();
        inputs.baseline.insert("BENCH_train".into(), bench(&[("epochs_per_sec", 100.0)]));
        inputs.current.insert("BENCH_train".into(), bench(&[("epochs_per_sec", 80.0)]));
        let report = evaluate(&[regression_rule(25.0)], &inputs, false);
        assert!(report.passed(), "{report}");
        let report = evaluate(&[regression_rule(10.0)], &inputs, false);
        assert!(!report.passed());
        assert_eq!(report.violations(), vec!["thru"]);
        assert!(report.to_string().contains("FAIL thru"), "{report}");
    }

    #[test]
    fn negative_budget_demands_improvement() {
        let mut inputs = SloInputs::default();
        inputs.baseline.insert("BENCH_train".into(), bench(&[("epochs_per_sec", 100.0)]));
        inputs.current.insert("BENCH_train".into(), bench(&[("epochs_per_sec", 105.0)]));
        assert!(evaluate(&[regression_rule(-4.0)], &inputs, false).passed());
        assert!(!evaluate(&[regression_rule(-10.0)], &inputs, false).passed());
    }

    #[test]
    fn lower_is_better_flips_the_sign() {
        let rule = SloRule {
            name: "latency".into(),
            kind: RuleKind::MaxRegression {
                source: "BENCH_train".into(),
                key: "infer_dense_ns".into(),
                max_regression_pct: 20.0,
                direction: Direction::LowerIsBetter,
            },
        };
        let mut inputs = SloInputs::default();
        inputs.baseline.insert("BENCH_train".into(), bench(&[("infer_dense_ns", 100.0)]));
        inputs.current.insert("BENCH_train".into(), bench(&[("infer_dense_ns", 110.0)]));
        assert!(evaluate(std::slice::from_ref(&rule), &inputs, false).passed());
        inputs.current.insert("BENCH_train".into(), bench(&[("infer_dense_ns", 130.0)]));
        assert!(!evaluate(std::slice::from_ref(&rule), &inputs, false).passed());
    }

    #[test]
    fn missing_inputs_skip_and_strict_mode_fails_them() {
        let inputs = SloInputs::default();
        let report = evaluate(&default_rules(), &inputs, false);
        assert!(report.passed(), "everything skips: {report}");
        assert!(report.outcomes.iter().all(|o| o.status == Status::Skip));
        let strict = evaluate(&default_rules(), &inputs, true);
        assert!(!strict.passed());
        assert_eq!(strict.violations().len(), strict.outcomes.len());
    }

    #[test]
    fn ratio_and_counter_rules_read_the_snapshot() {
        let mut inputs = SloInputs::default();
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("sim.cache_hits".into(), 9);
        snap.counters.insert("sim.cache_misses".into(), 1);
        snap.counters.insert("exec.quarantine_dropped".into(), 2);
        inputs.metrics = Some(snap);
        let rules = vec![
            SloRule {
                name: "hit-ratio".into(),
                kind: RuleKind::MinRatio {
                    numerator: "sim.cache_hits".into(),
                    denominator: vec!["sim.cache_hits".into(), "sim.cache_misses".into()],
                    min: 0.8,
                },
            },
            SloRule {
                name: "drops".into(),
                kind: RuleKind::MaxCounter { counter: "exec.quarantine_dropped".into(), max: 0.0 },
            },
        ];
        let report = evaluate(&rules, &inputs, false);
        assert_eq!(report.outcomes[0].status, Status::Pass, "{report}");
        assert_eq!(report.outcomes[1].status, Status::Fail, "{report}");
        assert_eq!(report.violations(), vec!["drops"]);
    }

    #[test]
    fn calibration_rule_averages_absolute_error() {
        let record = |predicted: Option<f32>, actual: f64| AuditRecord {
            seq: 0,
            cluster: 0,
            features: vec![],
            logits: vec![],
            preset: 0.1,
            effective_preset: 0.1,
            predicted_instructions: predicted,
            actual_instructions: actual,
            next_predicted_instructions: None,
            starved: false,
            op_index: 0,
            freq_mhz: 1000.0,
            voltage_v: 1.0,
        };
        let rule = SloRule {
            name: "calib".into(),
            kind: RuleKind::MaxCalibrationError { max_abs: 0.1501 },
        };
        // Errors: (100-90)/100 = 0.1 and (100-120)/100 = -0.2 → mean |e| 0.15.
        let mut inputs = SloInputs {
            audit: Some(vec![
                record(Some(100.0), 90.0),
                record(Some(100.0), 120.0),
                record(None, 5.0),
            ]),
            ..SloInputs::default()
        };
        assert!(evaluate(std::slice::from_ref(&rule), &inputs, false).passed());
        inputs.audit = Some(vec![record(Some(100.0), 50.0)]);
        assert!(!evaluate(std::slice::from_ref(&rule), &inputs, false).passed());
        inputs.audit = Some(vec![record(None, 5.0)]);
        let report = evaluate(std::slice::from_ref(&rule), &inputs, false);
        assert_eq!(report.outcomes[0].status, Status::Skip);
    }

    #[test]
    fn toml_subset_roundtrip() {
        let text = r##"
# SSMDVFS SLO policy.
[[rule]]
name = "train-throughput"   # trailing comment
kind = "max_regression"
source = "BENCH_train"
key = "epochs_per_sec"
max_regression_pct = 90.0

[[rule]]
name = "cache"
kind = "min_ratio"
numerator = "sim.cache_hits"
denominator = "sim.cache_hits, sim.cache_misses"
min = 0.5

[[rule]]
name = "drops"
kind = "max_counter"
counter = "exec.quarantine_dropped"
max = 0

[[rule]]
name = "calib"
kind = "max_calibration_error"
max_abs = 0.5
"##;
        let rules = parse_slo_toml(text).unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].name, "train-throughput");
        assert_eq!(
            rules[1].kind,
            RuleKind::MinRatio {
                numerator: "sim.cache_hits".into(),
                denominator: vec!["sim.cache_hits".into(), "sim.cache_misses".into()],
                min: 0.5,
            }
        );
        assert_eq!(
            rules[2].kind,
            RuleKind::MaxCounter { counter: "exec.quarantine_dropped".into(), max: 0.0 }
        );
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let e = parse_slo_toml("name = \"x\"\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.to_string().contains("before the first"), "{e}");

        let e = parse_slo_toml("[[rule]]\nname = \"x\"\nkind = \"nope\"\n").unwrap_err();
        assert!(e.to_string().contains("unknown rule kind"), "{e}");

        let e = parse_slo_toml("[[rule]]\nname = \"x\"\nkind = \"max_counter\"\n").unwrap_err();
        assert!(e.to_string().contains("missing required key 'counter'"), "{e}");

        let e = parse_slo_toml("[[rule]]\nweird value\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");

        let e = parse_slo_toml("[table]\n").unwrap_err();
        assert!(e.to_string().contains("[[rule]]"), "{e}");

        let e = parse_slo_toml("").unwrap_err();
        assert!(e.to_string().contains("no [[rule]]"), "{e}");

        let e = parse_slo_toml("[[rule]]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key"), "{e}");
    }

    #[test]
    fn comment_hash_inside_strings_survives() {
        let text =
            "[[rule]]\nname = \"has#hash\"\nkind = \"max_counter\"\ncounter = \"c\"\nmax = 1\n";
        let rules = parse_slo_toml(text).unwrap();
        assert_eq!(rules[0].name, "has#hash");
    }
}
