//! Observability layer for the SSMDVFS workspace.
//!
//! The paper's premise is microsecond-scale *visibility* — per-epoch
//! counters drive every DVFS decision — and this crate gives the
//! reproduction the same visibility into itself. Three pillars, shared by
//! every other crate in the workspace:
//!
//! 1. **Metrics** ([`metrics`]) — a lock-cheap registry of named counters,
//!    gauges and log-scale histograms with a deterministic serde-JSON
//!    snapshot format (see `docs/observability.md`).
//! 2. **Tracing** ([`trace`]) — span-based tracing into per-thread ring
//!    buffers with a global drain, exported as Chrome `trace_event` JSON
//!    loadable in `chrome://tracing` or Perfetto, so datagen fan-out,
//!    training epochs and per-breakpoint replays render as a timeline.
//! 3. **Audit** ([`audit`]) — a bounded ring of per-epoch DVFS decision
//!    records (features, logits, presets, calibrator predicted-vs-actual)
//!    emitted by the governors and dumpable as JSONL.
//!
//! A leveled stderr [`log`] rounds it out, and four modules turn the
//! registry into a *live* telemetry plane:
//!
//! * [`export`] — an embedded zero-dependency HTTP exporter
//!   (`--serve-metrics`) serving `/metrics` in Prometheus text exposition
//!   format, `/metrics.json` (the deterministic snapshot, windowed rates
//!   with `?window=N`), and `/healthz`.
//! * [`series`] — a bounded time series sampling registry deltas on a
//!   fixed interval, so scrapes and `ssmdvfs watch` can show rates
//!   (epochs/s, cache hit ratio) rather than lifetime totals.
//! * [`prof`] — a scoped phase profiler aggregating wall time by call
//!   path, exported as a per-phase table and collapsed-stack
//!   (flamegraph-compatible) text.
//! * [`slo`] — declarative SLO rules (`ssmdvfs slo-check`) evaluated
//!   against perf trajectories, metrics snapshots and audit trails.
//!
//! # Overhead discipline
//!
//! Everything is off by default. Call sites guard on the global
//! [`enabled`] flag — a single relaxed atomic load — before any
//! formatting, allocation or clock read, so instrumentation compiles to
//! near-nothing in an untraced run. The [`span!`], [`counter!`],
//! [`gauge!`] and [`histogram!`] macros build that guard (and a cached
//! registry lookup) into the call site.
//!
//! # Examples
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span!("demo", "fib(20)");
//!     obs::counter!("demo.calls").inc(1);
//! }
//! let snapshot = obs::metrics::global().snapshot();
//! assert_eq!(snapshot.counters.get("demo.calls"), Some(&1));
//! let json = obs::trace::chrome_trace_json();
//! assert!(json.contains("\"traceEvents\""));
//! # obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod log;
pub mod metrics;
pub mod prof;
pub mod ring;
pub mod series;
pub mod slo;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use audit::{summarize, AuditRecord, AuditSummary, AuditTrail};
pub use ring::Ring;

/// The global observability switch, off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording and span tracing on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability is globally enabled. Call sites check this before
/// doing any formatting or allocation; it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a [`trace::Span`] without paying for name formatting when
/// observability is disabled.
///
/// The first argument is the category (a `&'static str`), the rest is a
/// `format!` string for the span name — evaluated only when [`enabled`]
/// returns `true`.
#[macro_export]
macro_rules! span {
    ($cat:expr, $($fmt:tt)+) => {
        if $crate::enabled() {
            $crate::trace::span(format!($($fmt)+), $cat)
        } else {
            $crate::trace::Span::disabled()
        }
    };
}

/// Resolves a named counter in the global registry once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Counter>> =
            std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::metrics::global().counter($name)).as_ref()
    }};
}

/// Resolves a named gauge in the global registry once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Gauge>> =
            std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::metrics::global().gauge($name)).as_ref()
    }};
}

/// Resolves a named histogram in the global registry once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Histogram>> =
            std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::metrics::global().histogram($name)).as_ref()
    }};
}
