//! Windowed time series over the metrics registry.
//!
//! The registry's counters are lifetime totals — useful for a post-mortem
//! snapshot, useless for answering "how fast is it going *right now*".
//! A [`TimeSeries`] samples a [`Registry`](crate::metrics::Registry) on a
//! fixed interval into one bounded [`Ring`] of [`Sample`]s, and
//! [`TimeSeries::window`] turns the newest N samples into per-counter
//! deltas and rates. The embedded exporter serves this as
//! `/metrics.json?window=N`, and `ssmdvfs watch` renders it as a table.
//!
//! A [`Sampler`] runs the sampling loop on a background thread; tests can
//! instead call [`TimeSeries::sample_with_uptime`] directly for
//! deterministic timestamps.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::metrics::Registry;
use crate::ring::Ring;

/// Default number of retained samples (at the default interval, a few
/// minutes of history).
pub const DEFAULT_CAPACITY: usize = 600;

/// Default sampling interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

/// One point-in-time reading of every counter and gauge in a registry.
///
/// Histograms are deliberately excluded: rates over their totals are
/// already captured by `count`/`sum` counters and the full distribution
/// stays available in the lifetime snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Seconds since the time series was created.
    pub uptime_s: f64,
    /// Counter totals at this instant.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at this instant.
    pub gauges: BTreeMap<String, f64>,
}

/// Per-counter movement across a window: absolute delta and rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterWindow {
    /// Increase across the window (counters are monotonic; a counter that
    /// appears mid-window counts from zero).
    pub delta: u64,
    /// `delta / seconds`, 0 when the window spans no time.
    pub rate_per_s: f64,
}

/// The windowed view served as `/metrics.json?window=N`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Samples actually used (≤ the requested window).
    pub samples: usize,
    /// Wall-clock span between the first and last used sample.
    pub seconds: f64,
    /// Uptime of the newest sample, seconds since series creation.
    pub uptime_s: f64,
    /// Delta and rate per counter that moved or exists in the newest
    /// sample.
    pub counters: BTreeMap<String, CounterWindow>,
    /// Newest value per gauge.
    pub gauges: BTreeMap<String, f64>,
}

impl WindowReport {
    /// `num / (num + den)` over the window deltas of two counters —
    /// e.g. cache hits over hits+misses. `None` when nothing moved.
    pub fn delta_ratio(&self, num: &str, den: &str) -> Option<f64> {
        let n = self.counters.get(num).map_or(0, |c| c.delta);
        let d = self.counters.get(den).map_or(0, |c| c.delta);
        (n + d > 0).then(|| n as f64 / (n + d) as f64)
    }

    /// The window rate of one counter (0 when it did not move).
    pub fn rate(&self, name: &str) -> f64 {
        self.counters.get(name).map_or(0.0, |c| c.rate_per_s)
    }
}

/// A bounded history of registry samples.
pub struct TimeSeries {
    started: Instant,
    ring: Mutex<Ring<Sample>>,
}

impl TimeSeries {
    /// Creates a series retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries { started: Instant::now(), ring: Mutex::new(Ring::new(capacity)) }
    }

    /// Samples `registry` now, stamping the sample with real uptime.
    ///
    /// # Panics
    ///
    /// Panics if the series lock is poisoned.
    pub fn sample(&self, registry: &Registry) {
        self.sample_with_uptime(registry, self.started.elapsed().as_secs_f64());
    }

    /// Samples `registry` with an explicit uptime stamp (deterministic for
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if the series lock is poisoned.
    pub fn sample_with_uptime(&self, registry: &Registry, uptime_s: f64) {
        let snap = registry.snapshot();
        let sample = Sample { uptime_s, counters: snap.counters, gauges: snap.gauges };
        self.ring.lock().expect("time series poisoned").push(sample);
    }

    /// The number of retained samples.
    ///
    /// # Panics
    ///
    /// Panics if the series lock is poisoned.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("time series poisoned").len()
    }

    /// Whether no sample has been recorded yet.
    ///
    /// # Panics
    ///
    /// Panics if the series lock is poisoned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deltas and rates across the newest `window` samples (clamped to the
    /// retained history). `None` until at least one sample exists; a
    /// single-sample window reports its totals as the delta with zero
    /// rates.
    ///
    /// # Panics
    ///
    /// Panics if the series lock is poisoned.
    pub fn window(&self, window: usize) -> Option<WindowReport> {
        let ring = self.ring.lock().expect("time series poisoned");
        if ring.is_empty() {
            return None;
        }
        let used = window.clamp(1, ring.len());
        let mut iter = ring.iter().skip(ring.len() - used);
        let first = iter.next().expect("window is non-empty");
        let last = iter.last().unwrap_or(first);
        let seconds = (last.uptime_s - first.uptime_s).max(0.0);
        let mut counters = BTreeMap::new();
        for (name, &end) in &last.counters {
            // A counter absent from the first sample appeared mid-window.
            let start = if used == 1 { 0 } else { first.counters.get(name).copied().unwrap_or(0) };
            let delta = end.saturating_sub(start);
            let rate_per_s = if seconds > 0.0 { delta as f64 / seconds } else { 0.0 };
            counters.insert(name.clone(), CounterWindow { delta, rate_per_s });
        }
        Some(WindowReport {
            samples: used,
            seconds,
            uptime_s: last.uptime_s,
            counters,
            gauges: last.gauges.clone(),
        })
    }
}

/// A background thread sampling a registry into a [`TimeSeries`] on a
/// fixed interval. Dropping the sampler stops the thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` into `series` every `interval`.
    pub fn start(
        series: Arc<TimeSeries>,
        registry: &'static Registry,
        interval: Duration,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                // Sample immediately so short runs still get a first point,
                // then on every interval tick until stopped.
                series.sample(registry);
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    series.sample(registry);
                }
            })
            .expect("spawn obs-sampler thread");
        Sampler { stop, handle: Some(handle) }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(counts: &[(&str, u64)]) -> Registry {
        let r = Registry::new();
        crate::set_enabled(true);
        for &(name, n) in counts {
            r.counter(name).inc(n);
        }
        crate::set_enabled(false);
        r
    }

    #[test]
    fn window_reports_deltas_and_rates() {
        let r = registry_with(&[("a", 10), ("b", 1)]);
        let ts = TimeSeries::new(8);
        ts.sample_with_uptime(&r, 0.0);
        crate::set_enabled(true);
        r.counter("a").inc(20);
        r.counter("c").inc(4);
        crate::set_enabled(false);
        ts.sample_with_uptime(&r, 2.0);
        let w = ts.window(10).expect("two samples retained");
        assert_eq!(w.samples, 2);
        assert_eq!(w.seconds, 2.0);
        assert_eq!(w.counters["a"].delta, 20);
        assert_eq!(w.counters["a"].rate_per_s, 10.0);
        assert_eq!(w.counters["b"].delta, 0);
        assert_eq!(w.counters["c"].delta, 4, "mid-window counters count from zero");
        assert_eq!(w.rate("c"), 2.0);
        assert_eq!(w.rate("missing"), 0.0);
    }

    #[test]
    fn single_sample_window_has_zero_rates() {
        let r = registry_with(&[("a", 7)]);
        let ts = TimeSeries::new(4);
        assert!(ts.window(3).is_none(), "no samples yet");
        ts.sample_with_uptime(&r, 1.0);
        let w = ts.window(5).unwrap();
        assert_eq!(w.samples, 1);
        assert_eq!(w.seconds, 0.0);
        assert_eq!(w.counters["a"].delta, 7);
        assert_eq!(w.counters["a"].rate_per_s, 0.0);
    }

    #[test]
    fn ring_keeps_newest_samples() {
        let r = registry_with(&[]);
        let ts = TimeSeries::new(2);
        for i in 0..5 {
            ts.sample_with_uptime(&r, f64::from(i));
        }
        assert_eq!(ts.len(), 2);
        let w = ts.window(2).unwrap();
        assert_eq!(w.uptime_s, 4.0);
        assert_eq!(w.seconds, 1.0);
    }

    #[test]
    fn delta_ratio_over_hit_and_miss_counters() {
        let r = registry_with(&[("hits", 3), ("misses", 1)]);
        let ts = TimeSeries::new(4);
        ts.sample_with_uptime(&r, 0.0);
        let w = ts.window(1).unwrap();
        assert_eq!(w.delta_ratio("hits", "misses"), Some(0.75));
        assert_eq!(w.delta_ratio("none", "misses"), Some(0.0));
        assert_eq!(w.delta_ratio("none", "nada"), None);
    }

    #[test]
    fn sampler_thread_collects_and_stops() {
        let series = Arc::new(TimeSeries::new(64));
        let sampler =
            Sampler::start(Arc::clone(&series), crate::metrics::global(), Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(2);
        while series.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(sampler);
        assert!(!series.is_empty(), "sampler must record at least the immediate sample");
        let report = serde_json::to_string(&series.window(8).unwrap()).unwrap();
        assert!(report.contains("\"uptime_s\""));
    }
}
