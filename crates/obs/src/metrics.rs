//! The lock-cheap metrics registry: counters, gauges and log-scale
//! histograms with a deterministic JSON snapshot.
//!
//! Instruments are plain atomics — recording never takes the registry lock
//! (that lock is only held while *resolving* a name to an instrument, which
//! the [`crate::counter!`]-family macros do once per call site). Every
//! recording method first checks the global [`crate::enabled`] flag, so a
//! disabled run pays one relaxed load per call and nothing else.
//!
//! The snapshot format is documented in `docs/observability.md`; keys are
//! `BTreeMap`-sorted so two snapshots of the same state serialize to
//! byte-identical JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while observability is disabled).
    #[inline]
    pub fn inc(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value (no-op while observability is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one underflow bucket for values `< 1`,
/// then one per power of two, the last absorbing everything `>= 2^30`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket index a value lands in: bucket 0 holds `(-inf, 1)` (and
/// NaN), bucket `i >= 1` holds `[2^(i-1), 2^i)`, and the last bucket is
/// unbounded above.
#[inline]
pub fn bucket_index(v: f64) -> usize {
    if v < 1.0 || v.is_nan() {
        return 0;
    }
    // IEEE-754 exponent extraction: exact at bucket boundaries, where
    // `v.log2().floor()` can land on the wrong side by one ULP.
    let exp = ((v.to_bits() >> 52) & 0x7FF) as isize - 1023;
    (exp as usize + 1).min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive lower bound of bucket `i` (0 for the underflow bucket).
pub fn bucket_lower_bound(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u64 << (i - 1).min(62)) as f64
    }
}

/// A fixed-bucket, base-2 log-scale histogram.
///
/// # Examples
///
/// ```
/// obs::set_enabled(true);
/// let h = obs::metrics::Histogram::default();
/// h.record(3.0);
/// h.record(700.0);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 2);
/// assert_eq!(snap.sum, 703.0);
/// # obs::set_enabled(false);
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (no-op while observability is disabled).
    #[inline]
    pub fn record(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS loop over the f64 bit pattern; contention is negligible at
        // the recording rates the workspace produces.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let count = self.counts[i].load(Ordering::Relaxed);
                (count > 0).then(|| HistogramBucket { lo: bucket_lower_bound(i), count })
            })
            .collect();
        HistogramSnapshot {
            count: self.total.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket (`0` for the underflow bucket;
    /// the bucket spans up to the next power of two).
    pub lo: f64,
    /// Observations that landed in the bucket.
    pub count: u64,
}

/// A serialized histogram: total count, sum, and its non-empty buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Non-empty buckets, ordered by lower bound.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of every instrument in a [`Registry`].
///
/// This is the schema of the `--metrics-out` file; see
/// `docs/observability.md`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A collection of named instruments.
///
/// Most code uses the process-wide [`global`] registry through the
/// [`crate::counter!`]-family macros; tests can build private registries.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// A deterministic point-in-time copy of every instrument.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }

    /// The snapshot serialized as JSON (see `docs/observability.md`).
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serialization")
    }
}

/// The process-wide registry used by the [`crate::counter!`]-family macros.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(0.999), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1.0), 1, "1.0 opens the first scaled bucket");
        assert_eq!(bucket_index(1.999), 1);
        assert_eq!(bucket_index(2.0), 2, "powers of two start a new bucket");
        assert_eq!(bucket_index(3.999), 2);
        assert_eq!(bucket_index(4.0), 3);
        assert_eq!(bucket_index(1024.0), 11);
        assert_eq!(bucket_index(f64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        // Lower bounds line up with the index mapping: the bound itself is
        // inside the bucket, epsilon below it belongs to the bucket below.
        for i in 1..20 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} must be inside it");
            assert_eq!(bucket_index(lo * (1.0 - 1e-12)), i - 1);
        }
    }

    #[test]
    fn counters_and_gauges_record_only_when_enabled() {
        let r = Registry::new();
        let c = r.counter("x");
        let g = r.gauge("y");
        crate::set_enabled(false);
        c.inc(5);
        g.set(2.5);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        assert_eq!(g.get(), 0.0, "disabled gauge must not move");
        with_enabled(|| {
            c.inc(5);
            g.set(2.5);
        });
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let h = Histogram::default();
        with_enabled(|| {
            for v in [0.5, 1.0, 1.5, 2.0, 700.0] {
                h.record(v);
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 705.0).abs() < 1e-9);
        assert!((snap.mean() - 141.0).abs() < 1e-9);
        let by_lo: Vec<(f64, u64)> = snap.buckets.iter().map(|b| (b.lo, b.count)).collect();
        assert_eq!(by_lo, vec![(0.0, 1), (1.0, 2), (2.0, 1), (512.0, 1)]);
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let r = Registry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        with_enabled(|| {
            a.inc(1);
            b.inc(2);
        });
        assert_eq!(r.counter("same").get(), 3);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let r = Registry::new();
        with_enabled(|| {
            r.counter("zeta").inc(1);
            r.counter("alpha").inc(2);
            r.gauge("mid").set(0.5);
            r.histogram("h").record(3.0);
        });
        let a = serde_json::to_string(&r.snapshot()).unwrap();
        let b = serde_json::to_string(&r.snapshot()).unwrap();
        assert_eq!(a, b, "identical state must serialize identically");
        assert!(a.find("\"alpha\"").unwrap() < a.find("\"zeta\"").unwrap(), "keys sorted");
        let back: MetricsSnapshot = serde_json::from_str(&a).unwrap();
        assert_eq!(back, r.snapshot());
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs.test.global");
        with_enabled(|| c.inc(7));
        assert!(global().snapshot().counters["obs.test.global"] >= 7);
    }
}

#[cfg(test)]
mod bucket_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]
        /// `bucket_index` is total over every `f64` bit pattern — NaNs,
        /// infinities, negatives, subnormals and negative zero all land in
        /// a defined bucket, never out of range. Everything below 1.0
        /// (including all non-finite and sub-unit values) is the underflow
        /// bucket; finite values at or above 1.0 land in their power-of-two
        /// bucket; `+inf` saturates to the last bucket.
        #[test]
        fn bucket_index_is_total_over_all_bit_patterns(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let b = bucket_index(v);
            prop_assert!(b < HISTOGRAM_BUCKETS, "{v:e} -> bucket {b}");
            if v.is_nan() || v < 1.0 {
                prop_assert_eq!(b, 0, "{:e} must underflow", v);
            } else {
                prop_assert!(b >= 1, "{:e} must not underflow", v);
                prop_assert!(v >= bucket_lower_bound(b), "{:e} below bucket {}", v, b);
                if b < HISTOGRAM_BUCKETS - 1 {
                    prop_assert!(v < bucket_lower_bound(b + 1), "{:e} above bucket {}", v, b);
                }
            }
        }
    }

    #[test]
    fn histogram_absorbs_nasty_observations_into_underflow() {
        let h = Histogram::default();
        let nasty =
            [f64::NAN, f64::NEG_INFINITY, -1.0, -0.0, f64::MIN_POSITIVE / 2.0, f64::EPSILON];
        crate::set_enabled(true);
        for v in nasty {
            h.record(v);
        }
        crate::set_enabled(false);
        let snap = h.snapshot();
        assert_eq!(snap.count, nasty.len() as u64);
        assert_eq!(snap.buckets.first().map(|b| b.count), Some(nasty.len() as u64));
    }
}
