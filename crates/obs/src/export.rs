//! The embedded metrics exporter: a zero-dependency HTTP endpoint over
//! `std::net::TcpListener`.
//!
//! `ssmdvfs --serve-metrics <addr>` starts a [`MetricsServer`] on a
//! background thread serving three endpoints for the lifetime of the run:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   global registry: counters, gauges, and log-scale histograms with
//!   cumulative `le` buckets. Metric names swap `.` for `_`
//!   (`sim.cache_hits` → `sim_cache_hits`).
//! * `GET /metrics.json` — the registry's deterministic JSON snapshot,
//!   byte-identical to `--metrics-out`. With `?window=N` it instead
//!   returns the [`WindowReport`](crate::series::WindowReport) over the
//!   newest N samples: per-counter deltas and rates rather than lifetime
//!   totals.
//! * `GET /healthz` — `200 ok`, for liveness probes and scrape configs.
//!
//! Starting the server pre-registers the workspace's well-known
//! instruments ([`register_defaults`]) so a scrape exposes the full
//! vocabulary at zero instead of a name set that depends on which code
//! paths have already run. One request is served per connection
//! (`Connection: close`); that is exactly what Prometheus, `curl` and the
//! bundled [`http_get`] client do, and it keeps the server a single
//! accept loop with no connection state.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::{bucket_lower_bound, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS};
use crate::series::{Sampler, TimeSeries};

/// Counters every scrape should expose even before the code path that
/// increments them has run. Keeping the vocabulary stable makes
/// dashboards and the CI required-counter grep independent of workload
/// phase ordering.
pub const DEFAULT_COUNTERS: &[&str] = &[
    "bench.runs",
    "checkpoint.loaded_entries",
    "datagen.breakpoints",
    "datagen.jobs_resumed",
    "datagen.replays",
    "datagen.samples",
    "exec.quarantine_dropped",
    "exec.quarantine_retries",
    "exec.tasks_executed",
    "exec.tasks_stolen",
    "power.epoch_energy_evals",
    "rfe.parallel_tasks",
    "rfe.rounds",
    "sim.cache_hits",
    "sim.cache_misses",
    "sim.epochs",
    "sim.runs",
    "sim.skipped_cycles",
    "tinynn.train.early_stops",
    "tinynn.train.epochs",
    "train.epochs",
    "workloads.benchmarks_built",
];

/// Ensures every [`DEFAULT_COUNTERS`] name exists in `registry` (at zero
/// until incremented).
pub fn register_defaults(registry: &Registry) {
    for name in DEFAULT_COUNTERS {
        let _ = registry.counter(name);
    }
}

/// A metric name in Prometheus form: `[a-zA-Z0-9_]`, everything else
/// (dots, dashes, `#`, …) replaced by `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters render as `counter`, gauges as `gauge`, and the log-scale
/// histograms as native `histogram` metrics with cumulative buckets whose
/// `le` bounds are the power-of-two upper edges.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        // Our buckets store the inclusive *lower* bound; Prometheus wants
        // cumulative counts by exclusive-ish upper bound `le`. Bucket i
        // spans [lower(i), lower(i+1)), so its `le` is the next bucket's
        // lower bound; the final bucket is unbounded (`+Inf`).
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            let idx = (0..HISTOGRAM_BUCKETS)
                .find(|&i| bucket_lower_bound(i) == b.lo)
                .unwrap_or(HISTOGRAM_BUCKETS - 1);
            if idx + 1 < HISTOGRAM_BUCKETS {
                let le = bucket_lower_bound(idx + 1);
                out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count));
    }
    out
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A peer that hung up mid-response is its own problem, not ours.
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// The `window=N` value from a query string like `window=12&x=y`.
fn window_param(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("window="))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn handle(stream: &mut TcpStream, registry: &Registry, series: &TimeSeries) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // Read just the request head; none of our endpoints take a body.
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(stream, "405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n");
        return;
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/healthz" => respond(stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => {
            let body = prometheus_text(&registry.snapshot());
            respond(stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/metrics.json" => match window_param(query) {
            None => respond(stream, "200 OK", "application/json", &registry.snapshot_json()),
            Some(n) => {
                series.sample(registry);
                let report = series.window(n).expect("sampled just above");
                let body = serde_json::to_string_pretty(&report).expect("window serialization");
                respond(stream, "200 OK", "application/json", &body);
            }
        },
        _ => respond(
            stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /metrics.json, /metrics.json?window=N or /healthz\n",
        ),
    }
}

/// The embedded exporter: accept loop plus background registry sampler.
/// Dropping the server (or calling [`MetricsServer::shutdown`]) stops
/// both threads.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    _sampler: Sampler,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving the global registry.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        MetricsServer::start_with(addr, crate::metrics::global())
    }

    /// As [`MetricsServer::start`], for an explicit (typically test)
    /// registry. The registry gains the [`DEFAULT_COUNTERS`] immediately.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start_with(addr: &str, registry: &'static Registry) -> std::io::Result<MetricsServer> {
        register_defaults(registry);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let series = Arc::new(TimeSeries::new(crate::series::DEFAULT_CAPACITY));
        let sampler =
            Sampler::start(Arc::clone(&series), registry, crate::series::DEFAULT_INTERVAL);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("obs-exporter".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = stream {
                        handle(&mut stream, registry, &series);
                    }
                }
            })
            .expect("spawn obs-exporter thread");
        Ok(MetricsServer { addr, stop, accept_handle: Some(accept_handle), _sampler: sampler })
    }

    /// The bound address (resolves the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and sampler, waiting for both threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop only re-checks the flag on a connection; poke it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// A minimal HTTP/1.1 GET against `addr` (e.g. `127.0.0.1:9184`),
/// returning `(status_code, body)`. This is the client half of the
/// exporter protocol, shared by `ssmdvfs watch` and the tests; it relies
/// on the server closing the connection after one response.
///
/// # Errors
///
/// Returns connection or read errors, or `InvalidData` for a malformed
/// response head.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "unresolvable addr"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "response without header terminator")
    })?;
    let status =
        head.split_whitespace().nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    fn test_registry() -> &'static Registry {
        // Leak one registry per test call site: the server thread needs a
        // 'static reference and tests must not share the global registry's
        // mutable state.
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("sim.cache_hits"), "sim_cache_hits");
        assert_eq!(prometheus_name("exec.worker#3"), "exec_worker_3");
        assert_eq!(prometheus_name("9lives"), "_9lives");
    }

    #[test]
    fn prometheus_text_renders_all_instrument_kinds() {
        let r = Registry::new();
        crate::set_enabled(true);
        r.counter("sim.cache_hits").inc(3);
        r.gauge("train.val_accuracy").set(0.5);
        let h = r.histogram("sim.epoch_instructions");
        h.record(0.5);
        h.record(3.0);
        h.record(700.0);
        crate::set_enabled(false);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE sim_cache_hits counter\nsim_cache_hits 3\n"), "{text}");
        assert!(text.contains("# TYPE train_val_accuracy gauge\ntrain_val_accuracy 0.5"), "{text}");
        assert!(text.contains("# TYPE sim_epoch_instructions histogram"), "{text}");
        assert!(text.contains("sim_epoch_instructions_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("sim_epoch_instructions_bucket{le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("sim_epoch_instructions_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("sim_epoch_instructions_count 3\n"), "{text}");
        assert!(text.contains("sim_epoch_instructions_sum 703.5\n"), "{text}");
        // Exposition discipline: every non-comment line is `name value` or
        // `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "malformed line: {line}");
        }
    }

    #[test]
    fn default_counters_appear_at_zero() {
        let r = Registry::new();
        register_defaults(&r);
        let text = prometheus_text(&r.snapshot());
        for required in ["sim_cache_hits 0", "train_epochs 0", "exec_quarantine_dropped 0"] {
            assert!(text.contains(required), "missing {required} in:\n{text}");
        }
    }

    #[test]
    fn server_serves_metrics_json_and_healthz() {
        let registry = test_registry();
        let server = MetricsServer::start_with("127.0.0.1:0", registry).expect("bind");
        let addr = server.local_addr().to_string();
        crate::set_enabled(true);
        registry.counter("sim.cache_hits").inc(11);
        crate::set_enabled(false);

        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("sim_cache_hits 11"), "{body}");
        assert!(body.contains("exec_quarantine_dropped 0"), "defaults registered: {body}");

        let (status, body) = http_get(&addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        let snap: MetricsSnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(snap.counters["sim.cache_hits"], 11);
        assert_eq!(body, registry.snapshot_json(), "endpoint matches --metrics-out bytes");

        let (status, body) = http_get(&addr, "/metrics.json?window=5").unwrap();
        assert_eq!(status, 200);
        let w: crate::series::WindowReport = serde_json::from_str(&body).unwrap();
        assert!(w.samples >= 1);
        assert!(w.counters.contains_key("sim.cache_hits"), "{body}");

        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn server_rejects_non_get() {
        let server = MetricsServer::start_with("127.0.0.1:0", test_registry()).expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
