//! The DVFS decision audit trail.
//!
//! Every governor decision is an inference the paper asks us to trust at a
//! 10 µs cadence; the audit trail makes each one reviewable after the fact.
//! A governor records one [`AuditRecord`] per `decide()` call into a bounded
//! [`AuditTrail`] (a [`Ring`], so a long run keeps the newest N decisions),
//! and the trail dumps as JSONL — one record per line — for offline
//! inspection with `ssmdvfs inspect` or any line-oriented tooling.
//!
//! The record captures the full decision context: the extracted features,
//! the Decision-maker's logits and decoded class, the user preset and the
//! calibration-adjusted effective preset, the Calibrator's
//! predicted-vs-actual instruction counts for the epoch that just ended,
//! and the applied V/f operating point. Baseline governors (which have no
//! model) leave the model-specific fields empty.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ring::Ring;

/// One governor decision with its full context. Serialized as a single
/// JSONL line; see `docs/observability.md` for the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Sequence number of this decision within the trail (0-based, counts
    /// evicted records too).
    pub seq: u64,
    /// Cluster the decision applies to.
    pub cluster: usize,
    /// Feature vector fed to the Decision-maker (empty for governors
    /// without a model).
    #[serde(default)]
    pub features: Vec<f32>,
    /// Raw Decision-maker logits, one per operating point (empty for
    /// governors without a model).
    #[serde(default)]
    pub logits: Vec<f32>,
    /// The user's performance-loss preset.
    pub preset: f64,
    /// The calibration-adjusted preset actually fed to the Decision-maker.
    pub effective_preset: f64,
    /// Instruction count the Calibrator predicted for the epoch that just
    /// ended (`None` on the first epoch or for governors without one).
    #[serde(default)]
    pub predicted_instructions: Option<f32>,
    /// Instruction count the epoch actually executed.
    pub actual_instructions: f64,
    /// The Calibrator's prediction for the *next* epoch at the chosen
    /// point (`None` for governors without one).
    #[serde(default)]
    pub next_predicted_instructions: Option<f32>,
    /// Whether the epoch was starvation-dominated (excluded from
    /// calibration).
    #[serde(default)]
    pub starved: bool,
    /// Index of the chosen operating point in the V/f table.
    pub op_index: usize,
    /// Core frequency of the applied point, MHz.
    pub freq_mhz: f64,
    /// Core voltage of the applied point, volts.
    pub voltage_v: f64,
}

impl AuditRecord {
    /// Relative calibration error `(predicted − actual) / predicted` for
    /// the epoch that just ended, when a positive prediction exists and the
    /// epoch was not starved (mirrors the controller's calibration gate).
    pub fn calibration_error(&self) -> Option<f64> {
        match self.predicted_instructions {
            Some(p) if p > 0.0 && !self.starved => {
                Some((f64::from(p) - self.actual_instructions) / f64::from(p))
            }
            _ => None,
        }
    }

    /// Whether the epoch fell short of its prediction by more than the
    /// user's preset allows — the decision the calibrator exists to catch.
    pub fn preset_violation(&self) -> bool {
        self.calibration_error().is_some_and(|e| e > self.preset)
    }
}

/// A bounded per-run ring of [`AuditRecord`]s for one governor.
///
/// # Examples
///
/// ```
/// use obs::{AuditRecord, AuditTrail};
///
/// let mut trail = AuditTrail::new("static", 128);
/// trail.record(AuditRecord {
///     seq: 0,
///     cluster: 0,
///     features: vec![],
///     logits: vec![],
///     preset: 0.1,
///     effective_preset: 0.1,
///     predicted_instructions: None,
///     actual_instructions: 5_000.0,
///     next_predicted_instructions: None,
///     starved: false,
///     op_index: 5,
///     freq_mhz: 1165.0,
///     voltage_v: 1.155,
/// });
/// assert_eq!(trail.len(), 1);
/// assert!(trail.to_jsonl().contains("\"freq_mhz\""));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AuditTrail {
    governor: String,
    ring: Ring<AuditRecord>,
    next_seq: u64,
}

impl AuditTrail {
    /// Creates a trail retaining at most `capacity` records.
    pub fn new(governor: impl Into<String>, capacity: usize) -> AuditTrail {
        AuditTrail { governor: governor.into(), ring: Ring::new(capacity), next_seq: 0 }
    }

    /// Name of the governor that produced these records.
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total decisions ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.ring.total_pushed()
    }

    /// Appends a record, stamping its sequence number; the oldest record is
    /// evicted once the trail is full.
    pub fn record(&mut self, mut rec: AuditRecord) {
        rec.seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push(rec);
    }

    /// Iterates the retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditRecord> {
        self.ring.iter()
    }

    /// Resets the trail in place for a fresh run: records are dropped,
    /// sequence numbering restarts at 0, and both the configured capacity
    /// and the ring's existing allocation are preserved. Equivalent to
    /// `AuditTrail::new(self.governor(), self.capacity())` without the
    /// reallocation — governors call this from `reset()` every run.
    pub fn clear(&mut self) {
        self.ring.reset();
        self.next_seq = 0;
    }

    /// Serializes the retained records as JSONL, oldest first, one record
    /// per line with a trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.iter() {
            out.push_str(&serde_json::to_string(rec).expect("audit record serialization"));
            out.push('\n');
        }
        out
    }
}

/// Parses audit JSONL produced by [`AuditTrail::to_jsonl`]; blank lines are
/// skipped.
///
/// # Errors
///
/// Returns the underlying parse error, prefixed with the 1-based line
/// number, if any non-blank line is not a valid [`AuditRecord`].
pub fn parse_jsonl(text: &str) -> Result<Vec<AuditRecord>, serde::Error> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: AuditRecord = serde_json::from_str(line)
            .map_err(|e| serde::Error::custom(format!("line {}: {}", i + 1, e)))?;
        records.push(rec);
    }
    Ok(records)
}

/// Time the run spent at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidencyEntry {
    /// Operating-point index in the V/f table.
    pub op_index: usize,
    /// Core frequency of the point, MHz.
    pub freq_mhz: f64,
    /// Number of epochs spent at the point.
    pub epochs: u64,
    /// Fraction of all audited epochs spent at the point.
    pub fraction: f64,
}

/// Distribution of the relative calibration error over calibrated epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationErrorStats {
    /// Number of epochs with a usable (positive, non-starved) prediction.
    pub epochs: u64,
    /// Mean of `|predicted − actual| / predicted`.
    pub mean_abs: f64,
    /// Median of the absolute relative error.
    pub p50_abs: f64,
    /// 90th percentile of the absolute relative error.
    pub p90_abs: f64,
    /// Worst absolute relative error.
    pub max_abs: f64,
    /// Mean *signed* relative error; positive means the Calibrator
    /// systematically over-predicts.
    pub mean_signed: f64,
}

/// Aggregate view of an audit trail, as printed by `ssmdvfs inspect`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Number of records summarized.
    pub epochs: u64,
    /// Number of distinct clusters observed.
    pub clusters: usize,
    /// Per-frequency residency, ascending op index.
    pub residency: Vec<ResidencyEntry>,
    /// Epochs whose instruction shortfall exceeded the preset.
    pub preset_violations: u64,
    /// `preset_violations` over the calibrated-epoch count (0 when no
    /// epoch had a usable prediction).
    pub violation_fraction: f64,
    /// Calibrator error distribution (`None` when no epoch had a usable
    /// prediction).
    #[serde(default)]
    pub calibration: Option<CalibrationErrorStats>,
}

/// Nearest-rank quantile of an ascending slice, total over all `f64`
/// quantiles: `q` is clamped into `[0, 1]` (a NaN quantile reads as 0, the
/// minimum) before the float→index cast, so no `q` can index out of range
/// or ride the cast's saturation behavior.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Summarizes a slice of records: per-frequency residency,
/// preset-violation epochs, and the calibrator error distribution.
pub fn summarize(records: &[AuditRecord]) -> AuditSummary {
    use std::collections::BTreeMap;

    let mut residency: BTreeMap<usize, (f64, u64)> = BTreeMap::new();
    let mut clusters: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut violations = 0u64;
    let mut signed_errs: Vec<f64> = Vec::new();
    for rec in records {
        clusters.insert(rec.cluster);
        let entry = residency.entry(rec.op_index).or_insert((rec.freq_mhz, 0));
        entry.1 += 1;
        if let Some(err) = rec.calibration_error() {
            signed_errs.push(err);
            if rec.preset_violation() {
                violations += 1;
            }
        }
    }

    let total = records.len() as u64;
    let residency = residency
        .into_iter()
        .map(|(op_index, (freq_mhz, epochs))| ResidencyEntry {
            op_index,
            freq_mhz,
            epochs,
            fraction: if total > 0 { epochs as f64 / total as f64 } else { 0.0 },
        })
        .collect();

    let calibration = if signed_errs.is_empty() {
        None
    } else {
        let n = signed_errs.len() as f64;
        let mean_signed = signed_errs.iter().sum::<f64>() / n;
        let mut abs: Vec<f64> = signed_errs.iter().map(|e| e.abs()).collect();
        abs.sort_by(f64::total_cmp);
        Some(CalibrationErrorStats {
            epochs: signed_errs.len() as u64,
            mean_abs: abs.iter().sum::<f64>() / n,
            p50_abs: percentile(&abs, 0.5),
            p90_abs: percentile(&abs, 0.9),
            max_abs: *abs.last().expect("non-empty"),
            mean_signed,
        })
    };

    AuditSummary {
        epochs: total,
        clusters: clusters.len(),
        residency,
        preset_violations: violations,
        violation_fraction: if signed_errs.is_empty() {
            0.0
        } else {
            violations as f64 / signed_errs.len() as f64
        },
        calibration,
    }
}

impl fmt::Display for AuditSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "epochs audited: {} across {} cluster(s)", self.epochs, self.clusters)?;
        writeln!(f, "per-frequency residency:")?;
        for r in &self.residency {
            writeln!(
                f,
                "  op {:>2} @ {:>6.0} MHz: {:>8} epochs ({:>5.1} %)",
                r.op_index,
                r.freq_mhz,
                r.epochs,
                r.fraction * 100.0
            )?;
        }
        writeln!(
            f,
            "preset violations: {} ({:.2} % of calibrated epochs)",
            self.preset_violations,
            self.violation_fraction * 100.0
        )?;
        match &self.calibration {
            Some(c) => {
                writeln!(
                    f,
                    "calibrator |rel err| over {} epochs: mean {:.4}, p50 {:.4}, p90 {:.4}, max {:.4}",
                    c.epochs, c.mean_abs, c.p50_abs, c.p90_abs, c.max_abs
                )?;
                write!(f, "calibrator signed bias: {:+.4}", c.mean_signed)
            }
            None => write!(f, "calibrator: no usable predictions recorded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, op: usize, predicted: Option<f32>, actual: f64) -> AuditRecord {
        AuditRecord {
            seq,
            cluster: 0,
            features: vec![0.5, 0.25],
            logits: vec![0.1, 0.9],
            preset: 0.10,
            effective_preset: 0.08,
            predicted_instructions: predicted,
            actual_instructions: actual,
            next_predicted_instructions: Some(1_234.0),
            starved: false,
            op_index: op,
            freq_mhz: 683.0 + op as f64,
            voltage_v: 1.0,
        }
    }

    #[test]
    fn jsonl_roundtrip_preserves_records() {
        let mut trail = AuditTrail::new("test-gov", 8);
        trail.record(rec(99, 2, Some(1_000.0), 950.0));
        trail.record(rec(99, 5, None, 800.0));
        let jsonl = trail.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        let parsed = parse_jsonl(&jsonl).unwrap();
        // `record` re-stamps sequence numbers.
        assert_eq!(parsed[0].seq, 0);
        assert_eq!(parsed[1].seq, 1);
        assert_eq!(parsed[0].predicted_instructions, Some(1_000.0));
        assert_eq!(parsed[1].predicted_instructions, None);
        assert_eq!(parsed[0].features, vec![0.5, 0.25]);
    }

    #[test]
    fn trail_is_bounded_keeping_newest() {
        let mut trail = AuditTrail::new("g", 3);
        for i in 0..10 {
            trail.record(rec(0, i, None, 0.0));
        }
        assert_eq!(trail.len(), 3);
        assert_eq!(trail.total_recorded(), 10);
        let seqs: Vec<u64> = trail.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn clear_restarts_the_run_in_place() {
        let mut trail = AuditTrail::new("g", 4);
        for i in 0..6 {
            trail.record(rec(0, i, None, 0.0));
        }
        trail.clear();
        assert!(trail.is_empty());
        assert_eq!(trail.capacity(), 4, "clear must preserve capacity");
        assert_eq!(trail.total_recorded(), 0, "a cleared trail describes a fresh run");
        assert_eq!(trail.governor(), "g");
        // Sequence numbering restarts, exactly as in a new trail.
        trail.record(rec(42, 1, None, 0.0));
        assert_eq!(trail.iter().next().unwrap().seq, 0);
    }

    #[test]
    fn calibration_error_and_violations() {
        // 20 % shortfall against a 10 % preset: violation.
        let r = rec(0, 0, Some(1_000.0), 800.0);
        assert!((r.calibration_error().unwrap() - 0.2).abs() < 1e-9);
        assert!(r.preset_violation());
        // 5 % shortfall: within preset.
        let ok = rec(0, 0, Some(1_000.0), 950.0);
        assert!(!ok.preset_violation());
        // Over-delivery is never a violation.
        let over = rec(0, 0, Some(1_000.0), 2_000.0);
        assert!(!over.preset_violation());
        // Starved epochs are excluded entirely.
        let mut starved = rec(0, 0, Some(1_000.0), 0.0);
        starved.starved = true;
        assert_eq!(starved.calibration_error(), None);
        assert!(!starved.preset_violation());
    }

    #[test]
    fn summarize_residency_and_error_stats() {
        let records = vec![
            rec(0, 0, Some(1_000.0), 1_000.0), // err 0.0
            rec(1, 0, Some(1_000.0), 900.0),   // err 0.1 (not > preset)
            rec(2, 3, Some(1_000.0), 500.0),   // err 0.5, violation
            rec(3, 3, None, 700.0),            // uncalibrated
        ];
        let s = summarize(&records);
        assert_eq!(s.epochs, 4);
        assert_eq!(s.clusters, 1);
        assert_eq!(s.residency.len(), 2);
        assert_eq!(s.residency[0].op_index, 0);
        assert_eq!(s.residency[0].epochs, 2);
        assert!((s.residency[0].fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.preset_violations, 1);
        assert!((s.violation_fraction - 1.0 / 3.0).abs() < 1e-12);
        let c = s.calibration.unwrap();
        assert_eq!(c.epochs, 3);
        assert!((c.max_abs - 0.5).abs() < 1e-9);
        assert!((c.mean_signed - 0.2).abs() < 1e-9);
    }

    #[test]
    fn summarize_handles_empty_and_uncalibrated() {
        let s = summarize(&[]);
        assert_eq!(s.epochs, 0);
        assert!(s.residency.is_empty());
        assert_eq!(s.calibration, None);
        let s2 = summarize(&[rec(0, 1, None, 10.0)]);
        assert_eq!(s2.calibration, None);
        assert_eq!(s2.violation_fraction, 0.0);
        // Display must not panic either way.
        let _ = format!("{s}\n{s2}");
    }

    #[test]
    fn parse_jsonl_reports_bad_line() {
        let err = parse_jsonl("{\"not\": \"an audit record\"}").unwrap_err();
        assert!(format!("{err:?}").contains("line 1"));
    }

    #[test]
    fn percentile_is_total_over_all_quantiles() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        // In-range quantiles index nearest-rank.
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 5.0);
        // Out-of-range quantiles clamp to the extremes instead of indexing
        // out of bounds (q > 1 used to panic; negative q saturated to 0 by
        // accident of the cast rather than by definition).
        assert_eq!(percentile(&sorted, 1.5), 5.0);
        assert_eq!(percentile(&sorted, f64::INFINITY), 5.0);
        assert_eq!(percentile(&sorted, -0.1), 1.0);
        assert_eq!(percentile(&sorted, f64::NEG_INFINITY), 1.0);
        // A NaN quantile reads as the minimum, not an arbitrary index.
        assert_eq!(percentile(&sorted, f64::NAN), 1.0);
        // The empty sample set answers 0 for every quantile.
        for q in [f64::NAN, -0.1, 0.0, 1.0, 1.5] {
            assert_eq!(percentile(&[], q), 0.0);
        }
    }
}
