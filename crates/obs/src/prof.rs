//! A scoped phase profiler: wall-time aggregated by call path.
//!
//! Tracing ([`crate::trace`]) answers "when did each span run"; the
//! profiler answers "where did the time go" without retaining one event
//! per occurrence. [`scope`] opens an RAII frame named after a phase
//! (`"datagen.replay"`, `"train.epoch"`, …); frames nest per thread into a
//! call path, and dropping a frame folds its wall time into a global
//! path-keyed table — total time, self time (total minus enclosed
//! children), call count, min/max. The table exports as:
//!
//! * [`ProfileSnapshot`] — deterministic-ordered JSON (`--profile-out`),
//!   summarized by `ssmdvfs inspect --profile`;
//! * [`collapsed`] — collapsed-stack text (`path;leaf self_µs` lines),
//!   directly consumable by `flamegraph.pl` or speedscope;
//! * [`table`] — a human-readable per-phase table.
//!
//! Profiling is gated on its own flag ([`set_profiling`]), independent of
//! [`crate::enabled`]: a metrics-only run pays one relaxed atomic load per
//! scope, and enabling the profiler must not change any computed output
//! (enforced by the datagen byte-identity proptest).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns phase profiling on or off globally.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether phase profiling is enabled (one relaxed atomic load).
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Aggregated wall time for one call path.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Times a frame with this path completed.
    pub calls: u64,
    /// Total wall nanoseconds across all calls.
    pub total_ns: u64,
    /// Wall nanoseconds not attributed to enclosed child frames.
    pub self_ns: u64,
    /// Shortest single call, nanoseconds.
    pub min_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    fn fold(&mut self, total_ns: u64, self_ns: u64) {
        self.min_ns = if self.calls == 0 { total_ns } else { self.min_ns.min(total_ns) };
        self.max_ns = self.max_ns.max(total_ns);
        self.calls += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
    }

    /// Mean wall time per call, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// The exported profile: stats keyed by `;`-joined call path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Aggregated stats per call path (e.g. `datagen;datagen.replay`).
    pub phases: BTreeMap<String, PhaseStat>,
}

static TABLE: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An in-flight profiler frame; folds its timing into the global table on
/// drop. A no-op (no clock read, no allocation) while profiling is off.
#[must_use = "a profiler scope measures the block it lives in"]
pub struct Scope {
    live: bool,
}

/// Opens a profiler frame named `name` nested under the thread's current
/// frame. Phase names should be static, low-cardinality identifiers
/// (`"datagen.replay"`, not one name per replay) — the table is keyed by
/// path, and a `;` in a name would corrupt the collapsed-stack output, so
/// it is replaced with `_`.
pub fn scope(name: &'static str) -> Scope {
    if !profiling() {
        return Scope { live: false };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame { name, start: Instant::now(), child_ns: 0 });
    });
    Scope { live: true }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else { return };
            let total_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(&f.name.replace(';', "_"));
                path.push(';');
            }
            path.push_str(&frame.name.replace(';', "_"));
            TABLE
                .lock()
                .expect("profiler table poisoned")
                .entry(path)
                .or_default()
                .fold(total_ns, self_ns);
        });
    }
}

/// A copy of the aggregated table.
///
/// # Panics
///
/// Panics if the profiler table lock is poisoned.
pub fn snapshot() -> ProfileSnapshot {
    ProfileSnapshot { phases: TABLE.lock().expect("profiler table poisoned").clone() }
}

/// Clears the aggregated table (for per-run profiling in tests/benches).
///
/// # Panics
///
/// Panics if the profiler table lock is poisoned.
pub fn reset() {
    TABLE.lock().expect("profiler table poisoned").clear();
}

/// The profile as collapsed-stack text: one `path;leaf value` line per
/// call path, value = self time in microseconds (the convention
/// `flamegraph.pl` and speedscope expect). Paths are already `;`-joined,
/// so each line is `frames... self_us`.
pub fn collapsed(profile: &ProfileSnapshot) -> String {
    let mut out = String::new();
    for (path, stat) in &profile.phases {
        out.push_str(&format!("{path} {}\n", stat.self_ns / 1_000));
    }
    out
}

/// The profile as a fixed-width per-phase table, widest total first.
pub fn table(profile: &ProfileSnapshot) -> String {
    let mut rows: Vec<(&String, &PhaseStat)> = profile.phases.iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
    let mut out = format!(
        "{:<44} {:>9} {:>12} {:>12} {:>12}\n",
        "phase", "calls", "total ms", "self ms", "mean µs"
    );
    for (path, s) in rows {
        out.push_str(&format!(
            "{:<44} {:>9} {:>12.3} {:>12.3} {:>12.1}\n",
            path,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.mean_ns() / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes profiler tests: they share the global table and flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_profiling<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_profiling(true);
        let r = f();
        set_profiling(false);
        r
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_profiling(false);
        {
            let _s = scope("never");
        }
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_attributes_self_time() {
        let snap = with_profiling(|| {
            {
                let _outer = scope("outer");
                std::thread::sleep(std::time::Duration::from_millis(4));
                {
                    let _inner = scope("inner");
                    std::thread::sleep(std::time::Duration::from_millis(4));
                }
            }
            snapshot()
        });
        let outer = &snap.phases["outer"];
        let inner = &snap.phases["outer;inner"];
        assert_eq!((outer.calls, inner.calls), (1, 1));
        assert!(outer.total_ns >= inner.total_ns, "parent total covers child");
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000,
            "outer self excludes inner: {outer:?} vs {inner:?}"
        );
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= 3_000_000, "sleep(4ms) must register");
    }

    #[test]
    fn repeated_calls_aggregate() {
        let snap = with_profiling(|| {
            for _ in 0..5 {
                let _s = scope("leaf");
            }
            snapshot()
        });
        assert_eq!(snap.phases["leaf"].calls, 5);
        assert!(snap.phases["leaf"].min_ns <= snap.phases["leaf"].mean_ns() as u64);
    }

    #[test]
    fn collapsed_and_table_render() {
        let snap = with_profiling(|| {
            {
                let _a = scope("a");
                let _b = scope("b");
            }
            snapshot()
        });
        let collapsed = collapsed(&snap);
        assert!(collapsed.contains("a;b "), "{collapsed}");
        for line in collapsed.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("collapsed value is integral µs");
        }
        let table = table(&snap);
        assert!(table.contains("phase"), "{table}");
        assert!(table.contains("a;b"), "{table}");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = with_profiling(|| {
            {
                let _s = scope("json");
            }
            snapshot()
        });
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProfileSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn sibling_threads_do_not_share_stacks() {
        let snap = with_profiling(|| {
            let t = std::thread::spawn(|| {
                let _s = scope("worker-phase");
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
            {
                let _s = scope("main-phase");
                t.join().unwrap();
            }
            snapshot()
        });
        assert!(snap.phases.contains_key("worker-phase"), "{snap:?}");
        assert!(snap.phases.contains_key("main-phase"), "{snap:?}");
        assert!(!snap.phases.keys().any(|k| k.contains("main-phase;worker-phase")));
    }
}
