//! Benchmark metadata.

use std::fmt;

use gpu_sim::Workload;
use serde::{Deserialize, Serialize};

/// Which real suite the benchmark is modeled after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Rodinia (Che et al., IISWC 2009).
    Rodinia,
    /// Parboil (Stratton et al., UIUC).
    Parboil,
    /// PolyBench/GPU (Pouchet et al.).
    Polybench,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Rodinia => "rodinia",
            Family::Parboil => "parboil",
            Family::Polybench => "polybench",
        };
        f.write_str(s)
    }
}

/// The benchmark's dominant execution character — the axis that determines
/// its frequency sensitivity and therefore its DVFS headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundedness {
    /// Arithmetic-throughput bound: slows ~proportionally with frequency.
    Compute,
    /// DRAM-bandwidth/latency bound: nearly frequency-insensitive.
    Memory,
    /// Alternating or balanced compute/memory phases.
    Mixed,
    /// Divergent, data-dependent access patterns (graph-like).
    Irregular,
}

impl fmt::Display for Boundedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Boundedness::Compute => "compute",
            Boundedness::Memory => "memory",
            Boundedness::Mixed => "mixed",
            Boundedness::Irregular => "irregular",
        };
        f.write_str(s)
    }
}

/// A named benchmark: metadata plus the executable workload specification.
///
/// # Examples
///
/// ```
/// use gpu_workloads::{by_name, Boundedness};
///
/// let sgemm = by_name("sgemm").expect("sgemm is in the suite");
/// assert_eq!(sgemm.character(), Boundedness::Compute);
/// assert!(sgemm.workload().total_instructions() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    name: String,
    family: Family,
    character: Boundedness,
    workload: Workload,
}

impl Benchmark {
    /// Creates a benchmark entry.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        character: Boundedness,
        workload: Workload,
    ) -> Benchmark {
        obs::counter!("workloads.benchmarks_built").inc(1);
        Benchmark { name: name.into(), family, character, workload }
    }

    /// The benchmark's name (matches the real suite's program name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite the benchmark models.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The benchmark's dominant execution character.
    pub fn character(&self) -> Boundedness {
        self.character
    }

    /// The executable workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Consumes the benchmark, returning its workload.
    pub fn into_workload(self) -> Workload {
        self.workload
    }

    /// Returns a copy scaled to `factor` of the standard size (CTA counts
    /// are scaled; per-warp programs are unchanged). Useful for fast tests.
    pub fn scaled(&self, factor: f64) -> Benchmark {
        Benchmark {
            name: self.name.clone(),
            family: self.family,
            character: self.character,
            workload: self.workload.with_cta_scale(factor),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.family, self.character)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior};

    fn sample() -> Benchmark {
        let k = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu], 10, 0.0)],
            2,
            100,
            MemoryBehavior::streaming(4096),
        );
        Benchmark::new(
            "demo",
            Family::Rodinia,
            Boundedness::Compute,
            Workload::new("demo", vec![k]),
        )
    }

    #[test]
    fn accessors() {
        let b = sample();
        assert_eq!(b.name(), "demo");
        assert_eq!(b.family(), Family::Rodinia);
        assert_eq!(b.character(), Boundedness::Compute);
        assert_eq!(b.workload().total_instructions(), 10 * 2 * 100);
    }

    #[test]
    fn scaling_shrinks_work() {
        let b = sample();
        let small = b.scaled(0.1);
        assert_eq!(small.workload().kernels()[0].num_ctas(), 10);
        assert_eq!(small.name(), b.name());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", sample()), "demo (rodinia, compute)");
    }
}
