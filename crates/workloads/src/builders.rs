//! Shared helpers for constructing benchmark kernels.

use gpu_sim::InstrClass;

/// Expands `(class, count)` pairs into a flat instruction sequence, e.g.
/// `mix(&[(FpAlu, 4), (LoadGlobal, 1)])` yields four FMA slots then a load.
pub(crate) fn mix(parts: &[(InstrClass, usize)]) -> Vec<InstrClass> {
    let mut out = Vec::new();
    for &(class, count) in parts {
        out.extend(std::iter::repeat_n(class, count));
    }
    out
}

/// Interleaves `(class, count)` pairs round-robin so loads are spread through
/// the block instead of clustered, e.g. `interleave(&[(FpAlu, 4),
/// (LoadGlobal, 2)])` yields `falu ldg falu falu ldg falu`.
pub(crate) fn interleave(parts: &[(InstrClass, usize)]) -> Vec<InstrClass> {
    let total: usize = parts.iter().map(|&(_, n)| n).sum();
    let mut counters = vec![0.0f64; parts.len()];
    let mut emitted = vec![0usize; parts.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        // Emit the class that is furthest behind its target proportion.
        let mut best = 0;
        let mut best_deficit = f64::MIN;
        for (i, &(_, n)) in parts.iter().enumerate() {
            if emitted[i] >= n {
                continue;
            }
            let deficit = counters[i];
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        out.push(parts[best].0);
        emitted[best] += 1;
        for (i, &(_, n)) in parts.iter().enumerate() {
            counters[i] += n as f64 / total as f64;
        }
        counters[best] -= 1.0;
        let _ = &counters;
    }
    out
}

/// Instruction budget per benchmark character, chosen so a standard-size
/// benchmark occupies a 24-cluster Titan X for roughly 300 µs at the default
/// clock (compute code retires ~2 instructions/cycle, memory-bound code far
/// fewer).
pub(crate) mod target {
    /// Compute-bound benchmarks.
    pub const COMPUTE: u64 = 5_500_000;
    /// Mixed benchmarks.
    pub const MIXED: u64 = 4_500_000;
    /// Memory-bound benchmarks.
    pub const MEMORY: u64 = 1_300_000;
    /// Irregular benchmarks.
    pub const IRREGULAR: u64 = 1_500_000;
}

/// Picks a CTA count so the whole launch is close to `target_instructions`,
/// never below one CTA per cluster of the Titan X configuration.
pub(crate) fn sized_ctas(
    instr_per_warp: u64,
    warps_per_cta: usize,
    target_instructions: u64,
) -> usize {
    let per_cta = instr_per_warp * warps_per_cta as u64;
    ((target_instructions / per_cta.max(1)) as usize).max(24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::InstrClass::*;

    #[test]
    fn mix_expands_counts() {
        let m = mix(&[(FpAlu, 3), (LoadGlobal, 1)]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.iter().filter(|c| **c == FpAlu).count(), 3);
    }

    #[test]
    fn interleave_preserves_counts_and_spreads() {
        let m = interleave(&[(FpAlu, 6), (LoadGlobal, 2)]);
        assert_eq!(m.len(), 8);
        assert_eq!(m.iter().filter(|c| **c == LoadGlobal).count(), 2);
        // Loads are not adjacent in a 3:1 interleave.
        let positions: Vec<usize> =
            m.iter().enumerate().filter(|(_, c)| **c == LoadGlobal).map(|(i, _)| i).collect();
        assert!(positions[1] - positions[0] > 1);
    }

    #[test]
    fn sized_ctas_hits_target() {
        let ctas = sized_ctas(1_000, 8, 8_000_000);
        assert_eq!(ctas, 1_000);
        // Never below 24.
        assert_eq!(sized_ctas(1_000_000, 8, 100), 24);
    }
}
