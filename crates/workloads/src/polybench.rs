//! Benchmarks modeled after PolyBench/GPU (Pouchet et al.).
//!
//! PolyBench kernels are small, regular linear-algebra loops; the compute
//! ones are tiled matrix products, the memory ones are matrix-vector sweeps
//! that stream whole matrices per output element.

use gpu_sim::InstrClass::*;
use gpu_sim::{BasicBlock, KernelSpec, MemoryBehavior, Workload};

use crate::benchmark::{Benchmark, Boundedness, Family};
use crate::builders::{interleave, mix, sized_ctas, target};

fn bench(name: &str, character: Boundedness, kernels: Vec<KernelSpec>) -> Benchmark {
    Benchmark::new(name, Family::Polybench, character, Workload::new(name, kernels))
}

fn gemm_like(name: &str, iters: u32, share: u64) -> KernelSpec {
    // Tiled matrix products have high arithmetic intensity: most operand
    // traffic hits the shared-memory/L1 tile, and only the tile loads touch
    // DRAM.
    let body = {
        let mut b = mix(&[(LoadGlobal, 1), (LoadShared, 3)]);
        b.extend(mix(&[(FpAlu, 12)]));
        b
    };
    let ipw = body.len() as u64 * iters as u64;
    KernelSpec::new(
        name,
        vec![BasicBlock::new(body, iters, 0.0)],
        8,
        sized_ctas(ipw, 8, share),
        MemoryBehavior::cache_friendly(8 << 20, 0.85),
    )
}

fn matvec_like(name: &str, iters: u32, share: u64) -> KernelSpec {
    let body = interleave(&[(LoadGlobal, 3), (FpAlu, 2), (IntAlu, 1)]);
    let ipw = body.len() as u64 * iters as u64;
    KernelSpec::new(
        name,
        vec![BasicBlock::new(body, iters, 0.0)],
        8,
        sized_ctas(ipw, 8, share),
        MemoryBehavior::streaming(64 << 20),
    )
}

/// `2mm`: two chained matrix products (`D = A·B; E = C·D`).
pub fn twomm() -> Benchmark {
    bench(
        "2mm",
        Boundedness::Compute,
        vec![
            gemm_like("2mm_k1", 100, target::COMPUTE / 2),
            gemm_like("2mm_k2", 100, target::COMPUTE / 2),
        ],
    )
}

/// `3mm`: three chained matrix products.
pub fn threemm() -> Benchmark {
    bench(
        "3mm",
        Boundedness::Compute,
        vec![
            gemm_like("3mm_k1", 90, target::COMPUTE / 3),
            gemm_like("3mm_k2", 90, target::COMPUTE / 3),
            gemm_like("3mm_k3", 90, target::COMPUTE / 3),
        ],
    )
}

/// `atax`: `y = Aᵀ(Ax)` — two matrix-vector sweeps streaming `A` twice.
pub fn atax() -> Benchmark {
    bench(
        "atax",
        Boundedness::Memory,
        vec![
            matvec_like("atax_k1", 70, target::MEMORY / 2),
            matvec_like("atax_k2", 70, target::MEMORY / 2),
        ],
    )
}

/// `bicg`: BiCGStab sub-kernels `q = Ap`, `s = Aᵀr` — matrix-vector
/// streams with disjoint access directions.
pub fn bicg() -> Benchmark {
    bench(
        "bicg",
        Boundedness::Memory,
        vec![
            matvec_like("bicg_q", 70, target::MEMORY / 2),
            matvec_like("bicg_s", 70, target::MEMORY / 2),
        ],
    )
}

/// `correlation`: mean/stddev reductions followed by the correlation-matrix
/// product — reduction phases with barriers, then a compute phase.
pub fn correlation() -> Benchmark {
    let reduce = {
        let mut body = interleave(&[(LoadGlobal, 2), (FpAlu, 3), (LoadShared, 1)]);
        body.push(Barrier);
        body.extend(mix(&[(FpAlu, 2), (Sfu, 1)]));
        let ipw = body.len() as u64 * 60;
        KernelSpec::new(
            "correlation_reduce",
            vec![BasicBlock::new(body, 60, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 2),
            MemoryBehavior::streaming(24 << 20),
        )
    };
    let corr = gemm_like("correlation_corr", 80, target::MIXED / 2);
    bench("correlation", Boundedness::Mixed, vec![reduce, corr])
}

/// `gemm`: a single dense matrix product.
pub fn gemm() -> Benchmark {
    bench("gemm", Boundedness::Compute, vec![gemm_like("gemm_kernel", 130, target::COMPUTE)])
}

/// `mvt`: `x1 = x1 + Ay; x2 = x2 + Aᵀy` — two matrix-vector sweeps.
pub fn mvt() -> Benchmark {
    bench(
        "mvt",
        Boundedness::Memory,
        vec![
            matvec_like("mvt_k1", 70, target::MEMORY / 2),
            matvec_like("mvt_k2", 70, target::MEMORY / 2),
        ],
    )
}

/// `syrk`: symmetric rank-k update `C = αAAᵀ + βC` — gemm-shaped compute
/// with a triangular iteration space (modeled as mild divergence).
pub fn syrk() -> Benchmark {
    let body = {
        let mut b = mix(&[(LoadGlobal, 1), (LoadShared, 3)]);
        b.extend(mix(&[(FpAlu, 12), (Branch, 1)]));
        b
    };
    let ipw = body.len() as u64 * 100;
    let k = KernelSpec::new(
        "syrk_kernel",
        vec![BasicBlock::new(body, 100, 0.1)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(8 << 20, 0.85),
    );
    bench("syrk", Boundedness::Compute, vec![k])
}

/// `fdtd-2d`: finite-difference time domain. Three alternating field-update
/// sweeps per timestep — stencil reads with streaming writes.
pub fn fdtd2d() -> Benchmark {
    let sweep = |name: &str| {
        let body = interleave(&[(LoadGlobal, 3), (FpAlu, 4), (StoreGlobal, 1)]);
        let ipw = body.len() as u64 * 60;
        KernelSpec::new(
            name,
            vec![BasicBlock::new(body, 60, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 3),
            MemoryBehavior::cache_friendly(32 << 20, 0.4),
        )
    };
    bench(
        "fdtd-2d",
        Boundedness::Mixed,
        vec![sweep("fdtd2d_ex"), sweep("fdtd2d_ey"), sweep("fdtd2d_hz")],
    )
}

/// `gramschmidt`: QR decomposition by Gram-Schmidt. Dot-product reductions
/// (barrier-synchronized) followed by vector updates.
pub fn gramschmidt() -> Benchmark {
    let body = {
        let mut b = interleave(&[(LoadGlobal, 2), (FpAlu, 5), (LoadShared, 1)]);
        b.push(Barrier);
        b.extend(mix(&[(FpAlu, 2), (Sfu, 1), (StoreGlobal, 1)]));
        b
    };
    let ipw = body.len() as u64 * 70;
    let k = KernelSpec::new(
        "gramschmidt_kernel",
        vec![BasicBlock::new(body, 70, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(8 << 20, 0.55),
    );
    bench("gramschmidt", Boundedness::Compute, vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_polybench_benchmarks_construct() {
        let all = [
            twomm(),
            threemm(),
            atax(),
            bicg(),
            correlation(),
            gemm(),
            mvt(),
            syrk(),
            fdtd2d(),
            gramschmidt(),
        ];
        for b in &all {
            assert_eq!(b.family(), Family::Polybench);
            assert!(b.workload().total_instructions() > 100_000, "{} too small", b.name());
        }
    }

    #[test]
    fn chained_products_have_matching_kernel_counts() {
        assert_eq!(twomm().workload().kernels().len(), 2);
        assert_eq!(threemm().workload().kernels().len(), 3);
    }

    #[test]
    fn memory_benchmarks_stream() {
        for b in [atax(), bicg(), mvt()] {
            for k in b.workload().kernels() {
                assert!(k.mem().working_set_bytes >= 32 << 20, "{} should stream", k.name());
            }
        }
    }
}
