//! Benchmarks modeled after the Rodinia suite (Che et al., IISWC 2009).
//!
//! Each function documents which real program it models and which execution
//! characteristics it reproduces: arithmetic intensity, locality, divergence
//! and phase structure.

use gpu_sim::InstrClass::*;
use gpu_sim::{BasicBlock, KernelSpec, MemoryBehavior, Workload};

use crate::benchmark::{Benchmark, Boundedness, Family};
use crate::builders::{interleave, mix, sized_ctas, target};

fn bench(name: &str, character: Boundedness, kernels: Vec<KernelSpec>) -> Benchmark {
    Benchmark::new(name, Family::Rodinia, character, Workload::new(name, kernels))
}

/// `backprop`: neural-network training. Two phases per pass — a
/// compute-heavy forward layer (FMAs over a weight matrix with good reuse)
/// and a memory-heavy weight-update sweep (streaming read-modify-write).
pub fn backprop() -> Benchmark {
    let forward = {
        let body = interleave(&[(FpAlu, 8), (LoadGlobal, 2), (LoadShared, 1)]);
        let ipw = body.len() as u64 * 120;
        KernelSpec::new(
            "backprop_forward",
            vec![BasicBlock::new(body, 120, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED * 2 / 3),
            MemoryBehavior::cache_friendly(8 << 20, 0.6),
        )
    };
    let update = {
        let body = interleave(&[(LoadGlobal, 2), (FpAlu, 2), (StoreGlobal, 1)]);
        let ipw = body.len() as u64 * 80;
        KernelSpec::new(
            "backprop_update",
            vec![BasicBlock::new(body, 80, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 3),
            MemoryBehavior::streaming(32 << 20),
        )
    };
    bench("backprop", Boundedness::Mixed, vec![forward, update])
}

/// `bfs`: breadth-first search. Graph frontier expansion — highly divergent
/// branches, data-dependent (random) neighbor loads, almost no arithmetic.
pub fn bfs() -> Benchmark {
    let body = {
        let mut b = mix(&[(LoadGlobal, 2), (IntAlu, 2), (Branch, 1)]);
        b.extend(mix(&[(LoadGlobal, 1), (IntAlu, 1), (Branch, 1)]));
        b
    };
    let ipw = body.len() as u64 * 60;
    let k = KernelSpec::new(
        "bfs_kernel",
        vec![BasicBlock::new(body, 60, 0.35)],
        6,
        sized_ctas(ipw, 6, target::IRREGULAR),
        MemoryBehavior::irregular(48 << 20, 0.7),
    );
    bench("bfs", Boundedness::Irregular, vec![k])
}

/// `gaussian`: Gaussian elimination. A sequence of dense row-reduction
/// kernels of shrinking extent; each is FMA-dominated with row reuse.
pub fn gaussian() -> Benchmark {
    let kernels = (0..3)
        .map(|step| {
            let body = interleave(&[(FpAlu, 6), (LoadGlobal, 1), (IntAlu, 1)]);
            let iters = 150 - step * 30;
            let ipw = body.len() as u64 * iters as u64;
            KernelSpec::new(
                format!("gaussian_step{step}"),
                vec![BasicBlock::new(body, iters, 0.0)],
                8,
                sized_ctas(ipw, 8, target::COMPUTE / 3),
                MemoryBehavior::cache_friendly(4 << 20, 0.5),
            )
        })
        .collect();
    bench("gaussian", Boundedness::Compute, kernels)
}

/// `hotspot`: thermal stencil. Iterative 2D stencil with shared-memory
/// tiling and per-iteration barriers; neighbors hit the cache, boundary
/// cells stream.
pub fn hotspot() -> Benchmark {
    let body = {
        let mut b = interleave(&[(LoadGlobal, 2), (LoadShared, 3), (FpAlu, 6)]);
        b.push(Barrier);
        b.extend(mix(&[(FpAlu, 2), (StoreShared, 1)]));
        b.push(Barrier);
        b
    };
    let ipw = body.len() as u64 * 50;
    let k = KernelSpec::new(
        "hotspot_kernel",
        vec![BasicBlock::new(body, 50, 0.0)],
        8,
        sized_ctas(ipw, 8, target::MIXED),
        MemoryBehavior::cache_friendly(16 << 20, 0.55),
    );
    bench("hotspot", Boundedness::Mixed, vec![k])
}

/// `kmeans`: clustering. Phase 1 streams every point against the centroid
/// table (memory + compute), phase 2 recomputes centroids (compute with
/// shared-memory reduction).
pub fn kmeans() -> Benchmark {
    let assign = {
        let body = interleave(&[(LoadGlobal, 2), (FpAlu, 4), (IntAlu, 1), (Branch, 1)]);
        let ipw = body.len() as u64 * 70;
        KernelSpec::new(
            "kmeans_assign",
            vec![BasicBlock::new(body, 70, 0.1)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 2),
            MemoryBehavior::new(24 << 20, 128, 0.1, 0.3),
        )
    };
    let update = {
        let mut body = interleave(&[(LoadShared, 2), (FpAlu, 5)]);
        body.push(Barrier);
        let ipw = body.len() as u64 * 60;
        KernelSpec::new(
            "kmeans_update",
            vec![BasicBlock::new(body, 60, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 2),
            MemoryBehavior::cache_friendly(2 << 20, 0.8),
        )
    };
    bench("kmeans", Boundedness::Mixed, vec![assign, update])
}

/// `lavaMD`: N-body within cutoff boxes. Very high arithmetic intensity —
/// the inner loop evaluates `exp()` per particle pair (SFU-heavy) over
/// shared-memory particle tiles.
pub fn lavamd() -> Benchmark {
    let body = interleave(&[(FpAlu, 8), (Sfu, 4), (LoadShared, 2)]);
    let ipw = body.len() as u64 * 100;
    let k = KernelSpec::new(
        "lavamd_kernel",
        vec![BasicBlock::new(body, 100, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(6 << 20, 0.7),
    );
    bench("lavamd", Boundedness::Compute, vec![k])
}

/// `lud`: LU decomposition. Iterative diagonal/perimeter/internal kernels;
/// modeled as a barrier-synchronized FMA-dominated sweep.
pub fn lud() -> Benchmark {
    let body = {
        let mut b = interleave(&[(FpAlu, 8), (LoadShared, 2), (LoadGlobal, 1)]);
        b.push(Barrier);
        b
    };
    let ipw = body.len() as u64 * 90;
    let k = KernelSpec::new(
        "lud_kernel",
        vec![BasicBlock::new(body, 90, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(4 << 20, 0.6),
    );
    bench("lud", Boundedness::Compute, vec![k])
}

/// `nw`: Needleman-Wunsch sequence alignment. Wavefront dependency pattern
/// — barrier-heavy with strided loads and little arithmetic.
pub fn nw() -> Benchmark {
    let body = {
        let mut b = interleave(&[(LoadGlobal, 2), (IntAlu, 2), (Branch, 1)]);
        b.push(Barrier);
        b
    };
    let ipw = body.len() as u64 * 70;
    let k = KernelSpec::new(
        "nw_kernel",
        vec![BasicBlock::new(body, 70, 0.05)],
        6,
        sized_ctas(ipw, 6, target::MEMORY),
        MemoryBehavior::new(16 << 20, 512, 0.0, 0.2),
    );
    bench("nw", Boundedness::Memory, vec![k])
}

/// `pathfinder`: dynamic programming over a grid. Row-by-row streaming with
/// shared-memory reuse of the previous row.
pub fn pathfinder() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (LoadShared, 1), (IntAlu, 2), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 80;
    let k = KernelSpec::new(
        "pathfinder_kernel",
        vec![BasicBlock::new(body, 80, 0.1)],
        8,
        sized_ctas(ipw, 8, target::MEMORY),
        MemoryBehavior::streaming(48 << 20),
    );
    bench("pathfinder", Boundedness::Memory, vec![k])
}

/// `srad`: speckle-reducing anisotropic diffusion. Iterative stencil with
/// transcendental ops (exp) — alternating SFU-heavy compute and
/// neighbor-gather memory phases.
pub fn srad() -> Benchmark {
    let gather = {
        let body = interleave(&[(LoadGlobal, 4), (FpAlu, 3), (IntAlu, 1)]);
        let ipw = body.len() as u64 * 60;
        KernelSpec::new(
            "srad_gather",
            vec![BasicBlock::new(body, 60, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 2),
            MemoryBehavior::cache_friendly(24 << 20, 0.4),
        )
    };
    let diffuse = {
        let body = interleave(&[(FpAlu, 6), (Sfu, 2), (LoadGlobal, 1), (StoreGlobal, 1)]);
        let ipw = body.len() as u64 * 60;
        KernelSpec::new(
            "srad_diffuse",
            vec![BasicBlock::new(body, 60, 0.0)],
            8,
            sized_ctas(ipw, 8, target::MIXED / 2),
            MemoryBehavior::cache_friendly(24 << 20, 0.5),
        )
    };
    bench("srad", Boundedness::Mixed, vec![gather, diffuse])
}

/// `streamcluster`: online clustering. Repeated distance evaluations over a
/// streamed point set — long FP chains against data that mostly misses the
/// caches, with a divergent assignment branch.
pub fn streamcluster() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 3), (FpAlu, 5), (Branch, 1), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 70;
    let k = KernelSpec::new(
        "streamcluster_kernel",
        vec![BasicBlock::new(body, 70, 0.15)],
        8,
        sized_ctas(ipw, 8, target::MEMORY),
        MemoryBehavior::new(64 << 20, 128, 0.2, 0.1),
    );
    bench("streamcluster", Boundedness::Memory, vec![k])
}

/// `b+tree`: database index lookups. Pointer-chasing tree descents — short
/// dependent load chains at random addresses with key-comparison branches.
pub fn btree() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (IntAlu, 3), (Branch, 2)]);
    let ipw = body.len() as u64 * 55;
    let k = KernelSpec::new(
        "btree_kernel",
        vec![BasicBlock::new(body, 55, 0.3)],
        6,
        sized_ctas(ipw, 6, target::IRREGULAR),
        MemoryBehavior::irregular(32 << 20, 0.8),
    );
    bench("b+tree", Boundedness::Irregular, vec![k])
}

/// `cfd`: unstructured-grid Euler solver. Gather over irregular neighbor
/// lists feeding a flux computation with transcendental ops.
pub fn cfd() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 3), (FpAlu, 6), (Sfu, 1), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 80;
    let k = KernelSpec::new(
        "cfd_kernel",
        vec![BasicBlock::new(body, 80, 0.05)],
        8,
        sized_ctas(ipw, 8, target::MIXED),
        MemoryBehavior::new(48 << 20, 128, 0.3, 0.2),
    );
    bench("cfd", Boundedness::Mixed, vec![k])
}

/// `heartwall`: ultrasound image tracking. Template-matching windows with
/// strong reuse (shared-memory tiles) and FP-heavy correlation sums.
pub fn heartwall() -> Benchmark {
    let body = {
        let mut b = interleave(&[(LoadGlobal, 1), (LoadShared, 3), (FpAlu, 7)]);
        b.push(Barrier);
        b
    };
    let ipw = body.len() as u64 * 90;
    let k = KernelSpec::new(
        "heartwall_kernel",
        vec![BasicBlock::new(body, 90, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(12 << 20, 0.75),
    );
    bench("heartwall", Boundedness::Compute, vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rodinia_benchmarks_construct() {
        let all = [
            backprop(),
            bfs(),
            gaussian(),
            hotspot(),
            kmeans(),
            lavamd(),
            lud(),
            nw(),
            pathfinder(),
            srad(),
            streamcluster(),
            btree(),
            cfd(),
            heartwall(),
        ];
        for b in &all {
            assert_eq!(b.family(), Family::Rodinia);
            assert!(b.workload().total_instructions() > 100_000, "{} too small", b.name());
        }
    }

    #[test]
    fn characters_span_the_axes() {
        assert_eq!(bfs().character(), Boundedness::Irregular);
        assert_eq!(lavamd().character(), Boundedness::Compute);
        assert_eq!(pathfinder().character(), Boundedness::Memory);
        assert_eq!(hotspot().character(), Boundedness::Mixed);
    }

    #[test]
    fn phase_benchmarks_have_multiple_kernels() {
        assert_eq!(backprop().workload().kernels().len(), 2);
        assert_eq!(kmeans().workload().kernels().len(), 2);
        assert_eq!(gaussian().workload().kernels().len(), 3);
    }
}
