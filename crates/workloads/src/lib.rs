//! A synthetic GPU benchmark suite modeled after Rodinia, Parboil and
//! PolyBench.
//!
//! The SSMDVFS paper trains and evaluates on "over 20 benchmarks from
//! Rodinia, Parboil and PolyBench". The real suites are CUDA programs we
//! cannot execute; what the DVFS controllers actually observe, however, is
//! only the *counter dynamics* those programs induce: arithmetic intensity,
//! cache locality, branch divergence, phase changes between kernels, and
//! kernel lengths. This crate provides 25 named benchmark specifications
//! that span those axes the same way the real suites do, each one a
//! deterministic procedural instruction stream for the
//! [`gpu_sim`] simulator.
//!
//! Benchmarks are sized so the full workload runs for roughly 300 µs on the
//! 24-cluster Titan X configuration at the default clock, matching the
//! paper's "execution time of programs limited to approximately 0.0003 s".
//!
//! # Examples
//!
//! ```
//! use gpu_workloads::{suite, training_set, evaluation_set};
//!
//! let all = suite();
//! assert!(all.len() >= 20, "the paper uses over 20 benchmarks");
//!
//! // More than half of the evaluation programs are unseen during training.
//! let train = training_set();
//! let eval = evaluation_set();
//! let unseen = eval
//!     .iter()
//!     .filter(|b| train.iter().all(|t| t.name() != b.name()))
//!     .count();
//! assert!(unseen * 2 > eval.len());
//! ```

#![warn(missing_docs)]

mod benchmark;
mod builders;
mod parboil;
mod polybench;
mod rodinia;
mod suite;

pub use benchmark::{Benchmark, Boundedness, Family};
pub use suite::{by_name, evaluation_set, suite, training_set, EVALUATION_NAMES, TRAINING_NAMES};
