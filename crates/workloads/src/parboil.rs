//! Benchmarks modeled after the Parboil suite (Stratton et al., UIUC).

use gpu_sim::InstrClass::*;
use gpu_sim::{BasicBlock, KernelSpec, MemoryBehavior, Workload};

use crate::benchmark::{Benchmark, Boundedness, Family};
use crate::builders::{interleave, mix, sized_ctas, target};

fn bench(name: &str, character: Boundedness, kernels: Vec<KernelSpec>) -> Benchmark {
    Benchmark::new(name, Family::Parboil, character, Workload::new(name, kernels))
}

/// `cutcp`: cutoff Coulombic potential. Distance tests (divergent cutoff
/// branch) feeding FMA/SFU chains over a shared-memory atom tile.
pub fn cutcp() -> Benchmark {
    let body = {
        let mut b = interleave(&[(FpAlu, 8), (Sfu, 1), (LoadShared, 2)]);
        b.extend(mix(&[(Branch, 1), (FpAlu, 2)]));
        b
    };
    let ipw = body.len() as u64 * 90;
    let k = KernelSpec::new(
        "cutcp_kernel",
        vec![BasicBlock::new(body, 90, 0.15)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(4 << 20, 0.7),
    );
    bench("cutcp", Boundedness::Compute, vec![k])
}

/// `histo`: histogramming. Scattered read-modify-write traffic to random
/// bins — an irregular, store-heavy pattern with serialization-like
/// divergence.
pub fn histo() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (IntAlu, 2), (StoreGlobal, 1), (Branch, 1)]);
    let ipw = body.len() as u64 * 60;
    let k = KernelSpec::new(
        "histo_kernel",
        vec![BasicBlock::new(body, 60, 0.25)],
        6,
        sized_ctas(ipw, 6, target::IRREGULAR),
        MemoryBehavior::irregular(32 << 20, 0.6),
    );
    bench("histo", Boundedness::Irregular, vec![k])
}

/// `lbm`: lattice-Boltzmann method. The classic streaming benchmark: every
/// cell update reads and writes ~19 distributions from DRAM with almost no
/// reuse, with a moderate FP body in between.
pub fn lbm() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 4), (FpAlu, 5), (StoreGlobal, 3)]);
    let ipw = body.len() as u64 * 70;
    let k = KernelSpec::new(
        "lbm_kernel",
        vec![BasicBlock::new(body, 70, 0.0)],
        8,
        sized_ctas(ipw, 8, target::MEMORY),
        MemoryBehavior::streaming(96 << 20),
    );
    bench("lbm", Boundedness::Memory, vec![k])
}

/// `mri-q`: MRI reconstruction Q computation. Famously
/// transcendental-bound: long sin/cos (SFU) chains per sample point with a
/// tiny, fully cached working set.
pub fn mriq() -> Benchmark {
    let body = interleave(&[(Sfu, 4), (FpAlu, 6), (LoadShared, 1)]);
    let ipw = body.len() as u64 * 100;
    let k = KernelSpec::new(
        "mriq_kernel",
        vec![BasicBlock::new(body, 100, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(1 << 20, 0.9),
    );
    bench("mriq", Boundedness::Compute, vec![k])
}

/// `sad`: sum of absolute differences (video encoding). Block-matching over
/// a sliding window: strided loads with strong reuse feeding short integer
/// reductions.
pub fn sad() -> Benchmark {
    // The sliding search window gives block matching strong reuse: most
    // reference-frame reads hit the tile held in cache.
    let body = interleave(&[(LoadGlobal, 2), (IntAlu, 6), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 75;
    let k = KernelSpec::new(
        "sad_kernel",
        vec![BasicBlock::new(body, 75, 0.05)],
        8,
        sized_ctas(ipw, 8, target::MIXED),
        MemoryBehavior::cache_friendly(12 << 20, 0.7),
    );
    bench("sad", Boundedness::Mixed, vec![k])
}

/// `sgemm`: dense matrix multiply. The canonical compute-bound kernel:
/// register/shared-tiled FMA streams with high reuse.
pub fn sgemm() -> Benchmark {
    let body = {
        let mut b = mix(&[(LoadGlobal, 1), (LoadShared, 3)]);
        b.extend(mix(&[(FpAlu, 12)]));
        b.push(Barrier);
        b
    };
    let ipw = body.len() as u64 * 110;
    let k = KernelSpec::new(
        "sgemm_kernel",
        vec![BasicBlock::new(body, 110, 0.0)],
        8,
        sized_ctas(ipw, 8, target::COMPUTE),
        MemoryBehavior::cache_friendly(8 << 20, 0.85),
    );
    bench("sgemm", Boundedness::Compute, vec![k])
}

/// `spmv`: sparse matrix-vector multiply. Irregular gathers through the
/// column-index array with low arithmetic intensity — bandwidth- and
/// latency-bound.
pub fn spmv() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 3), (FpAlu, 2), (IntAlu, 1), (Branch, 1)]);
    let ipw = body.len() as u64 * 65;
    let k = KernelSpec::new(
        "spmv_kernel",
        vec![BasicBlock::new(body, 65, 0.2)],
        6,
        sized_ctas(ipw, 6, target::IRREGULAR),
        MemoryBehavior::new(64 << 20, 128, 0.5, 0.15),
    );
    bench("spmv", Boundedness::Irregular, vec![k])
}

/// `stencil`: 3D 7-point stencil. Streaming planes with neighbor reuse — a
/// balanced mix that shifts between memory- and compute-bound with the
/// clock.
pub fn stencil() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (FpAlu, 6), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 80;
    let k = KernelSpec::new(
        "stencil_kernel",
        vec![BasicBlock::new(body, 80, 0.0)],
        8,
        sized_ctas(ipw, 8, target::MIXED),
        MemoryBehavior::cache_friendly(32 << 20, 0.6),
    );
    bench("stencil", Boundedness::Mixed, vec![k])
}

/// `tpacf`: two-point angular correlation. Histogramming angular distances
/// between galaxy pairs — FP/SFU distance math with scattered histogram
/// updates.
pub fn tpacf() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (FpAlu, 5), (Sfu, 1), (IntAlu, 1), (StoreGlobal, 1)]);
    let ipw = body.len() as u64 * 75;
    let k = KernelSpec::new(
        "tpacf_kernel",
        vec![BasicBlock::new(body, 75, 0.1)],
        8,
        sized_ctas(ipw, 8, target::MIXED),
        MemoryBehavior::new(24 << 20, 128, 0.25, 0.25),
    );
    bench("tpacf", Boundedness::Mixed, vec![k])
}

/// `mri-gridding`: non-uniform sample gridding. Scattered accumulations
/// into a 3D grid — random writes with moderate FP work per sample.
pub fn mri_gridding() -> Benchmark {
    let body = interleave(&[(LoadGlobal, 2), (FpAlu, 4), (StoreGlobal, 2), (Branch, 1)]);
    let ipw = body.len() as u64 * 60;
    let k = KernelSpec::new(
        "mri_gridding_kernel",
        vec![BasicBlock::new(body, 60, 0.2)],
        6,
        sized_ctas(ipw, 6, target::IRREGULAR),
        MemoryBehavior::irregular(48 << 20, 0.55),
    );
    bench("mri-gridding", Boundedness::Irregular, vec![k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_parboil_benchmarks_construct() {
        let all = [
            cutcp(),
            histo(),
            lbm(),
            mriq(),
            sad(),
            sgemm(),
            spmv(),
            stencil(),
            tpacf(),
            mri_gridding(),
        ];
        for b in &all {
            assert_eq!(b.family(), Family::Parboil);
            assert!(b.workload().total_instructions() > 100_000, "{} too small", b.name());
        }
    }

    #[test]
    fn sgemm_is_fma_dominated() {
        let b = sgemm();
        let kernel = &b.workload().kernels()[0];
        let fp = kernel.blocks()[0].instrs.iter().filter(|i| i.class == FpAlu).count();
        assert!(fp * 2 > kernel.blocks()[0].instrs.len(), "sgemm should be mostly FMA");
    }

    #[test]
    fn lbm_streams_a_large_working_set() {
        let b = lbm();
        let mem = b.workload().kernels()[0].mem();
        assert!(mem.working_set_bytes >= 64 << 20);
        assert_eq!(mem.hot_frac, 0.0);
    }
}
