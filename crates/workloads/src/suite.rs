//! The full suite and the train/evaluation split.

use crate::benchmark::Benchmark;
use crate::{parboil, polybench, rodinia};

/// Every benchmark in the suite at standard size, in a stable order.
///
/// # Examples
///
/// ```
/// let suite = gpu_workloads::suite();
/// assert!(suite.iter().any(|b| b.name() == "sgemm"));
/// assert!(suite.iter().any(|b| b.name() == "bfs"));
/// ```
pub fn suite() -> Vec<Benchmark> {
    vec![
        // Rodinia
        rodinia::backprop(),
        rodinia::bfs(),
        rodinia::gaussian(),
        rodinia::hotspot(),
        rodinia::kmeans(),
        rodinia::lavamd(),
        rodinia::lud(),
        rodinia::nw(),
        rodinia::pathfinder(),
        rodinia::srad(),
        rodinia::streamcluster(),
        rodinia::btree(),
        rodinia::cfd(),
        rodinia::heartwall(),
        // Parboil
        parboil::cutcp(),
        parboil::histo(),
        parboil::lbm(),
        parboil::mriq(),
        parboil::sad(),
        parboil::sgemm(),
        parboil::spmv(),
        parboil::stencil(),
        parboil::tpacf(),
        parboil::mri_gridding(),
        // PolyBench
        polybench::twomm(),
        polybench::threemm(),
        polybench::atax(),
        polybench::bicg(),
        polybench::correlation(),
        polybench::gemm(),
        polybench::mvt(),
        polybench::syrk(),
        polybench::fdtd2d(),
        polybench::gramschmidt(),
    ]
}

/// Names of the benchmarks used to generate SSMDVFS training data.
pub const TRAINING_NAMES: [&str; 15] = [
    "backprop",
    "gaussian",
    "hotspot",
    "lavamd",
    "nw",
    "srad",
    "cutcp",
    "lbm",
    "sgemm",
    "stencil",
    "2mm",
    "atax",
    "syrk",
    "correlation",
    "sad",
];

/// Names of the benchmarks used for full-system evaluation (Fig. 4). Ten of
/// the fourteen are absent from [`TRAINING_NAMES`], satisfying the paper's
/// ">50 % of the selected programs are not included in the training set".
pub const EVALUATION_NAMES: [&str; 14] = [
    // Seen during training:
    "sgemm", "hotspot", "atax", "lbm", // Unseen:
    "bfs", "kmeans", "lud", "histo", "mriq", "spmv", "3mm", "gemm", "mvt", "bicg",
];

/// Looks a benchmark up by name.
///
/// # Examples
///
/// ```
/// assert!(gpu_workloads::by_name("lbm").is_some());
/// assert!(gpu_workloads::by_name("doom").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name() == name)
}

/// The benchmarks whose data-generation runs feed model training.
pub fn training_set() -> Vec<Benchmark> {
    TRAINING_NAMES
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("training benchmark '{n}' missing")))
        .collect()
}

/// The benchmarks used in the Fig. 4 full-system comparison.
pub fn evaluation_set() -> Vec<Benchmark> {
    EVALUATION_NAMES
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("evaluation benchmark '{n}' missing")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Boundedness;
    use std::collections::HashSet;

    #[test]
    fn suite_has_over_twenty_unique_benchmarks() {
        let s = suite();
        assert!(s.len() > 20);
        let names: HashSet<&str> = s.iter().map(Benchmark::name).collect();
        assert_eq!(names.len(), s.len(), "benchmark names must be unique");
    }

    #[test]
    fn split_satisfies_the_papers_unseen_requirement() {
        let train: HashSet<String> = training_set().iter().map(|b| b.name().to_string()).collect();
        let eval = evaluation_set();
        let unseen = eval.iter().filter(|b| !train.contains(b.name())).count();
        assert!(
            unseen * 2 > eval.len(),
            "more than half the evaluation programs must be unseen ({unseen}/{})",
            eval.len()
        );
    }

    #[test]
    fn split_members_exist_in_suite() {
        for n in TRAINING_NAMES.iter().chain(EVALUATION_NAMES.iter()) {
            assert!(by_name(n).is_some(), "'{n}' not in suite");
        }
    }

    #[test]
    fn training_set_spans_characters() {
        let chars: HashSet<Boundedness> = training_set().iter().map(Benchmark::character).collect();
        assert!(chars.contains(&Boundedness::Compute));
        assert!(chars.contains(&Boundedness::Memory));
        assert!(chars.contains(&Boundedness::Mixed));
    }

    #[test]
    fn evaluation_set_spans_characters() {
        let chars: HashSet<Boundedness> =
            evaluation_set().iter().map(Benchmark::character).collect();
        assert!(chars.len() >= 3);
    }

    #[test]
    fn standard_sizes_are_in_the_execution_budget() {
        // Total instructions should be in the range that runs for roughly
        // 100-600 µs on the 24-cluster default-clock configuration.
        for b in suite() {
            let total = b.workload().total_instructions();
            assert!(
                (500_000..20_000_000).contains(&total),
                "{}: {total} instructions outside the expected envelope",
                b.name()
            );
        }
    }
}
