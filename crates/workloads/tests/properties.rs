//! Property-based and structural tests for the benchmark suite.

use gpu_workloads::{by_name, evaluation_set, suite, training_set, Boundedness};
use proptest::prelude::*;

proptest! {
    /// Scaling a benchmark scales its CTA counts proportionally (within
    /// rounding) and never below one CTA.
    #[test]
    fn scaling_is_proportionate(idx in 0usize..26, factor in 0.01f64..4.0) {
        let all = suite();
        let b = &all[idx % all.len()];
        let scaled = b.scaled(factor);
        for (orig, new) in b.workload().kernels().iter().zip(scaled.workload().kernels()) {
            let expected = ((orig.num_ctas() as f64 * factor).round() as usize).max(1);
            prop_assert_eq!(new.num_ctas(), expected);
            prop_assert_eq!(new.instructions_per_warp(), orig.instructions_per_warp());
        }
    }

    /// Every benchmark's total instruction count is consistent with its
    /// kernels' geometry.
    #[test]
    fn instruction_accounting_is_consistent(idx in 0usize..64) {
        let all = suite();
        let b = &all[idx % all.len()];
        let total: u64 = b
            .workload()
            .kernels()
            .iter()
            .map(|k| k.instructions_per_warp() * k.warps_per_cta() as u64 * k.num_ctas() as u64)
            .sum();
        prop_assert_eq!(total, b.workload().total_instructions());
    }
}

#[test]
fn every_benchmark_has_valid_memory_behaviour() {
    for b in suite() {
        for k in b.workload().kernels() {
            let mem = k.mem();
            assert!(mem.working_set_bytes > 0, "{}: empty working set", k.name());
            assert!(
                mem.random_frac + mem.hot_frac <= 1.0 + f32::EPSILON,
                "{}: inconsistent access fractions",
                k.name()
            );
            assert!(k.warps_per_cta() <= 48, "{}: CTA would not fit an SM", k.name());
        }
    }
}

#[test]
fn advertised_characters_match_memory_parameters() {
    // Structural sanity: memory-bound benchmarks must actually stream
    // (low hot fraction or big working sets); compute-bound ones must have
    // strong locality.
    for b in suite() {
        let kernels = b.workload().kernels();
        match b.character() {
            Boundedness::Memory => {
                assert!(
                    kernels.iter().any(|k| k.mem().hot_frac < 0.5),
                    "{}: memory-bound but every kernel is cache-friendly",
                    b.name()
                );
            }
            Boundedness::Compute => {
                assert!(
                    kernels
                        .iter()
                        .all(|k| k.mem().hot_frac >= 0.5 || k.mem().working_set_bytes <= 8 << 20),
                    "{}: compute-bound but streams a large working set",
                    b.name()
                );
            }
            Boundedness::Irregular => {
                assert!(
                    kernels.iter().any(|k| k.mem().random_frac > 0.3),
                    "{}: irregular but no random access",
                    b.name()
                );
            }
            Boundedness::Mixed => {}
        }
    }
}

#[test]
fn training_and_evaluation_sets_are_stable() {
    // The experiment results in EXPERIMENTS.md depend on this exact split.
    let train: Vec<&str> = gpu_workloads::TRAINING_NAMES.to_vec();
    assert_eq!(train.len(), 15);
    assert_eq!(gpu_workloads::EVALUATION_NAMES.len(), 14);
    assert_eq!(training_set().len(), 15);
    assert_eq!(evaluation_set().len(), 14);
    // Spot anchors.
    assert!(train.contains(&"sgemm"));
    assert!(gpu_workloads::EVALUATION_NAMES.contains(&"mriq"));
}

#[test]
fn lookup_is_total_over_both_sets() {
    for n in gpu_workloads::TRAINING_NAMES.iter().chain(gpu_workloads::EVALUATION_NAMES.iter()) {
        assert!(by_name(n).is_some(), "split references unknown benchmark '{n}'");
    }
}
