//! CLI subcommand implementations.
//!
//! Each command is a function from parsed [`Args`] to a `Result<String>`
//! holding the text to print — pure enough to test without spawning a
//! process.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use dvfs_baselines::{
    run_oracle, FlemmaConfig, FlemmaGovernor, OndemandConfig, OndemandGovernor, PcstallConfig,
    PcstallGovernor,
};
use gpu_sim::{
    epoch_trace_csv, DvfsGovernor, GpuConfig, SimResult, Simulation, StaticGovernor, Time,
};
use gpu_workloads::{by_name, suite, Benchmark};
use ssmdvfs::checkpoint::CheckpointJournal;
use ssmdvfs::exec::FaultPolicy;
use ssmdvfs::serve::{DecisionService, ServeConfig};
use ssmdvfs::{
    compress_and_finetune_jobs, estimate_asic, evaluate, generate_suite_with, select_features_with,
    train_combined_jobs, AsicConfig, CombinedModel, DataGenConfig, DvfsDataset, FeatureSet,
    ModelArch, RfeOptions, SsmdvfsConfig, SsmdvfsGovernor, SuiteOptions,
};
use tinynn::TrainConfig;

use crate::args::{Args, ParseArgsError};

type CmdResult = Result<String, ParseArgsError>;

fn err(message: impl Into<String>) -> ParseArgsError {
    ParseArgsError::new(message)
}

/// An error attributed to a named pipeline stage, so the binary's
/// `error: [stage] ...` line says which part of the pipeline failed.
fn err_in(stage: &'static str, message: impl Into<String>) -> ParseArgsError {
    ParseArgsError::in_stage(stage, message)
}

/// Usage text shown by `help` and on unknown subcommands.
pub fn usage() -> String {
    "\
ssmdvfs — microsecond-scale GPU DVFS with supervised, self-calibrated ML

USAGE: ssmdvfs <COMMAND> [OPTIONS]

COMMANDS:
  list-benchmarks                     list the synthetic benchmark suite
  simulate    --benchmark <name>      run one benchmark under a governor
              [--governor static|pcstall|flemma|ondemand|oracle|ssmdvfs]
              [--model <file>] [--preset 0.10] [--op <idx>]
              [--clusters <n>] [--sms <n>] [--scale <f>] [--trace <out.csv>]
              [--audit-out <out.jsonl>] [--audit-cap 4096]
  fleet       --gpus <K>              run K GPUs against one batched
              [--max-batch 32]        decision service (shared inference)
              [--deadline-us <D>]     expired requests get the safe fallback
              [--shards 1] [--queue-depth 256]
              [--jobs <n>]            GPU worker threads (0 = one per core);
                                      decisions are identical at any count
              [--benchmark sgemm] [--scale <f>] [--preset 0.10]
              [--horizon-us 2000] [--model <file>]
              [--clusters <n>] [--sms <n>]
  datagen     --out <file>            run the Fig. 2 data-generation pipeline
              [--benchmarks a,b,c] [--scale <f>] [--clusters <n>]
              [--jobs <n>]            replay worker threads (0 = one per core)
              [--checkpoint <ck.jsonl>]  journal finished jobs for resume
              [--resume <ck.jsonl>]   skip jobs journaled by a killed run
              [--quarantine] [--max-retries 2]  retry/drop panicking jobs
              [--replay-cache <cache.json>]  reuse replay results across runs
  train       --dataset <file> --out <model.json>
              [--arch full|compressed] [--epochs <n>]
              [--rfe <keep>]          select <keep> indirect features by RFE
                                      first, instead of the paper's refined set
              [--rfe-epochs 8]        retrain epochs per elimination round
              [--jobs <n>]            SGD + importance workers (0 = one per
                                      core); the trained model is
                                      byte-identical at any count
  compress    --model <in> --dataset <file> --out <model.json>
              [--x1 0.6] [--x2 0.9]
              [--jobs <n>]            recovery-SGD workers (0 = one per core);
                                      byte-identical at any count
  evaluate    --model <file> --dataset <file>
  asic        --model <file> [--freq-mhz 1165]
  inspect     [audit.jsonl]           summarize a DVFS decision audit trail
              [--metrics <file.json>] summarize a --metrics-out snapshot
                                      (sim epochs, skipped cycles, cache hits)
              [--trace <file.json>]   summarize a Chrome/Perfetto trace
                                      (span count, total/mean time per name)
              [--profile <file.json>] show a --profile-out per-phase table
  watch       <addr>                  poll a --serve-metrics exporter and
              [--window 20]           show windowed rates instead of totals
              [--count 1] [--interval-ms 1000]
  slo-check   --baseline <dir>        evaluate SLO rules against the newest
                                      BENCH_*.json point per series in <dir>
              [--current <dir>]       freshly measured BENCH_*.json points
              [--metrics <file.json>] counters for ratio/ceiling rules
              [--audit <file.jsonl>]  decisions for calibration rules
              [--slo <rules.toml>]    rule file (defaults to built-in rules)
              [--strict]              treat skipped rules as failures
  help                                show this message

GLOBAL OPTIONS (any command):
  --metrics-out <file.json>           write a metrics-registry snapshot
  --trace-out <file.json>             write a Chrome/Perfetto trace
  --serve-metrics <addr>              serve /metrics (Prometheus),
                                      /metrics.json[?window=N] and /healthz
                                      for the duration of the run
  --serve-linger <secs>               keep the exporter up after the command
                                      finishes (scrape-friendly short runs)
  --profile-out <file.json>           write the phase profiler's table
  --profile-collapsed <file.txt>      write flamegraph collapsed stacks
  --log-level off|error|warn|info|debug
"
    .to_string()
}

fn gpu_config(args: &Args) -> Result<GpuConfig, ParseArgsError> {
    let mut cfg = GpuConfig::titan_x();
    cfg.num_clusters = args.get_usize("clusters", cfg.num_clusters)?;
    cfg.sms_per_cluster = args.get_usize("sms", cfg.sms_per_cluster)?;
    if cfg.num_clusters == 0 || cfg.sms_per_cluster == 0 {
        return Err(err("--clusters and --sms must be at least 1"));
    }
    Ok(cfg)
}

fn benchmark(args: &Args) -> Result<Benchmark, ParseArgsError> {
    let name = args.require("benchmark")?;
    let bench = by_name(name)
        .ok_or_else(|| err(format!("unknown benchmark '{name}'; see 'ssmdvfs list-benchmarks'")))?;
    let scale = args.get_f64("scale", 1.0)?;
    if scale <= 0.0 {
        return Err(err("--scale must be positive"));
    }
    Ok(bench.scaled(scale))
}

fn load_model(path: &str) -> Result<CombinedModel, ParseArgsError> {
    // `CombinedModel::load` already names the artifact, path and cause.
    CombinedModel::load(path).map_err(|e| err(e.to_string()))
}

fn load_dataset(path: &str) -> Result<DvfsDataset, ParseArgsError> {
    DvfsDataset::load(path).map_err(|e| err(e.to_string()))
}

/// `list-benchmarks`.
pub fn list_benchmarks() -> CmdResult {
    let mut out =
        format!("{:<14} {:<10} {:<10} {:>14}\n", "name", "family", "character", "instructions");
    for b in suite() {
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:<10} {:>14}",
            b.name(),
            b.family().to_string(),
            b.character().to_string(),
            b.workload().total_instructions()
        );
    }
    Ok(out)
}

/// `simulate`.
pub fn simulate(args: &Args) -> CmdResult {
    let cfg = gpu_config(args)?;
    let bench = benchmark(args)?;
    let preset = args.get_f64("preset", 0.10)?;
    let horizon = Time::from_micros(args.get_f64("horizon-us", 20_000.0)?);
    let governor_name = args.get("governor").unwrap_or("static");
    let audit_out = args.get("audit-out");
    let audit_cap = args.get_usize("audit-cap", 4096)?;

    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    let result: SimResult = if governor_name == "oracle" {
        // The oracle runs its own internal simulations; neither the epoch
        // trace nor a per-decision audit trail is exposed.
        if args.get("trace").is_some() {
            return Err(err("--trace is not available with the oracle governor"));
        }
        if audit_out.is_some() {
            return Err(err("--audit-out is not available with the oracle governor"));
        }
        run_oracle(&cfg, bench.workload().clone(), preset, horizon)
    } else {
        let mut governor: Box<dyn DvfsGovernor> = match governor_name {
            "static" => {
                let idx = args.get_usize("op", cfg.vf_table.default_index())?;
                if idx >= cfg.vf_table.len() {
                    return Err(err(format!(
                        "--op {idx} out of range (table has {} points)",
                        cfg.vf_table.len()
                    )));
                }
                Box::new(StaticGovernor::new(idx))
            }
            "pcstall" => Box::new(PcstallGovernor::new(PcstallConfig::new(preset))),
            "flemma" => Box::new(FlemmaGovernor::new(FlemmaConfig::new(preset))),
            "ondemand" => Box::new(OndemandGovernor::new(OndemandConfig::default())),
            "ssmdvfs" => {
                let model = load_model(args.require("model")?)?;
                Box::new(SsmdvfsGovernor::new(model, SsmdvfsConfig::new(preset)))
            }
            other => {
                return Err(err(format!(
                    "unknown governor '{other}' (static|pcstall|flemma|ondemand|oracle|ssmdvfs)"
                )))
            }
        };
        if audit_out.is_some() {
            governor.enable_audit(audit_cap.max(1));
        }
        let result = sim.run(governor.as_mut(), horizon);
        if let Some(path) = audit_out {
            let trail = governor.audit_trail().ok_or_else(|| {
                err(format!("governor '{governor_name}' does not support --audit-out"))
            })?;
            fs::write(path, trail.to_jsonl())
                .map_err(|e| err(format!("cannot write audit trail '{path}': {e}")))?;
        }
        result
    };

    if let Some(trace_path) = args.get("trace") {
        fs::write(trace_path, epoch_trace_csv(sim.records()))
            .map_err(|e| err(format!("cannot write trace '{trace_path}': {e}")))?;
    }

    let report = result.edp_report();
    let mut out = String::new();
    let _ = writeln!(out, "benchmark : {bench}");
    let _ = writeln!(out, "governor  : {}", result.governor);
    let _ = writeln!(out, "completed : {}", result.completed);
    let _ = writeln!(out, "time      : {:.2} µs", report.time_s() * 1e6);
    let _ = writeln!(out, "energy    : {:.4} mJ", report.energy().millijoules());
    let _ = writeln!(out, "EDP       : {:.4e} J·s", report.edp());
    let _ = writeln!(out, "op usage  : {:?}", result.op_histogram);
    Ok(out)
}

/// `fleet`.
pub fn fleet(args: &Args) -> CmdResult {
    let cfg = gpu_config(args)?;
    let gpus = args.get_usize("gpus", 4)?;
    if gpus == 0 {
        return Err(err("--gpus must be at least 1"));
    }
    let jobs = match args.get_usize("jobs", 0)? {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    };
    let preset = args.get_f64("preset", 0.10)?;
    let horizon = Time::from_micros(args.get_f64("horizon-us", 2_000.0)?);
    let name = args.get("benchmark").unwrap_or("sgemm");
    let bench = by_name(name)
        .ok_or_else(|| err(format!("unknown benchmark '{name}'; see 'ssmdvfs list-benchmarks'")))?;
    let scale = args.get_f64("scale", 1.0)?;
    if scale <= 0.0 {
        return Err(err("--scale must be positive"));
    }
    let bench = bench.scaled(scale);

    let deadline_us = args.get_f64("deadline-us", 0.0)?;
    let serve = ServeConfig {
        shards: args.get_usize("shards", 1)?.max(1),
        max_batch: args.get_usize("max-batch", 32)?.max(1),
        queue_depth: args.get_usize("queue-depth", 256)?.max(1),
        deadline: (deadline_us > 0.0)
            .then(|| std::time::Duration::from_secs_f64(deadline_us * 1e-6)),
    };
    // With no --model, serve a deterministic synthetic head: enough to
    // exercise and benchmark the batching plane without a training run.
    let model = match args.get("model") {
        Some(path) => std::sync::Arc::new(load_model(path)?),
        None => std::sync::Arc::new(CombinedModel::synthetic(cfg.vf_table.len(), 42)),
    };

    let config = std::sync::Arc::new(cfg);
    let workload = std::sync::Arc::new(bench.workload().clone());
    let workloads = vec![workload; gpus];
    let service = DecisionService::start(
        model,
        SsmdvfsConfig::new(preset),
        config.vf_table.clone(),
        serve.clone(),
    );
    let client = service.client();
    let wall = std::time::Instant::now();
    let results = gpu_sim::run_fleet(&config, &workloads, horizon, jobs, &client);
    let elapsed = wall.elapsed();
    let stats = service.shutdown();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet     : {gpus} x {bench} ({jobs} jobs, {} shard(s), max batch {})",
        serve.shards, serve.max_batch
    );
    let _ = writeln!(
        out,
        "{:<5} {:<10} {:>12} {:>12} {:>10}",
        "gpu", "completed", "time µs", "energy mJ", "decisions"
    );
    for r in &results {
        let report = r.result.edp_report();
        let _ = writeln!(
            out,
            "{:<5} {:<10} {:>12.2} {:>12.4} {:>10}",
            r.gpu,
            r.result.completed,
            report.time_s() * 1e6,
            report.energy().millijoules(),
            r.decisions.len()
        );
    }
    let rate = stats.decisions as f64 / elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(out, "decisions : {} ({rate:.0}/s wall)", stats.decisions);
    let _ =
        writeln!(out, "batches   : {} (mean occupancy {:.2})", stats.batches, stats.mean_batch());
    let _ = writeln!(out, "misses    : {} past deadline", stats.deadline_misses);
    Ok(out)
}

/// `datagen`.
pub fn datagen(args: &Args) -> CmdResult {
    let cfg = gpu_config(args)?;
    let out_path = args.require("out")?;
    let scale = args.get_f64("scale", 1.0)?;
    let benches: Vec<Benchmark> = match args.get("benchmarks") {
        None => gpu_workloads::training_set(),
        Some(spec) => spec
            .split(',')
            .map(|n| {
                by_name(n.trim()).ok_or_else(|| err(format!("unknown benchmark '{}'", n.trim())))
            })
            .collect::<Result<_, _>>()?,
    };
    let dg = DataGenConfig::default();
    let scaled: Vec<Benchmark> = benches.into_iter().map(|b| b.scaled(scale)).collect();

    let mut options = SuiteOptions::new(args.get_usize("jobs", 0)?);
    // `--resume <journal>` reuses an interrupted run's completed jobs and
    // keeps journaling to the same file; `--checkpoint <journal>` starts a
    // fresh journal.
    match (args.get("resume"), args.get("checkpoint")) {
        (Some(_), Some(_)) => {
            return Err(err("--resume already journals; drop --checkpoint"));
        }
        (Some(path), None) => {
            let entries =
                ssmdvfs::checkpoint::load(path).map_err(|e| err_in("datagen", e.to_string()))?;
            options.completed = ssmdvfs::checkpoint::completed_jobs(entries);
            options.journal = Some(
                CheckpointJournal::append_to(path).map_err(|e| err_in("datagen", e.to_string()))?,
            );
        }
        (None, Some(path)) => {
            options.journal = Some(
                CheckpointJournal::create(path).map_err(|e| err_in("datagen", e.to_string()))?,
            );
        }
        (None, None) => {}
    }
    if args.flag("quarantine") || args.get("max-retries").is_some() {
        options.fault_policy = Some(FaultPolicy { max_retries: args.get_usize("max-retries", 2)? });
    }
    // `--replay-cache <file>` keys each replay's samples by a content hash
    // of (config, datagen params, workload, breakpoint, operating point):
    // reruns and overlapping sweeps skip already-simulated replays.
    let cache = match args.get("replay-cache") {
        None => None,
        Some(path) => {
            let cache =
                ssmdvfs::ReplayCache::open(path).map_err(|e| err_in("datagen", e.to_string()))?;
            Some(std::sync::Arc::new(cache))
        }
    };
    options.cache = cache.clone();

    // Fan every (benchmark, breakpoint, operating point) replay out over
    // the shared work-stealing pool; the sample order is identical to a
    // sequential per-benchmark run, and (with a journal) byte-identical
    // across an interruption.
    let outcome = generate_suite_with(&scaled, &cfg, &dg, &options)
        .map_err(|e| err_in("datagen", e.to_string()))?;
    let mut dataset = DvfsDataset::default();
    let mut out = String::new();
    for (b, part) in scaled.iter().zip(outcome.datasets) {
        let _ = writeln!(out, "{:<14} {:>6} samples", b.name(), part.len());
        dataset.extend(part);
    }
    dataset.save(out_path).map_err(|e| err_in("datagen", e.to_string()))?;
    let _ = writeln!(out, "total: {} samples -> {out_path}", dataset.len());
    if let Some(cache) = cache {
        cache.save().map_err(|e| err_in("datagen", e.to_string()))?;
        let _ = writeln!(
            out,
            "replay cache: {} hits, {} misses, {} entries",
            cache.hits(),
            cache.misses(),
            cache.len()
        );
    }
    if !outcome.faults.is_empty() {
        let _ = writeln!(out, "fault report: {}", outcome.faults);
    }
    Ok(out)
}

fn arch(args: &Args) -> Result<ModelArch, ParseArgsError> {
    match args.get("arch").unwrap_or("full") {
        "full" => Ok(ModelArch::paper_full()),
        "compressed" => Ok(ModelArch::paper_compressed()),
        other => Err(err(format!("unknown --arch '{other}' (full|compressed)"))),
    }
}

/// `train`.
pub fn train(args: &Args) -> CmdResult {
    let dataset = load_dataset(args.require("dataset")?)?;
    let out_path = args.require("out")?;
    let train_cfg =
        TrainConfig { epochs: args.get_usize("epochs", 300)?, ..TrainConfig::default() };
    let jobs = args.get_usize("jobs", 1)?;
    let mut out = String::new();
    // `--rfe <keep>` re-derives the feature set from this dataset instead of
    // trusting the paper's refined five; the per-round retrains and the
    // per-column importance work both fan out over `--jobs` workers without
    // changing the selection.
    let features = match args.get("rfe") {
        None => FeatureSet::refined(),
        Some(_) => {
            let keep = args.get_usize("rfe", 4)?;
            let candidates = ssmdvfs::candidate_counters().len();
            if keep == 0 || keep >= candidates {
                return Err(err(format!("--rfe must be in 1..{candidates}")));
            }
            let rfe_cfg =
                TrainConfig { epochs: args.get_usize("rfe-epochs", 8)?, ..TrainConfig::default() };
            let opts = RfeOptions { jobs, ..RfeOptions::default() };
            let sel = select_features_with(&dataset, 6, keep, &rfe_cfg, &opts);
            let _ = writeln!(
                out,
                "RFE selected {} (full-set accuracy {:.2}%, selected {:.2}%)",
                sel.selected.names().join(","),
                sel.full_accuracy * 100.0,
                sel.selected_accuracy * 100.0
            );
            sel.selected
        }
    };
    // The SGD epoch loops shard each minibatch over `--jobs` workers; the
    // trained model is byte-identical at any worker count.
    let (model, summary) =
        train_combined_jobs(&dataset, &features, &arch(args)?, 6, &train_cfg, 0.25, jobs);
    model.save(out_path).map_err(|e| err_in("train", e.to_string()))?;
    let _ = writeln!(
        out,
        "trained on {} samples: accuracy {:.2}%, MAPE {:.2}%, {} FLOPs -> {out_path}",
        summary.samples,
        summary.decision_accuracy * 100.0,
        summary.calibrator_mape,
        summary.flops
    );
    Ok(out)
}

/// `compress`.
pub fn compress(args: &Args) -> CmdResult {
    let model = load_model(args.require("model")?)?;
    let dataset = load_dataset(args.require("dataset")?)?;
    let out_path = args.require("out")?;
    let x1 = args.get_f64("x1", 0.6)? as f32;
    let x2 = args.get_f64("x2", 0.9)? as f32;
    if !(0.0..=1.0).contains(&x1) || !(0.0..=1.0).contains(&x2) {
        return Err(err("--x1 and --x2 must be in [0, 1]"));
    }
    let finetune = TrainConfig { epochs: args.get_usize("epochs", 80)?, ..TrainConfig::default() };
    let compressed =
        compress_and_finetune_jobs(&model, &dataset, x1, x2, &finetune, args.get_usize("jobs", 1)?);
    compressed.save(out_path).map_err(|e| err_in("compress", e.to_string()))?;
    Ok(format!(
        "compressed {} -> {} FLOPs ({:.1}% reduction) -> {out_path}\n",
        model.flops(),
        compressed.sparse_flops(),
        (1.0 - compressed.sparse_flops() as f64 / model.flops() as f64) * 100.0
    ))
}

/// `evaluate`.
pub fn eval_cmd(args: &Args) -> CmdResult {
    let model = load_model(args.require("model")?)?;
    let dataset = load_dataset(args.require("dataset")?)?;
    let (acc, mape) = evaluate(&model, &dataset);
    Ok(format!(
        "decision accuracy {:.2}%, calibrator MAPE {:.2}% over {} samples ({} sparse FLOPs)\n",
        acc * 100.0,
        mape,
        dataset.len(),
        model.sparse_flops()
    ))
}

/// `asic`.
pub fn asic(args: &Args) -> CmdResult {
    let model = load_model(args.require("model")?)?;
    let freq = args.get_f64("freq-mhz", 1165.0)?;
    if freq <= 0.0 {
        return Err(err("--freq-mhz must be positive"));
    }
    let r = estimate_asic(&model, &AsicConfig::tsmc65(), freq, 10.0);
    Ok(format!(
        "cycles/inference: {}\nlatency: {:.3} µs ({:.2}% of a 10 µs epoch)\narea: {:.4} mm² @65nm, {:.4} mm² @28nm\npower: {:.4} W, energy/inference: {:.3e} J\n",
        r.cycles_per_inference,
        r.latency_us,
        r.epoch_fraction * 100.0,
        r.area_65nm_mm2,
        r.area_28nm_mm2,
        r.power_w,
        r.energy_per_inference_j
    ))
}

/// Per-span-name aggregation of a Chrome/Perfetto trace: event count and
/// total/mean wall time, so `--trace-out` files are inspectable without
/// leaving the CLI.
fn summarize_chrome_trace(text: &str, path: &str) -> CmdResult {
    let root: serde_json::Value =
        serde_json::from_str(text).map_err(|e| err(format!("cannot parse trace '{path}': {e}")))?;
    let events = root
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| err(format!("trace '{path}' has no traceEvents array")))?;
    let mut by_name: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut spans = 0u64;
    for event in events {
        // Only complete ("X") events carry a duration; metadata ("M") and
        // instants are counted separately below.
        if event.get("ph").and_then(serde_json::Value::as_str) != Some("X") {
            continue;
        }
        let name = event.get("name").and_then(serde_json::Value::as_str).unwrap_or("?");
        let dur = event.get("dur").and_then(serde_json::Value::as_f64).unwrap_or(0.0);
        let entry = by_name.entry(name.to_string()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += dur;
        spans += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace     : {} events, {} spans, {} distinct span names",
        events.len(),
        spans,
        by_name.len()
    );
    let mut rows: Vec<(&String, &(u64, f64))> = by_name.iter().collect();
    rows.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(out, "{:<44} {:>8} {:>12} {:>12}", "span", "count", "total ms", "mean µs");
    for (name, (count, total_us)) in rows.into_iter().take(20) {
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>12.3} {:>12.1}",
            name,
            count,
            total_us / 1e3,
            total_us / *count as f64
        );
    }
    Ok(out)
}

/// `inspect [audit.jsonl] [--metrics <file.json>] [--trace <file.json>]
/// [--profile <file.json>]`: summarizes a decision audit trail written by
/// `simulate --audit-out`, a `--metrics-out` snapshot (simulation-engine
/// counters included), a `--trace-out` Chrome trace, and/or a
/// `--profile-out` phase profile.
pub fn inspect(args: &Args) -> CmdResult {
    let metrics_path = args.get("metrics");
    let mut out = String::new();
    if let Some(path) = args.get("trace") {
        let text = fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read trace '{path}': {e}")))?;
        let _ = write!(out, "{}", summarize_chrome_trace(&text, path)?);
    }
    if let Some(path) = args.get("profile") {
        let text = fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read profile '{path}': {e}")))?;
        let profile: obs::prof::ProfileSnapshot = serde_json::from_str(&text)
            .map_err(|e| err(format!("cannot parse profile '{path}': {e}")))?;
        let _ = write!(out, "{}", obs::prof::table(&profile));
    }
    match (args.positional(), &metrics_path) {
        ([], None) => {
            if out.is_empty() {
                return Err(err(
                    "inspect expects an audit JSONL file and/or --metrics/--trace/--profile \
                     <file.json>",
                ));
            }
        }
        ([], Some(_)) => {}
        ([path], _) => {
            let text = fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read audit '{path}': {e}")))?;
            let records = obs::audit::parse_jsonl(&text)
                .map_err(|e| err(format!("cannot parse audit '{path}': {e}")))?;
            if records.is_empty() {
                return Err(err(format!("audit '{path}' contains no records")));
            }
            let _ = writeln!(out, "{}", obs::summarize(&records));
        }
        _ => return Err(err("inspect expects at most one audit JSONL file")),
    }
    if let Some(path) = metrics_path {
        let text = fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read metrics '{path}': {e}")))?;
        let snapshot: obs::metrics::MetricsSnapshot = serde_json::from_str(&text)
            .map_err(|e| err(format!("cannot parse metrics '{path}': {e}")))?;
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "metrics   : {} counters, {} gauges, {} histograms",
            snapshot.counters.len(),
            snapshot.gauges.len(),
            snapshot.histograms.len()
        );
        let _ = writeln!(out, "sim epochs: {}", counter("sim.epochs"));
        let _ = writeln!(out, "sim engine: {} skipped cycles", counter("sim.skipped_cycles"));
        let _ = writeln!(
            out,
            "replay    : {} cache hits, {} cache misses",
            counter("sim.cache_hits"),
            counter("sim.cache_misses")
        );
        let memo_hits = counter("decide.memo_hits");
        let memo_misses = counter("decide.memo_misses");
        if memo_hits + memo_misses > 0 {
            let _ = writeln!(
                out,
                "decide    : {} memo hits, {} memo misses ({:.1}% hit rate)",
                memo_hits,
                memo_misses,
                100.0 * memo_hits as f64 / (memo_hits + memo_misses) as f64
            );
        }
        if let Some(h) = snapshot.histograms.get("decide.plan_latency_ns") {
            let _ = writeln!(
                out,
                "decide    : {} plan decisions, mean latency {:.0} ns",
                h.count,
                h.mean()
            );
        }
    }
    Ok(out)
}

/// Renders one `/metrics.json?window=N` report as a rates table.
fn render_window(addr: &str, report: &obs::series::WindowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{addr} — uptime {:.1} s, window {} samples over {:.2} s",
        report.uptime_s, report.samples, report.seconds
    );
    let derived: [(&str, f64); 5] = [
        ("sim epochs/s", report.rate("sim.epochs")),
        ("sim cycles skipped/s", report.rate("sim.skipped_cycles")),
        ("datagen replays/s", report.rate("datagen.replays")),
        ("datagen samples/s", report.rate("datagen.samples")),
        ("train epochs/s", report.rate("tinynn.train.epochs")),
    ];
    for (label, rate) in derived {
        let _ = writeln!(out, "  {label:<22}: {rate:>12.1}");
    }
    match report.delta_ratio("sim.cache_hits", "sim.cache_misses") {
        Some(ratio) => {
            let _ = writeln!(out, "  {:<22}: {:>12.3}", "cache hit ratio", ratio);
        }
        None => {
            let _ = writeln!(out, "  {:<22}: {:>12}", "cache hit ratio", "-");
        }
    }
    let drops = report.counters.get("exec.quarantine_dropped").map_or(0, |c| c.delta);
    let _ = writeln!(out, "  {:<22}: {:>12}", "quarantine drops", drops);
    // Any other counter that moved in the window, fastest first.
    let mut moved: Vec<(&String, &obs::series::CounterWindow)> = report
        .counters
        .iter()
        .filter(|(name, c)| {
            c.delta > 0
                && !matches!(
                    name.as_str(),
                    "sim.epochs"
                        | "sim.skipped_cycles"
                        | "datagen.replays"
                        | "datagen.samples"
                        | "tinynn.train.epochs"
                        | "sim.cache_hits"
                        | "sim.cache_misses"
                        | "exec.quarantine_dropped"
                )
        })
        .collect();
    moved.sort_by(|a, b| b.1.rate_per_s.total_cmp(&a.1.rate_per_s).then_with(|| a.0.cmp(b.0)));
    for (name, c) in moved.into_iter().take(8) {
        let _ = writeln!(out, "  {:<22}: {:>12.1}/s (+{})", name, c.rate_per_s, c.delta);
    }
    out
}

/// `watch <addr>`: polls a `--serve-metrics` exporter's windowed endpoint
/// and renders rates (epochs/s, cache hit ratio, quarantine drops) rather
/// than lifetime totals. `--count N` polls N times, `--interval-ms`
/// spacing them.
pub fn watch(args: &Args) -> CmdResult {
    let [addr] = args.positional() else {
        return Err(err("watch expects exactly one <addr>, e.g. 'watch 127.0.0.1:9184'"));
    };
    let window = args.get_usize("window", 20)?.max(1);
    let count = args.get_usize("count", 1)?.max(1);
    let interval_ms = args.get_usize("interval-ms", 1000)?;
    let mut out = String::new();
    for i in 0..count {
        if i > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms as u64));
        }
        let (status, body) = obs::export::http_get(addr, &format!("/metrics.json?window={window}"))
            .map_err(|e| err(format!("cannot reach exporter at {addr}: {e}")))?;
        if status != 200 {
            return Err(err(format!("exporter at {addr} returned HTTP {status}")));
        }
        let report: obs::series::WindowReport = serde_json::from_str(&body)
            .map_err(|e| err(format!("malformed window report from {addr}: {e}")))?;
        let _ = write!(out, "{}", render_window(addr, &report));
    }
    Ok(out)
}

/// Loads every `BENCH_<series>*.json` in `dir`, keeping the newest file
/// per series (ISO dates in the filename sort lexicographically). Numeric
/// fields become the [`obs::slo::BenchPoint`]; booleans read 0/1.
fn load_bench_dir(dir: &str) -> Result<BTreeMap<String, obs::slo::BenchPoint>, ParseArgsError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| err_in("slo", format!("cannot read BENCH directory '{dir}': {e}")))?;
    let mut newest: BTreeMap<String, String> = BTreeMap::new();
    for entry in entries {
        let entry = entry.map_err(|e| err_in("slo", format!("cannot list '{dir}': {e}")))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let series = name.trim_end_matches(".json").split('.').next().unwrap_or(&name).to_string();
        let slot = newest.entry(series).or_default();
        if name > *slot {
            *slot = name;
        }
    }
    let mut points = BTreeMap::new();
    for (series, file) in newest {
        let path = Path::new(dir).join(&file);
        let text = fs::read_to_string(&path)
            .map_err(|e| err_in("slo", format!("cannot read '{}': {e}", path.display())))?;
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| err_in("slo", format!("cannot parse '{}': {e}", path.display())))?;
        let object = value
            .as_object()
            .ok_or_else(|| err_in("slo", format!("'{}' is not a JSON object", path.display())))?;
        let mut point = obs::slo::BenchPoint::new();
        for (key, field) in object {
            match field {
                serde_json::Value::Number(n) => {
                    point.insert(key.clone(), n.as_f64());
                }
                serde_json::Value::Bool(b) => {
                    point.insert(key.clone(), f64::from(u8::from(*b)));
                }
                _ => {}
            }
        }
        points.insert(series, point);
    }
    if points.is_empty() {
        return Err(err_in("slo", format!("no BENCH_*.json files in '{dir}'")));
    }
    Ok(points)
}

/// `slo-check`: evaluates declarative threshold rules against the perf
/// trajectory, a metrics snapshot, and an audit trail; prints the report
/// and fails (nonzero exit) when any rule is violated.
pub fn slo_check(args: &Args) -> CmdResult {
    let baseline = load_bench_dir(args.require("baseline")?)?;
    let current = match args.get("current") {
        // Without a fresh measurement the newest checked-in point doubles
        // as the current one: the gate then validates the trajectory's own
        // consistency plus the snapshot/audit rules.
        None => baseline.clone(),
        Some(dir) => load_bench_dir(dir)?,
    };
    let metrics = match args.get("metrics") {
        None => None,
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| err_in("slo", format!("cannot read metrics '{path}': {e}")))?;
            Some(
                serde_json::from_str(&text)
                    .map_err(|e| err_in("slo", format!("cannot parse metrics '{path}': {e}")))?,
            )
        }
    };
    let audit = match args.get("audit") {
        None => None,
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| err_in("slo", format!("cannot read audit '{path}': {e}")))?;
            Some(
                obs::audit::parse_jsonl(&text)
                    .map_err(|e| err_in("slo", format!("cannot parse audit '{path}': {e}")))?,
            )
        }
    };
    let rules = match args.get("slo") {
        None => obs::slo::default_rules(),
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| err_in("slo", format!("cannot read SLO rules '{path}': {e}")))?;
            obs::slo::parse_slo_toml(&text).map_err(|e| err_in("slo", format!("{path}: {e}")))?
        }
    };
    let inputs = obs::slo::SloInputs { baseline, current, metrics, audit };
    let report = obs::slo::evaluate(&rules, &inputs, args.flag("strict"));
    if report.passed() {
        Ok(format!("{report}\n"))
    } else {
        Err(err_in("slo", report.to_string()))
    }
}

/// Dispatches a parsed argument set to its subcommand.
///
/// # Errors
///
/// Returns a [`ParseArgsError`] describing any invalid input or I/O failure.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command() {
        "list-benchmarks" => list_benchmarks(),
        "simulate" => simulate(args),
        "fleet" => fleet(args),
        "datagen" => datagen(args),
        "train" => train(args),
        "compress" => compress(args),
        "evaluate" => eval_cmd(args),
        "asic" => asic(args),
        "inspect" => inspect(args),
        "watch" => watch(args),
        "slo-check" => slo_check(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command '{other}'\n\n{}", usage()))),
    }
}

/// [`dispatch`] wrapped with the global observability options: sets the log
/// level, enables metrics/tracing when an output file or live exporter is
/// requested, starts/stops the embedded metrics server, and writes the
/// snapshot, Chrome-trace and profile files after the command finishes
/// (even a failing command leaves its partial telemetry behind).
///
/// # Errors
///
/// As [`dispatch`], plus I/O failures writing the requested output files or
/// binding the metrics listener.
pub fn run(args: &Args) -> CmdResult {
    const LEVELS: &str = "off|error|warn|info|debug";
    if args.flag("log-level") {
        return Err(ParseArgsError::invalid_value("log-level", "", LEVELS));
    }
    if let Some(level) = args.get("log-level") {
        let level = obs::log::parse_level(level)
            .map_err(|_| ParseArgsError::invalid_value("log-level", level, LEVELS))?;
        obs::log::set_level(level);
    }
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let profile_out = args.get("profile-out");
    let profile_collapsed = args.get("profile-collapsed");
    let serve_metrics = args.get("serve-metrics");
    if metrics_out.is_some() || trace_out.is_some() || serve_metrics.is_some() {
        obs::set_enabled(true);
    }
    if profile_out.is_some() || profile_collapsed.is_some() {
        obs::prof::set_profiling(true);
    }
    let server = match serve_metrics {
        None => None,
        Some(addr) => {
            let server = obs::export::MetricsServer::start(addr)
                .map_err(|e| err(format!("cannot serve metrics on '{addr}': {e}")))?;
            obs::info!("serving metrics on {}", server.local_addr());
            Some(server)
        }
    };
    let result = dispatch(args);
    if let Some(path) = metrics_out {
        fs::write(path, obs::metrics::global().snapshot_json())
            .map_err(|e| err(format!("cannot write metrics '{path}': {e}")))?;
    }
    if let Some(path) = trace_out {
        fs::write(path, obs::trace::chrome_trace_json())
            .map_err(|e| err(format!("cannot write trace '{path}': {e}")))?;
    }
    if profile_out.is_some() || profile_collapsed.is_some() {
        let profile = obs::prof::snapshot();
        if let Some(path) = profile_out {
            let json = serde_json::to_string_pretty(&profile)
                .map_err(|e| err(format!("cannot serialize profile: {e}")))?;
            fs::write(path, json)
                .map_err(|e| err(format!("cannot write profile '{path}': {e}")))?;
        }
        if let Some(path) = profile_collapsed {
            fs::write(path, obs::prof::collapsed(&profile))
                .map_err(|e| err(format!("cannot write collapsed profile '{path}': {e}")))?;
        }
    }
    if let Some(server) = server {
        let linger = args.get_f64("serve-linger", 0.0)?;
        if linger > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(linger.min(600.0)));
        }
        server.shutdown();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_benchmarks_contains_suite_members() {
        let out = list_benchmarks().unwrap();
        assert!(out.contains("sgemm"));
        assert!(out.contains("lbm"));
        assert!(out.contains("polybench"));
    }

    #[test]
    fn simulate_static_small() {
        let args =
            Args::parse(["simulate", "--benchmark", "lbm", "--clusters", "2", "--scale", "0.05"])
                .unwrap();
        let out = simulate(&args).unwrap();
        assert!(out.contains("completed : true"), "{out}");
        assert!(out.contains("EDP"));
    }

    #[test]
    fn fleet_runs_small_fleet_with_batched_service() {
        let args = Args::parse([
            "fleet",
            "--gpus",
            "3",
            "--max-batch",
            "4",
            "--shards",
            "1",
            "--clusters",
            "2",
            "--scale",
            "0.02",
            "--horizon-us",
            "300",
        ])
        .unwrap();
        let out = fleet(&args).unwrap();
        assert!(out.contains("fleet     : 3 x"), "{out}");
        assert!(out.contains("decisions :"), "{out}");
        assert!(out.contains("misses    : 0 past deadline"), "{out}");
    }

    #[test]
    fn fleet_rejects_bad_inputs() {
        let args = Args::parse(["fleet", "--gpus", "0"]).unwrap();
        assert!(fleet(&args).unwrap_err().to_string().contains("--gpus"));
        let args = Args::parse(["fleet", "--gpus", "1", "--benchmark", "nope"]).unwrap();
        assert!(fleet(&args).unwrap_err().to_string().contains("unknown benchmark"));
    }

    #[test]
    fn simulate_rejects_unknown_benchmark_and_governor() {
        let args = Args::parse(["simulate", "--benchmark", "nope", "--clusters", "2"]).unwrap();
        assert!(simulate(&args).unwrap_err().to_string().contains("unknown benchmark"));
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--governor",
            "magic",
        ])
        .unwrap();
        assert!(simulate(&args).unwrap_err().to_string().contains("unknown governor"));
    }

    #[test]
    fn datagen_train_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.json");
        let model_path = dir.join("model.json");

        let args = Args::parse([
            "datagen",
            "--out",
            data_path.to_str().unwrap(),
            "--benchmarks",
            "lbm,sgemm",
            "--scale",
            "0.05",
            "--clusters",
            "2",
            "--jobs",
            "2",
        ])
        .unwrap();
        let out = datagen(&args).unwrap();
        assert!(out.contains("total:"), "{out}");

        let args = Args::parse([
            "train",
            "--dataset",
            data_path.to_str().unwrap(),
            "--out",
            model_path.to_str().unwrap(),
            "--epochs",
            "10",
            "--arch",
            "compressed",
        ])
        .unwrap();
        let out = train(&args).unwrap();
        assert!(out.contains("accuracy"), "{out}");

        let args = Args::parse([
            "evaluate",
            "--model",
            model_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = eval_cmd(&args).unwrap();
        assert!(out.contains("decision accuracy"));

        let args = Args::parse(["asic", "--model", model_path.to_str().unwrap()]).unwrap();
        let out = asic(&args).unwrap();
        assert!(out.contains("cycles/inference"));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_with_rfe_selects_features() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_rfe_test");
        fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.json");
        let model_path = dir.join("model.json");
        let args = Args::parse([
            "datagen",
            "--out",
            data_path.to_str().unwrap(),
            "--benchmarks",
            "lbm",
            "--scale",
            "0.05",
            "--clusters",
            "2",
        ])
        .unwrap();
        datagen(&args).unwrap();

        // A cheap selection: two elimination rounds, one epoch each. Going
        // through `run` with `--metrics-out` also checks that the training
        // and RFE counters surface in the snapshot.
        let metrics_path = dir.join("metrics.json");
        let args = Args::parse([
            "train",
            "--dataset",
            data_path.to_str().unwrap(),
            "--out",
            model_path.to_str().unwrap(),
            "--epochs",
            "5",
            "--arch",
            "compressed",
            "--rfe",
            "38",
            "--rfe-epochs",
            "1",
            "--jobs",
            "2",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("RFE selected"), "{out}");
        assert!(out.contains("power_total_w"), "PPC always survives: {out}");
        let model = CombinedModel::load(&model_path).unwrap();
        assert_eq!(model.feature_set.len(), 39, "38 indirect + PPC");
        let snapshot = fs::read_to_string(&metrics_path).unwrap();
        for name in ["rfe.rounds", "rfe.parallel_tasks", "tinynn.train.epochs"] {
            assert!(snapshot.contains(name), "metrics snapshot must expose {name}: {snapshot}");
        }

        let args = Args::parse([
            "train",
            "--dataset",
            data_path.to_str().unwrap(),
            "--out",
            model_path.to_str().unwrap(),
            "--rfe",
            "0",
        ])
        .unwrap();
        assert!(train(&args).unwrap_err().to_string().contains("--rfe"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dispatch_help_and_unknown() {
        let args = Args::parse(["help"]).unwrap();
        assert!(dispatch(&args).unwrap().contains("USAGE"));
        let args = Args::parse(["frobnicate"]).unwrap();
        assert!(dispatch(&args).unwrap_err().to_string().contains("unknown command"));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn simulate_writes_a_trace_csv() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_trace_test");
        fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.csv");
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--governor",
            "pcstall",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        simulate(&args).unwrap();
        let csv = fs::read_to_string(&trace).unwrap();
        assert!(csv.starts_with("epoch,cluster"));
        assert!(csv.lines().count() > 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_with_oracle_is_rejected() {
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--governor",
            "oracle",
            "--trace",
            "/tmp/never-written.csv",
        ])
        .unwrap();
        let e = simulate(&args).unwrap_err();
        assert!(e.to_string().contains("oracle"));
    }

    #[test]
    fn simulate_rejects_bad_op_index() {
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--op",
            "99",
        ])
        .unwrap();
        assert!(simulate(&args).unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn simulate_writes_and_inspect_summarizes_an_audit_trail() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_audit_test");
        fs::create_dir_all(&dir).unwrap();
        let audit = dir.join("audit.jsonl");
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--governor",
            "pcstall",
            "--audit-out",
            audit.to_str().unwrap(),
            "--audit-cap",
            "64",
        ])
        .unwrap();
        simulate(&args).unwrap();
        let text = fs::read_to_string(&audit).unwrap();
        assert!(text.lines().count() >= 2, "expect one record per decide(): {text}");
        let records = obs::audit::parse_jsonl(&text).unwrap();
        assert!(records.iter().all(|r| r.freq_mhz > 0.0));

        let args = Args::parse(["inspect", audit.to_str().unwrap()]).unwrap();
        let out = inspect(&args).unwrap();
        assert!(out.contains("epochs audited"), "{out}");
        assert!(out.contains("residency"), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_with_oracle_is_rejected() {
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--governor",
            "oracle",
            "--audit-out",
            "/tmp/never-written.jsonl",
        ])
        .unwrap();
        assert!(simulate(&args).unwrap_err().to_string().contains("oracle"));
    }

    #[test]
    fn inspect_rejects_missing_and_malformed_input() {
        let args = Args::parse(["inspect", "/nonexistent/audit.jsonl"]).unwrap();
        assert!(inspect(&args).unwrap_err().to_string().contains("cannot read"));
        let args = Args::parse(["inspect"]).unwrap();
        assert!(inspect(&args).unwrap_err().to_string().contains("--metrics"));
        let args = Args::parse(["inspect", "--metrics", "/nonexistent/metrics.json"]).unwrap();
        assert!(inspect(&args).unwrap_err().to_string().contains("cannot read metrics"));
    }

    #[test]
    fn run_writes_metrics_and_trace_files() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_obs_test");
        fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.json");
        let args = Args::parse([
            "simulate",
            "--benchmark",
            "lbm",
            "--clusters",
            "2",
            "--scale",
            "0.05",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        let snapshot = fs::read_to_string(&metrics).unwrap();
        assert!(snapshot.contains("sim.epochs"), "simulate increments sim.epochs: {snapshot}");
        let trace_json = fs::read_to_string(&trace).unwrap();
        assert!(trace_json.contains("traceEvents"), "{trace_json}");
        assert!(trace_json.contains("sim.run"), "{trace_json}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn datagen_replay_cache_warms_and_inspect_summarizes_metrics() {
        let dir = std::env::temp_dir().join("ssmdvfs_cli_replay_cache_test");
        fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache.json");
        let cold = dir.join("cold.json");
        let warm = dir.join("warm.json");
        let metrics = dir.join("metrics.json");
        let base = |out: &std::path::Path| {
            vec![
                "datagen".to_string(),
                "--out".into(),
                out.to_str().unwrap().into(),
                "--benchmarks".into(),
                "sgemm".into(),
                "--scale".into(),
                "0.05".into(),
                "--clusters".into(),
                "2".into(),
                "--jobs".into(),
                "2".into(),
                "--replay-cache".into(),
                cache.to_str().unwrap().into(),
            ]
        };
        let args = Args::parse(base(&cold)).unwrap();
        let out = datagen(&args).unwrap();
        assert!(out.contains("replay cache: 0 hits"), "cold run must miss: {out}");
        assert!(cache.exists(), "cache file must be persisted");

        // Warm rerun at a different worker count: every replay is served
        // from the cache and the dataset bytes are unchanged.
        let mut warm_args = base(&warm);
        warm_args[10] = "4".into();
        warm_args.extend(["--metrics-out".to_string(), metrics.to_str().unwrap().into()]);
        let args = Args::parse(warm_args).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains(", 0 misses"), "warm run must be all hits: {out}");
        assert_eq!(
            fs::read(&cold).unwrap(),
            fs::read(&warm).unwrap(),
            "cache hits must not change dataset bytes"
        );

        let args = Args::parse(["inspect", "--metrics", metrics.to_str().unwrap()]).unwrap();
        let out = inspect(&args).unwrap();
        assert!(out.contains("cache hits"), "{out}");
        assert!(out.contains("skipped cycles"), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_bad_log_level() {
        let args = Args::parse(["help", "--log-level", "shouty"]).unwrap();
        let e = run(&args).unwrap_err();
        assert_eq!(e.kind(), crate::args::ErrorKind::InvalidValue);
        assert!(e.to_string().contains("invalid value 'shouty' for --log-level"), "{e}");
        assert!(e.to_string().contains("off|error|warn|info|debug"), "{e}");
    }

    #[test]
    fn run_rejects_mixed_garbage_log_level() {
        for junk in ["Info rmation", "debug!!", "war\tn", "\u{1F600}"] {
            let args = Args::parse(["help", "--log-level", junk]).unwrap();
            let e = run(&args).unwrap_err();
            assert_eq!(e.kind(), crate::args::ErrorKind::InvalidValue, "{junk}: {e}");
            assert!(e.to_string().contains("--log-level"), "{junk}: {e}");
        }
    }

    #[test]
    fn run_rejects_valueless_log_level_flag() {
        let args = Args::parse(["help", "--log-level"]).unwrap();
        let e = run(&args).unwrap_err();
        assert_eq!(e.kind(), crate::args::ErrorKind::InvalidValue);
    }

    #[test]
    fn run_accepts_case_insensitive_and_padded_log_levels() {
        for ok in ["INFO", "Warn", " debug ", "OFF"] {
            let args = Args::parse(["help", "--log-level", ok]).unwrap();
            assert!(run(&args).is_ok(), "level '{ok}' should parse");
        }
        obs::log::set_level(obs::log::Level::Off);
    }

    #[test]
    fn ondemand_and_flemma_paths_run() {
        for gov in ["ondemand", "flemma"] {
            let args = Args::parse([
                "simulate",
                "--benchmark",
                "histo",
                "--clusters",
                "2",
                "--scale",
                "0.05",
                "--governor",
                gov,
            ])
            .unwrap();
            let out = simulate(&args).unwrap();
            assert!(out.contains("completed : true"), "{gov}: {out}");
        }
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ssmdvfs_cli_{tag}"));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn watch_renders_rates_from_live_exporter() {
        let server = obs::export::MetricsServer::start("127.0.0.1:0").unwrap();
        obs::metrics::global().counter("sim.epochs").inc(5);
        let addr = server.local_addr().to_string();
        let args = Args::parse(["watch", &addr, "--window", "10"]).unwrap();
        let out = watch(&args).unwrap();
        assert!(out.contains(&addr), "{out}");
        assert!(out.contains("sim epochs/s"), "{out}");
        assert!(out.contains("cache hit ratio"), "{out}");
        assert!(out.contains("quarantine drops"), "{out}");
        server.shutdown();
    }

    #[test]
    fn watch_rejects_unreachable_exporter() {
        // Reserved port on localhost that nothing listens on.
        let args = Args::parse(["watch", "127.0.0.1:1"]).unwrap();
        assert!(watch(&args).unwrap_err().to_string().contains("cannot reach"));
    }

    #[test]
    fn slo_check_passes_on_flat_trajectory_and_fails_on_regression() {
        let base = tmp_dir("slo_base");
        let cur = tmp_dir("slo_cur");
        fs::write(base.join("BENCH_train.2026-01-01.json"), r#"{"epochs_per_sec": 100.0}"#)
            .unwrap();
        fs::write(cur.join("BENCH_train.2026-01-02.json"), r#"{"epochs_per_sec": 8.0}"#).unwrap();
        let slo = base.join("slo.toml");
        fs::write(
            &slo,
            "[[rule]]\nname = \"train-throughput\"\nkind = \"max_regression\"\n\
             source = \"BENCH_train\"\nkey = \"epochs_per_sec\"\nmax_regression_pct = 50.0\n",
        )
        .unwrap();
        let slo_path = slo.to_str().unwrap().to_string();

        // Baseline doubling as current: no regression by construction.
        let args =
            Args::parse(["slo-check", "--baseline", base.to_str().unwrap(), "--slo", &slo_path])
                .unwrap();
        let out = slo_check(&args).unwrap();
        assert!(out.contains("PASS train-throughput"), "{out}");
        assert!(out.contains("SLO check passed"), "{out}");

        // A 92% drop blows the 50% budget; the failure names the rule.
        let args = Args::parse([
            "slo-check",
            "--baseline",
            base.to_str().unwrap(),
            "--current",
            cur.to_str().unwrap(),
            "--slo",
            &slo_path,
        ])
        .unwrap();
        let e = slo_check(&args).unwrap_err().to_string();
        assert!(e.contains("FAIL train-throughput"), "{e}");
        assert!(e.contains("SLO check FAILED"), "{e}");

        fs::remove_dir_all(&base).ok();
        fs::remove_dir_all(&cur).ok();
    }

    #[test]
    fn slo_check_strict_fails_on_skipped_rules() {
        let base = tmp_dir("slo_strict");
        fs::write(base.join("BENCH_train.2026-01-01.json"), r#"{"epochs_per_sec": 100.0}"#)
            .unwrap();
        // Default rules include metrics/audit-backed checks we don't feed.
        let args =
            Args::parse(["slo-check", "--baseline", base.to_str().unwrap(), "--strict"]).unwrap();
        assert!(slo_check(&args).is_err());
        let args = Args::parse(["slo-check", "--baseline", base.to_str().unwrap()]).unwrap();
        assert!(slo_check(&args).is_ok());
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn slo_check_reports_parse_errors_with_line_numbers() {
        let base = tmp_dir("slo_bad");
        fs::write(base.join("BENCH_train.2026-01-01.json"), r#"{"epochs_per_sec": 1.0}"#).unwrap();
        let slo = base.join("bad.toml");
        fs::write(&slo, "[[rule]]\nname = \"x\"\nkind = \"nope\"\n").unwrap();
        let args = Args::parse([
            "slo-check",
            "--baseline",
            base.to_str().unwrap(),
            "--slo",
            slo.to_str().unwrap(),
        ])
        .unwrap();
        let e = slo_check(&args).unwrap_err().to_string();
        assert!(e.contains("bad.toml"), "{e}");
        assert!(e.contains("line"), "{e}");
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn inspect_summarizes_chrome_trace() {
        let dir = tmp_dir("trace");
        let path = dir.join("trace.json");
        fs::write(
            &path,
            r#"{"traceEvents":[
                {"ph":"X","name":"datagen.replay","dur":1500,"ts":0,"pid":1,"tid":1},
                {"ph":"X","name":"datagen.replay","dur":500,"ts":2000,"pid":1,"tid":1},
                {"ph":"X","name":"sim.run","dur":3000,"ts":0,"pid":1,"tid":2},
                {"ph":"M","name":"process_name","ts":0,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let args = Args::parse(["inspect", "--trace", path.to_str().unwrap()]).unwrap();
        let out = inspect(&args).unwrap();
        assert!(out.contains("datagen.replay"), "{out}");
        assert!(out.contains("sim.run"), "{out}");
        assert!(out.contains('3'), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_renders_profile_table() {
        let dir = tmp_dir("profile");
        let path = dir.join("profile.json");
        obs::prof::set_profiling(true);
        obs::prof::reset();
        {
            let _outer = obs::prof::scope("cli.test.outer");
            let _inner = obs::prof::scope("cli.test.inner");
        }
        let snapshot = obs::prof::snapshot();
        obs::prof::set_profiling(false);
        fs::write(&path, serde_json::to_string_pretty(&snapshot).unwrap()).unwrap();
        let args = Args::parse(["inspect", "--profile", path.to_str().unwrap()]).unwrap();
        let out = inspect(&args).unwrap();
        assert!(out.contains("cli.test.outer"), "{out}");
        assert!(out.contains("cli.test.outer;cli.test.inner"), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_writes_profile_outputs() {
        let dir = tmp_dir("run_profile");
        let json = dir.join("profile.json");
        let folded = dir.join("profile.folded");
        let args = Args::parse([
            "list-benchmarks",
            "--profile-out",
            json.to_str().unwrap(),
            "--profile-collapsed",
            folded.to_str().unwrap(),
        ])
        .unwrap();
        run(&args).unwrap();
        obs::prof::set_profiling(false);
        let profile: obs::prof::ProfileSnapshot =
            serde_json::from_str(&fs::read_to_string(&json).unwrap()).unwrap();
        let _ = profile; // shape round-trips; content depends on test order
        assert!(fs::read_to_string(&folded).is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
