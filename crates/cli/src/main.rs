//! The `ssmdvfs` command-line tool.

use std::process::ExitCode;

use ssmdvfs_cli::{run, Args};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
