//! A small dependency-free argument parser for the CLI.
//!
//! Supports `--key value`, `--key=value` and bare flags, with typed
//! accessors that produce readable errors. Kept deliberately minimal — the
//! CLI has a handful of options per subcommand and the workspace's
//! dependency policy favors no external parser.

use std::collections::BTreeMap;
use std::fmt;

/// What class of failure a [`ParseArgsError`] describes. Usage mistakes
/// and bad option values are distinguishable so callers (and tests) don't
/// have to pattern-match message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// Malformed invocation: unknown subcommand, missing required option.
    #[default]
    Usage,
    /// An option was present but its value failed to parse or validate
    /// (e.g. `--log-level shouty`).
    InvalidValue,
    /// A pipeline stage failed while running (I/O, simulation, training).
    Stage,
}

/// Error produced while parsing arguments or running a subcommand.
///
/// Command implementations tag errors with the pipeline stage that failed
/// (`datagen`, `train`, ...), so `error: [datagen] failed to write dataset
/// '...'` names the culprit before the binary exits nonzero. [`ErrorKind`]
/// distinguishes usage mistakes from invalid option values and runtime
/// stage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    message: String,
    stage: Option<&'static str>,
    kind: ErrorKind,
}

impl ParseArgsError {
    pub(crate) fn new(message: impl Into<String>) -> ParseArgsError {
        ParseArgsError { message: message.into(), stage: None, kind: ErrorKind::Usage }
    }

    /// An error attributed to a named pipeline stage.
    pub(crate) fn in_stage(stage: &'static str, message: impl Into<String>) -> ParseArgsError {
        ParseArgsError { message: message.into(), stage: Some(stage), kind: ErrorKind::Stage }
    }

    /// A typed rejection of one option's value: names the option, the
    /// offending input, and what would have been accepted.
    pub(crate) fn invalid_value(option: &str, got: &str, expected: &str) -> ParseArgsError {
        ParseArgsError {
            message: format!("invalid value '{got}' for --{option} (expected {expected})"),
            stage: None,
            kind: ErrorKind::InvalidValue,
        }
    }

    /// The pipeline stage this error is attributed to, if any.
    pub fn stage(&self) -> Option<&'static str> {
        self.stage
    }

    /// The class of failure.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(stage) = self.stage {
            write!(f, "[{stage}] ")?;
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseArgsError {}

/// Parsed command-line arguments: a subcommand, positional arguments and
/// `--key value` options.
///
/// # Examples
///
/// ```
/// use ssmdvfs_cli::Args;
///
/// let args = Args::parse(["simulate", "--benchmark", "lbm", "--preset=0.1", "--quiet"])?;
/// assert_eq!(args.command(), "simulate");
/// assert_eq!(args.get("benchmark"), Some("lbm"));
/// assert_eq!(args.get_f64("preset", 0.2)?, 0.1);
/// assert!(args.flag("quiet"));
/// # Ok::<(), ssmdvfs_cli::ParseArgsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error if no subcommand is present or an option is
    /// malformed.
    pub fn parse<I, S>(args: I) -> Result<Args, ParseArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into).peekable();
        let command = iter
            .next()
            .ok_or_else(|| ParseArgsError::new("missing subcommand; try 'ssmdvfs help'"))?;
        if command.starts_with('-') {
            return Err(ParseArgsError::new(format!(
                "expected a subcommand, got option '{command}'; try 'ssmdvfs help'"
            )));
        }
        let mut positional = Vec::new();
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(ParseArgsError::new("bare '--' is not supported"));
                }
                if let Some((key, value)) = stripped.split_once('=') {
                    options.insert(key.to_string(), value.to_string());
                } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    let value = iter.next().expect("peeked Some");
                    options.insert(stripped.to_string(), value);
                } else {
                    flags.push(stripped.to_string());
                }
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { command, positional, options, flags })
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Positional arguments after the subcommand.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Looks up an option's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Returns `true` if a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, ParseArgsError> {
        self.get(key).ok_or_else(|| ParseArgsError::new(format!("missing required option --{key}")))
    }

    /// A float option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ParseArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError::new(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// An integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ParseArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError::new(format!("--{key} expects an integer, got '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_options_flags_and_positionals() {
        let a = Args::parse(["run", "pos1", "pos2", "--x", "1", "--y=2", "--verbose"]).unwrap();
        assert_eq!(a.command(), "run");
        assert_eq!(a.positional(), ["pos1", "pos2"]);
        assert_eq!(a.get("x"), Some("1"));
        assert_eq!(a.get("y"), Some("2"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(["c", "--f", "0.25", "--n", "7"]).unwrap();
        assert_eq!(a.get_f64("f", 0.0).unwrap(), 0.25);
        assert_eq!(a.get_usize("n", 0).unwrap(), 7);
        assert_eq!(a.get_f64("missing", 1.5).unwrap(), 1.5);
        assert!(a.get_f64("n", 0.0).is_ok());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Args::parse(Vec::<String>::new()).unwrap_err().to_string().contains("subcommand"));
        assert!(Args::parse(["--oops"]).unwrap_err().to_string().contains("subcommand"));
        let a = Args::parse(["c", "--n", "xyz"]).unwrap();
        assert!(a.get_usize("n", 0).unwrap_err().to_string().contains("integer"));
        assert!(a.require("missing").unwrap_err().to_string().contains("--missing"));
    }

    #[test]
    fn trailing_option_without_value_is_a_flag() {
        let a = Args::parse(["c", "--quiet"]).unwrap();
        assert!(a.flag("quiet"));
        assert_eq!(a.get("quiet"), None);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn equals_form_with_empty_value() {
        let a = Args::parse(["c", "--name="]).unwrap();
        assert_eq!(a.get("name"), Some(""));
    }

    #[test]
    fn later_options_override_earlier() {
        let a = Args::parse(["c", "--n", "1", "--n", "2"]).unwrap();
        assert_eq!(a.get("n"), Some("2"));
    }

    #[test]
    fn bare_double_dash_is_rejected() {
        assert!(Args::parse(["c", "--"]).unwrap_err().to_string().contains("--"));
    }

    #[test]
    fn negative_numbers_are_not_swallowed_as_options() {
        // `-1` does not start with `--`, so it is a value.
        let a = Args::parse(["c", "--delta", "-1.5"]).unwrap();
        assert_eq!(a.get_f64("delta", 0.0).unwrap(), -1.5);
    }
}
