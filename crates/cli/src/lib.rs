//! Library backing the `ssmdvfs` command-line tool.
//!
//! Exposes the argument parser and subcommand implementations so they can be
//! tested directly; the binary in `main.rs` is a thin shell around
//! [`dispatch`].
//!
//! ```sh
//! ssmdvfs list-benchmarks
//! ssmdvfs simulate --benchmark lbm --governor pcstall --preset 0.10
//! ssmdvfs datagen  --out data.json --benchmarks sgemm,lbm --scale 0.2
//! ssmdvfs train    --dataset data.json --out model.json
//! ssmdvfs simulate --benchmark mvt --governor ssmdvfs --model model.json
//! ```

#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{Args, ErrorKind, ParseArgsError};
pub use commands::{
    asic, compress, datagen, dispatch, eval_cmd, inspect, list_benchmarks, run, simulate,
    slo_check, train, usage, watch,
};
