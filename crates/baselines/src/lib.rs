//! Baseline DVFS governors for the SSMDVFS comparison (Section V-B/C).
//!
//! * [`PcstallGovernor`] — the analytical frequency-sensitivity method
//!   (Bharadwaj et al., ASPLOS 2022), modified per the paper to select the
//!   minimum frequency that keeps predicted performance loss under a
//!   preset.
//! * [`FlemmaGovernor`] — the hierarchical actor-critic RL method (Zou et
//!   al., MLCAD 2020), modified per the paper with a reduced throughput
//!   baseline and a shortened update cycle.
//! * [`OndemandGovernor`] — a Linux-`ondemand`-style utilization governor
//!   (extension; shows why CPU-style policies fail on GPUs).
//! * [`run_oracle`] — a one-step-lookahead oracle (upper-bound ablation,
//!   not in the paper).
//!
//! The static default-point baseline lives in
//! [`gpu_sim::StaticGovernor`].
//!
//! # Examples
//!
//! ```
//! use dvfs_baselines::{PcstallConfig, PcstallGovernor};
//! use gpu_power::VfTable;
//! use gpu_sim::{DvfsGovernor, EpochCounters};
//!
//! let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
//! let idx = governor.decide(0, &EpochCounters::zeroed(), &VfTable::titan_x());
//! assert!(idx < 6);
//! ```

#![warn(missing_docs)]

mod flemma;
mod ondemand;
mod oracle;
mod pcstall;

pub use flemma::{FlemmaConfig, FlemmaGovernor};
pub use ondemand::{OndemandConfig, OndemandGovernor};
pub use oracle::run_oracle;
pub use pcstall::{PcstallConfig, PcstallEdpGovernor, PcstallGovernor};
