//! Baseline DVFS governors for the SSMDVFS comparison (Section V-B/C).
//!
//! * [`PcstallGovernor`] — the analytical frequency-sensitivity method
//!   (Bharadwaj et al., ASPLOS 2022), modified per the paper to select the
//!   minimum frequency that keeps predicted performance loss under a
//!   preset.
//! * [`FlemmaGovernor`] — the hierarchical actor-critic RL method (Zou et
//!   al., MLCAD 2020), modified per the paper with a reduced throughput
//!   baseline and a shortened update cycle.
//! * [`OndemandGovernor`] — a Linux-`ondemand`-style utilization governor
//!   (extension; shows why CPU-style policies fail on GPUs).
//! * [`run_oracle`] — a one-step-lookahead oracle (upper-bound ablation,
//!   not in the paper).
//!
//! The static default-point baseline lives in
//! [`gpu_sim::StaticGovernor`].
//!
//! # Examples
//!
//! ```
//! use dvfs_baselines::{PcstallConfig, PcstallGovernor};
//! use gpu_power::VfTable;
//! use gpu_sim::{DvfsGovernor, EpochCounters};
//!
//! let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
//! let idx = governor.decide(0, &EpochCounters::zeroed(), &VfTable::titan_x());
//! assert!(idx < 6);
//! ```

#![warn(missing_docs)]

mod flemma;
mod ondemand;
mod oracle;
mod pcstall;

pub use flemma::{FlemmaConfig, FlemmaGovernor};
pub use ondemand::{OndemandConfig, OndemandGovernor};
pub use oracle::run_oracle;
pub use pcstall::{PcstallConfig, PcstallEdpGovernor, PcstallGovernor};

use gpu_power::VfTable;
use gpu_sim::{AuditRecord, AuditTrail, EpochCounters};

/// Records one heuristic decision into an audit trail. Heuristic baselines
/// carry no learned model, so `logits` stay empty and both prediction
/// fields stay `None`; governors with interpretable per-epoch features
/// (e.g. F-LEMMA) may still pass them through.
pub(crate) fn record_heuristic_decision(
    trail: &mut AuditTrail,
    cluster: usize,
    preset: f64,
    features: Vec<f32>,
    counters: &EpochCounters,
    op: usize,
    table: &VfTable,
) {
    let point = table.point(op);
    trail.record(AuditRecord {
        seq: 0,
        cluster,
        features,
        logits: Vec::new(),
        preset,
        effective_preset: preset,
        predicted_instructions: None,
        actual_instructions: counters.total_instructions(),
        next_predicted_instructions: None,
        starved: false,
        op_index: op,
        freq_mhz: point.freq_mhz(),
        voltage_v: point.voltage_v(),
    });
}

/// Clears an enabled trail in place — same capacity, no reallocation — so a
/// trail always describes exactly one run (mirrors the SSMDVFS governor).
pub(crate) fn reset_trail(audit: &mut Option<AuditTrail>) {
    if let Some(trail) = audit {
        trail.clear();
    }
}
