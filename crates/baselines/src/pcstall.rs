//! PCSTALL: the analytical frequency-sensitivity baseline.
//!
//! Modeled after Bharadwaj et al., "Predict; don't react: enabling
//! efficient fine-grain DVFS in GPUs" (ASPLOS 2022), as adapted in Section
//! V-B of the SSMDVFS paper: the original EDP-minimizing objective is
//! replaced by "pick the minimum frequency whose predicted performance loss
//! stays under the preset", using the same frequency-sensitivity machinery.
//!
//! The analytical core splits an epoch's cycles into frequency-scaling
//! (compute) and frequency-insensitive (memory-stall) parts. If `s` is the
//! insensitive fraction measured at the current clock `f_cur`, predicted
//! execution time at clock `f` relative to the default `f0` is
//!
//! ```text
//! T(f)/T(f0) = ((1 - s) · f_cur/f + s) / ((1 - s) · f_cur/f0 + s)
//! ```
//!
//! Exploiting the iterative computation pattern of GPGPU kernels, `s` is
//! smoothed with an exponential moving average across epochs.

use gpu_power::VfTable;
use gpu_sim::{AuditTrail, CounterId, DvfsGovernor, EpochCounters};
use serde::{Deserialize, Serialize};

/// PCSTALL tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcstallConfig {
    /// Allowed performance loss (e.g. 0.10).
    pub preset: f64,
    /// EWMA smoothing factor for the stall fraction, in (0, 1]; 1 = no
    /// smoothing.
    pub alpha: f64,
}

impl PcstallConfig {
    /// A PCSTALL controller with the paper-style iterative smoothing.
    pub fn new(preset: f64) -> PcstallConfig {
        PcstallConfig { preset, alpha: 0.4 }
    }
}

/// The PCSTALL governor.
///
/// # Examples
///
/// ```
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters};
/// use dvfs_baselines::{PcstallConfig, PcstallGovernor};
///
/// let table = VfTable::titan_x();
/// let mut g = PcstallGovernor::new(PcstallConfig::new(0.10));
/// let idx = g.decide(0, &EpochCounters::zeroed(), &table);
/// assert!(idx < table.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcstallGovernor {
    config: PcstallConfig,
    /// Smoothed frequency-insensitive fraction per cluster.
    stall_frac: Vec<Option<f64>>,
    /// The op index this governor chose last, per cluster (the clock the
    /// incoming counters were measured at).
    last_op: Vec<Option<usize>>,
    audit: Option<AuditTrail>,
    name: String,
}

impl PcstallGovernor {
    /// Creates a PCSTALL governor.
    pub fn new(config: PcstallConfig) -> PcstallGovernor {
        let name = format!("pcstall[{:.0}%]", config.preset * 100.0);
        PcstallGovernor { config, stall_frac: Vec::new(), last_op: Vec::new(), audit: None, name }
    }

    /// The smoothed stall fraction currently estimated for `cluster`.
    pub fn stall_fraction(&self, cluster: usize) -> Option<f64> {
        self.stall_frac.get(cluster).copied().flatten()
    }

    fn ensure(&mut self, cluster: usize) {
        if cluster >= self.stall_frac.len() {
            self.stall_frac.resize(cluster + 1, None);
            self.last_op.resize(cluster + 1, None);
        }
    }

    /// Predicted `T(f)/T(f0) - 1` given the insensitive fraction `s`
    /// measured at `f_cur`.
    fn predicted_loss(s: f64, f_cur: f64, f: f64, f0: f64) -> f64 {
        let t_f = (1.0 - s) * (f_cur / f) + s;
        let t_f0 = (1.0 - s) * (f_cur / f0) + s;
        t_f / t_f0 - 1.0
    }
}

impl DvfsGovernor for PcstallGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        self.ensure(cluster);
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        // Frequency-insensitive cycles: memory-hazard stalls plus the empty
        // tail (no work would not go faster at a higher clock either).
        let insensitive = counters[CounterId::StallMemLoad]
            + counters[CounterId::StallMemOther]
            + counters[CounterId::StallEmpty];
        let measured = (insensitive / cycles).clamp(0.0, 1.0);
        let smoothed = match self.stall_frac[cluster] {
            Some(prev) => self.config.alpha * measured + (1.0 - self.config.alpha) * prev,
            None => measured,
        };
        self.stall_frac[cluster] = Some(smoothed);

        let f_cur = table.point(self.last_op[cluster].unwrap_or(table.default_index())).freq_mhz();
        let f0 = table.default_point().freq_mhz();
        // Minimum frequency whose predicted loss fits the preset.
        let mut choice = table.default_index();
        for idx in 0..table.len() {
            let f = table.point(idx).freq_mhz();
            if Self::predicted_loss(smoothed, f_cur, f, f0) <= self.config.preset {
                choice = idx;
                break;
            }
        }
        self.last_op[cluster] = Some(choice);
        if let Some(trail) = self.audit.as_mut() {
            // The smoothed stall fraction is the whole decision basis —
            // record it so the trail explains the choice.
            crate::record_heuristic_decision(
                trail,
                cluster,
                self.config.preset,
                vec![smoothed as f32],
                counters,
                choice,
                table,
            );
        }
        choice
    }

    fn reset(&mut self) {
        self.stall_frac.clear();
        self.last_op.clear();
        crate::reset_trail(&mut self.audit);
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new(self.name.clone(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

/// The *original* PCSTALL objective (Bharadwaj et al. minimize EDP; the
/// SSMDVFS paper modifies it into the preset-constrained form above —
/// this governor keeps the unmodified objective for comparison).
///
/// Using the same frequency-sensitivity model, predicted EDP at point `f`
/// relative to the current point is `E(f) · T(f)` with
/// `T(f) ∝ (1-s)·f_cur/f + s` and a two-component energy estimate:
/// frequency-proportional dynamic energy at `V²` plus time-proportional
/// static energy.
///
/// # Examples
///
/// ```
/// use dvfs_baselines::PcstallEdpGovernor;
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters};
///
/// let mut g = PcstallEdpGovernor::new();
/// let idx = g.decide(0, &EpochCounters::zeroed(), &VfTable::titan_x());
/// assert!(idx < 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcstallEdpGovernor {
    /// Smoothed frequency-insensitive fraction per cluster.
    stall_frac: Vec<Option<f64>>,
    last_op: Vec<Option<usize>>,
    audit: Option<AuditTrail>,
    alpha: f64,
}

impl PcstallEdpGovernor {
    /// Creates the EDP-objective PCSTALL governor.
    pub fn new() -> PcstallEdpGovernor {
        PcstallEdpGovernor { stall_frac: Vec::new(), last_op: Vec::new(), audit: None, alpha: 0.4 }
    }

    fn predicted_edp(s: f64, f_cur: f64, table: &VfTable, idx: usize) -> f64 {
        let op = table.point(idx);
        let t = (1.0 - s) * (f_cur / op.freq_mhz()) + s;
        // Dynamic energy per unit work ∝ V²; static energy ∝ V · T. The
        // absolute constants cancel in the argmin; the 0.4 static share
        // mirrors the calibrated power model.
        let v = op.voltage_v();
        let vnom = table.default_point().voltage_v();
        let energy = 0.6 * (v / vnom).powi(2) + 0.4 * (v / vnom) * t;
        energy * t
    }
}

impl Default for PcstallEdpGovernor {
    fn default() -> PcstallEdpGovernor {
        PcstallEdpGovernor::new()
    }
}

impl DvfsGovernor for PcstallEdpGovernor {
    fn name(&self) -> &str {
        "pcstall-edp"
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        if cluster >= self.stall_frac.len() {
            self.stall_frac.resize(cluster + 1, None);
            self.last_op.resize(cluster + 1, None);
        }
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let insensitive = counters[CounterId::StallMemLoad]
            + counters[CounterId::StallMemOther]
            + counters[CounterId::StallEmpty];
        let measured = (insensitive / cycles).clamp(0.0, 1.0);
        let smoothed = match self.stall_frac[cluster] {
            Some(prev) => self.alpha * measured + (1.0 - self.alpha) * prev,
            None => measured,
        };
        self.stall_frac[cluster] = Some(smoothed);
        let f_cur = table.point(self.last_op[cluster].unwrap_or(table.default_index())).freq_mhz();
        let choice = (0..table.len())
            .min_by(|&a, &b| {
                Self::predicted_edp(smoothed, f_cur, table, a)
                    .total_cmp(&Self::predicted_edp(smoothed, f_cur, table, b))
            })
            .expect("table is non-empty");
        self.last_op[cluster] = Some(choice);
        if let Some(trail) = self.audit.as_mut() {
            // EDP minimization has no loss preset; 0.0 marks that out.
            crate::record_heuristic_decision(
                trail,
                cluster,
                0.0,
                vec![smoothed as f32],
                counters,
                choice,
                table,
            );
        }
        choice
    }

    fn reset(&mut self) {
        self.stall_frac.clear();
        self.last_op.clear();
        crate::reset_trail(&mut self.audit);
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new("pcstall-edp".to_string(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(stall_frac: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalCycles] = 10_000.0;
        c[CounterId::StallMemLoad] = stall_frac * 10_000.0;
        c[CounterId::TotalInstrs] = (1.0 - stall_frac) * 10_000.0;
        c.recompute_derived();
        c
    }

    #[test]
    fn compute_bound_stays_fast() {
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig::new(0.10));
        // No stalls: any down-clock costs proportionally; only points within
        // 10% of the default qualify.
        let idx = g.decide(0, &counters(0.0), &table);
        assert!(idx >= 4, "compute-bound must stay near the default, got {idx}");
    }

    #[test]
    fn memory_bound_drops_to_the_floor() {
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig::new(0.10));
        // 95% stalls: even 683 MHz predicted loss is tiny.
        let idx = g.decide(0, &counters(0.95), &table);
        assert_eq!(idx, 0, "memory-bound should take the lowest point");
    }

    #[test]
    fn larger_preset_allows_lower_points() {
        let table = VfTable::titan_x();
        let mut tight = PcstallGovernor::new(PcstallConfig::new(0.05));
        let mut loose = PcstallGovernor::new(PcstallConfig::new(0.30));
        let c = counters(0.5);
        assert!(loose.decide(0, &c, &table) <= tight.decide(0, &c, &table));
    }

    #[test]
    fn prediction_formula_sanity() {
        // s = 0: pure compute. At f = f0 the loss is 0; at half clock it
        // doubles time.
        assert!((PcstallGovernor::predicted_loss(0.0, 1000.0, 1000.0, 1000.0)).abs() < 1e-12);
        assert!((PcstallGovernor::predicted_loss(0.0, 1000.0, 500.0, 1000.0) - 1.0).abs() < 1e-12);
        // s = 1: pure memory; no loss anywhere.
        assert!((PcstallGovernor::predicted_loss(1.0, 1000.0, 500.0, 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn accounts_for_measurement_clock() {
        // Counters measured at a low clock show less stall fraction for the
        // same workload; the formula must still predict vs the default.
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig::new(0.10));
        // First decision sends it to a lower point.
        let first = g.decide(0, &counters(0.9), &table);
        assert!(first < table.default_index());
        // Second decision must use the new clock as the measurement clock.
        let second = g.decide(0, &counters(0.9), &table);
        assert!(second < table.len());
    }

    #[test]
    fn edp_variant_downclocks_memory_bound_work() {
        let table = VfTable::titan_x();
        let mut g = PcstallEdpGovernor::new();
        // Memory-bound: everything is stall time; the lowest voltage tier
        // with the least time impact minimizes predicted EDP.
        let idx = g.decide(0, &counters(0.95), &table);
        assert!(idx <= 3, "memory-bound EDP optimum sits in the 1.0 V tier, got {idx}");
        // Compute-bound: time dominates; stays at a fast point.
        g.reset();
        let idx = g.decide(0, &counters(0.0), &table);
        assert!(idx >= 3, "compute-bound EDP optimum stays fast, got {idx}");
    }

    #[test]
    fn audit_trail_records_heuristic_decisions() {
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig::new(0.10));
        assert!(g.audit_trail().is_none(), "audit is opt-in");
        g.enable_audit(8);
        let op = g.decide(0, &counters(0.95), &table);
        let trail = g.audit_trail().expect("enabled trail");
        assert_eq!(trail.len(), 1);
        let rec = trail.iter().next().expect("one record");
        assert_eq!(rec.op_index, op);
        assert!((rec.freq_mhz - table.point(op).freq_mhz()).abs() < 1e-9);
        assert!((rec.preset - 0.10).abs() < 1e-12);
        assert!(rec.predicted_instructions.is_none(), "heuristics carry no calibrator");
        assert_eq!(rec.features.len(), 1, "smoothed stall fraction is recorded");
        // Reset starts a fresh per-run trail at the same capacity.
        g.reset();
        let trail = g.audit_trail().expect("trail survives reset");
        assert_eq!(trail.len(), 0);
        assert_eq!(trail.capacity(), 8);
    }

    #[test]
    fn edp_variant_audits_without_a_preset() {
        let table = VfTable::titan_x();
        let mut g = PcstallEdpGovernor::new();
        g.enable_audit(4);
        g.decide(0, &counters(0.5), &table);
        let rec = g.audit_trail().expect("enabled").iter().next().expect("one record");
        assert_eq!(rec.preset, 0.0, "EDP objective has no loss preset");
        assert!(rec.calibration_error().is_none());
    }

    #[test]
    fn ewma_smooths_jitter() {
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig { preset: 0.1, alpha: 0.3 });
        g.decide(0, &counters(0.9), &table);
        let s1 = g.stall_fraction(0).unwrap();
        g.decide(0, &counters(0.0), &table);
        let s2 = g.stall_fraction(0).unwrap();
        // One clean epoch must not erase the stall history.
        assert!(s2 > 0.5 * s1, "EWMA should damp the swing: {s1} -> {s2}");
        g.reset();
        assert!(g.stall_fraction(0).is_none());
    }
}
