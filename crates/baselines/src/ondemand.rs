//! An ondemand-style utilization governor (extension; not in the paper).
//!
//! Modeled after the classic Linux `ondemand` cpufreq policy: jump to the
//! highest frequency when utilization crosses an *up threshold*, step down
//! one point at a time while utilization stays below a *down threshold*.
//! It knows nothing about memory-boundedness — utilization on a GPU is high
//! even when every warp waits on DRAM — which is precisely why
//! counter-informed policies (PCSTALL, SSMDVFS) exist. Included as the
//! "what a CPU-style governor would do" reference point.

use gpu_power::VfTable;
use gpu_sim::{AuditTrail, CounterId, DvfsGovernor, EpochCounters};
use serde::{Deserialize, Serialize};

/// Ondemand tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OndemandConfig {
    /// Issue-utilization fraction above which the governor jumps to the
    /// fastest point.
    pub up_threshold: f64,
    /// Utilization fraction below which the governor steps one point down.
    pub down_threshold: f64,
}

impl Default for OndemandConfig {
    fn default() -> OndemandConfig {
        OndemandConfig { up_threshold: 0.80, down_threshold: 0.40 }
    }
}

/// The ondemand governor.
///
/// # Examples
///
/// ```
/// use dvfs_baselines::{OndemandConfig, OndemandGovernor};
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters};
///
/// let mut g = OndemandGovernor::new(OndemandConfig::default());
/// let idx = g.decide(0, &EpochCounters::zeroed(), &VfTable::titan_x());
/// assert!(idx < 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OndemandGovernor {
    config: OndemandConfig,
    current: Vec<Option<usize>>,
    audit: Option<AuditTrail>,
}

impl OndemandGovernor {
    /// Creates an ondemand governor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= down_threshold < up_threshold <= 1`.
    pub fn new(config: OndemandConfig) -> OndemandGovernor {
        assert!(
            (0.0..=1.0).contains(&config.up_threshold)
                && (0.0..=1.0).contains(&config.down_threshold)
                && config.down_threshold < config.up_threshold,
            "thresholds must satisfy 0 <= down < up <= 1"
        );
        OndemandGovernor { config, current: Vec::new(), audit: None }
    }
}

impl DvfsGovernor for OndemandGovernor {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        if cluster >= self.current.len() {
            self.current.resize(cluster + 1, None);
        }
        let cur = self.current[cluster].unwrap_or(table.default_index()).min(table.len() - 1);
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let utilization = counters[CounterId::IssuedCycles] / cycles;
        let next = if utilization >= self.config.up_threshold {
            table.len() - 1
        } else if utilization < self.config.down_threshold {
            cur.saturating_sub(1)
        } else {
            cur
        };
        self.current[cluster] = Some(next);
        if let Some(trail) = self.audit.as_mut() {
            // Utilization is the only input; no loss preset exists here.
            crate::record_heuristic_decision(
                trail,
                cluster,
                0.0,
                vec![utilization as f32],
                counters,
                next,
                table,
            );
        }
        next
    }

    fn reset(&mut self) {
        self.current.clear();
        crate::reset_trail(&mut self.audit);
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new("ondemand".to_string(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(utilization: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalCycles] = 10_000.0;
        c[CounterId::IssuedCycles] = utilization * 10_000.0;
        c[CounterId::TotalInstrs] = utilization * 15_000.0;
        c.recompute_derived();
        c
    }

    #[test]
    fn high_utilization_jumps_to_max() {
        let table = VfTable::titan_x();
        let mut g = OndemandGovernor::new(OndemandConfig::default());
        // Drive it down first.
        for _ in 0..4 {
            g.decide(0, &counters(0.1), &table);
        }
        assert!(g.decide(0, &counters(0.95), &table) == table.len() - 1);
    }

    #[test]
    fn low_utilization_steps_down_gradually() {
        let table = VfTable::titan_x();
        let mut g = OndemandGovernor::new(OndemandConfig::default());
        let seq: Vec<usize> = (0..6).map(|_| g.decide(0, &counters(0.1), &table)).collect();
        assert_eq!(seq, vec![4, 3, 2, 1, 0, 0], "one point per epoch down to the floor");
    }

    #[test]
    fn mid_utilization_holds() {
        let table = VfTable::titan_x();
        let mut g = OndemandGovernor::new(OndemandConfig::default());
        g.decide(0, &counters(0.1), &table);
        let held = g.decide(0, &counters(0.6), &table);
        assert_eq!(held, g.decide(0, &counters(0.6), &table));
    }

    #[test]
    fn clusters_independent_and_reset_clears() {
        let table = VfTable::titan_x();
        let mut g = OndemandGovernor::new(OndemandConfig::default());
        g.decide(0, &counters(0.1), &table);
        assert_eq!(g.decide(1, &counters(0.95), &table), 5);
        g.reset();
        assert!(g.current.is_empty());
    }

    #[test]
    fn audit_trail_records_utilization_and_choice() {
        let table = VfTable::titan_x();
        let mut g = OndemandGovernor::new(OndemandConfig::default());
        g.enable_audit(4);
        let op = g.decide(0, &counters(0.95), &table);
        let trail = g.audit_trail().expect("enabled trail");
        let rec = trail.iter().next().expect("one record");
        assert_eq!(rec.op_index, op);
        assert!((rec.features[0] - 0.95).abs() < 1e-6, "utilization is the recorded feature");
        assert!(rec.predicted_instructions.is_none());
        g.reset();
        let trail = g.audit_trail().expect("trail survives reset");
        assert_eq!(trail.len(), 0);
        assert_eq!(trail.capacity(), 4, "in-place clear keeps capacity");
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        OndemandGovernor::new(OndemandConfig { up_threshold: 0.3, down_threshold: 0.5 });
    }
}
