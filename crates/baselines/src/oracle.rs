//! A one-step-lookahead oracle governor (not in the paper; an upper-bound
//! ablation).
//!
//! At every epoch boundary the oracle clones the simulation once per
//! operating point, steps each clone one epoch, and — because clusters are
//! architecturally independent in this simulator — picks, per cluster, the
//! lowest point whose measured single-epoch throughput stays within the
//! preset of that cluster's default-point throughput. It then applies the
//! chosen per-cluster vector to the real simulation. This is the best any
//! 10 µs-granularity controller with perfect one-epoch foresight could do
//! under the same objective, making it a useful ceiling for SSMDVFS.

use gpu_sim::{CounterId, GpuConfig, SimResult, Simulation, Time, Workload};

/// Runs `workload` to completion under the one-step-lookahead oracle and
/// returns the run summary.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_oracle(cfg: &GpuConfig, workload: Workload, preset: f64, max_time: Time) -> SimResult {
    let table = cfg.vf_table.clone();
    let default_idx = table.default_index();
    let n = cfg.num_clusters;
    let mut sim = Simulation::new(cfg.clone(), workload);

    while !sim.is_complete() && sim.now() < max_time {
        // Probe every operating point one epoch ahead.
        let mut probe_instrs: Vec<Vec<f64>> = Vec::with_capacity(table.len());
        let mut probe_energy: Vec<Vec<f64>> = Vec::with_capacity(table.len());
        for op in 0..table.len() {
            let mut probe = sim.clone();
            let record = probe.step_epoch(&vec![op; n]);
            probe_instrs
                .push(record.clusters.iter().map(|c| c.counters[CounterId::TotalInstrs]).collect());
            probe_energy.push(
                record.clusters.iter().map(|c| c.counters[CounterId::EnergyEpochJ]).collect(),
            );
        }
        // Per cluster: the lowest-energy point whose throughput stays within
        // the preset of the default point's throughput this epoch.
        let ops: Vec<usize> = (0..n)
            .map(|c| {
                let reference = probe_instrs[default_idx][c];
                let floor = reference * (1.0 - preset);
                (0..table.len())
                    .filter(|&op| probe_instrs[op][c] >= floor || reference == 0.0)
                    .min_by(|&a, &b| probe_energy[a][c].total_cmp(&probe_energy[b][c]))
                    .unwrap_or(default_idx)
            })
            .collect();
        sim.step_epoch(&ops);
    }
    sim.result(&format!("oracle[{:.0}%]", preset * 100.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior, StaticGovernor};

    fn memory_workload() -> Workload {
        let k = KernelSpec::new(
            "stream",
            vec![BasicBlock::new(vec![InstrClass::LoadGlobal, InstrClass::IntAlu], 1_200, 0.0)],
            2,
            16,
            MemoryBehavior::streaming(64 << 20),
        );
        Workload::new("stream", vec![k])
    }

    #[test]
    fn oracle_completes_and_beats_the_baseline_edp_on_memory_bound_work() {
        let cfg = GpuConfig::small_test();
        let horizon = Time::from_micros(3_000.0);
        let oracle = run_oracle(&cfg, memory_workload(), 0.10, horizon);
        assert!(oracle.completed);

        let mut baseline_sim = Simulation::new(cfg.clone(), memory_workload());
        let mut baseline_gov = StaticGovernor::default_point(&cfg.vf_table);
        let baseline = baseline_sim.run(&mut baseline_gov, horizon);

        assert!(
            oracle.edp_report().edp() <= baseline.edp_report().edp() * 1.02,
            "oracle EDP {:.3e} should not lose to the static default {:.3e}",
            oracle.edp_report().edp(),
            baseline.edp_report().edp()
        );
        // And it must keep the slowdown bounded (generous margin: the
        // preset applies per-epoch, end-to-end drift can accumulate).
        let loss = oracle.edp_report().performance_loss(&baseline.edp_report());
        assert!(loss < 0.25, "oracle slowdown {loss:.3} out of control");
    }

    #[test]
    fn oracle_uses_lower_points_on_memory_bound_work() {
        let cfg = GpuConfig::small_test();
        let r = run_oracle(&cfg, memory_workload(), 0.10, Time::from_micros(3_000.0));
        let below_default: u64 = r.op_histogram[..cfg.vf_table.default_index()].iter().sum();
        assert!(
            below_default > 0,
            "memory-bound work must pull the oracle below the default point: {:?}",
            r.op_histogram
        );
    }
}
