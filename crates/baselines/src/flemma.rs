//! F-LEMMA: the hierarchical reinforcement-learning baseline.
//!
//! Modeled after Zou et al., "F-LEMMA: Fast learning-based energy
//! management for multi-/many-core processors" (MLCAD 2020), as adapted in
//! Section V-B of the SSMDVFS paper: a *fast path* (a linear softmax
//! classifier) makes a DVFS decision every epoch, while a *slow path* (an
//! advantage actor-critic update over an experience buffer) refreshes the
//! classifier's weights every `update_period` epochs. The reward trades
//! normalized instruction throughput against normalized power, with the
//! throughput baseline reduced by the performance-loss preset ("to allow
//! for performance degradation", per the paper's modification), and the
//! update period is shortened ("faster F-LEMMA") to suit fine-grained DVFS.
//!
//! The structural weakness the paper reports — a warm-up period of
//! exploration that short programs cannot amortize — is inherent to the
//! approach and reproduced here: the policy starts uniform, explores
//! ε-greedily, and only improves as updates accumulate.

use gpu_power::VfTable;
use gpu_sim::{AuditTrail, CounterId, DvfsGovernor, EpochCounters};
use serde::{Deserialize, Serialize};

use gpu_sim::SplitMix64;

/// F-LEMMA tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlemmaConfig {
    /// Allowed performance loss (reduces the throughput baseline).
    pub preset: f64,
    /// Epochs between actor-critic updates (the "faster F-LEMMA"
    /// modification uses a small value).
    pub update_period: usize,
    /// Actor/critic learning rate.
    pub lr: f64,
    /// Reward weight on normalized power (throughput weight is 1).
    pub power_weight: f64,
    /// Initial exploration rate.
    pub epsilon: f64,
    /// Multiplicative ε decay applied at every slow-path update.
    pub epsilon_decay: f64,
    /// RNG seed for exploration.
    pub seed: u64,
}

impl FlemmaConfig {
    /// The adapted configuration used in the comparison.
    pub fn new(preset: f64) -> FlemmaConfig {
        FlemmaConfig {
            preset,
            update_period: 5,
            lr: 0.05,
            power_weight: 0.6,
            epsilon: 0.5,
            epsilon_decay: 0.85,
            seed: 0xF1EA,
        }
    }
}

const NUM_FEATURES: usize = 4;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Experience {
    features: [f64; NUM_FEATURES],
    action: usize,
    reward: f64,
    next_features: [f64; NUM_FEATURES],
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusterState {
    /// Actor weights: one row of `NUM_FEATURES + 1` (bias) per action.
    actor: Vec<Vec<f64>>,
    /// Critic weights: `NUM_FEATURES + 1`.
    critic: Vec<f64>,
    pending: Option<([f64; NUM_FEATURES], usize)>,
    buffer: Vec<Experience>,
    epochs_seen: usize,
    epsilon: f64,
    /// Running throughput baseline (max instructions seen in an epoch).
    instr_baseline: f64,
    /// Running power baseline.
    power_baseline: f64,
}

impl ClusterState {
    fn new(num_actions: usize, epsilon: f64) -> ClusterState {
        ClusterState {
            actor: vec![vec![0.0; NUM_FEATURES + 1]; num_actions],
            critic: vec![0.0; NUM_FEATURES + 1],
            pending: None,
            buffer: Vec::new(),
            epochs_seen: 0,
            epsilon,
            instr_baseline: 1.0,
            power_baseline: 1.0,
        }
    }

    fn logits(&self, f: &[f64; NUM_FEATURES]) -> Vec<f64> {
        self.actor
            .iter()
            .map(|w| w[NUM_FEATURES] + w.iter().zip(f).map(|(wi, fi)| wi * fi).sum::<f64>())
            .collect()
    }

    fn value(&self, f: &[f64; NUM_FEATURES]) -> f64 {
        self.critic[NUM_FEATURES] + self.critic.iter().zip(f).map(|(wi, fi)| wi * fi).sum::<f64>()
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// The F-LEMMA governor.
///
/// # Examples
///
/// ```
/// use gpu_power::VfTable;
/// use gpu_sim::{DvfsGovernor, EpochCounters};
/// use dvfs_baselines::{FlemmaConfig, FlemmaGovernor};
///
/// let table = VfTable::titan_x();
/// let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.10));
/// let idx = g.decide(0, &EpochCounters::zeroed(), &table);
/// assert!(idx < table.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlemmaGovernor {
    config: FlemmaConfig,
    clusters: Vec<ClusterState>,
    rng: SplitMix64,
    num_actions: usize,
    audit: Option<AuditTrail>,
    name: String,
}

impl FlemmaGovernor {
    /// Creates an F-LEMMA governor.
    pub fn new(config: FlemmaConfig) -> FlemmaGovernor {
        let name = format!("flemma[{:.0}%]", config.preset * 100.0);
        let rng = SplitMix64::new(config.seed);
        FlemmaGovernor { config, clusters: Vec::new(), rng, num_actions: 0, audit: None, name }
    }

    fn features(counters: &EpochCounters) -> [f64; NUM_FEATURES] {
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        [
            counters[CounterId::Ipc] / 2.0,
            (counters[CounterId::StallMemLoad] + counters[CounterId::StallMemOther]) / cycles,
            counters[CounterId::PowerTotalW] / 10.0,
            counters[CounterId::L1ReadMissRate],
        ]
    }

    fn reward(config: &FlemmaConfig, state: &ClusterState, counters: &EpochCounters) -> f64 {
        let instr = counters[CounterId::TotalInstrs].max(0.0);
        let power = counters[CounterId::PowerTotalW].max(0.0);
        // Baseline throughput reduced by the preset: meeting (1 - preset) of
        // full speed earns the full throughput reward.
        let reduced_baseline = state.instr_baseline * (1.0 - config.preset);
        let throughput_term = (instr / reduced_baseline.max(1.0)).min(1.2);
        let power_term = power / state.power_baseline.max(1e-9);
        throughput_term - config.power_weight * power_term
    }

    fn slow_update(config: &FlemmaConfig, state: &mut ClusterState) {
        let experiences = std::mem::take(&mut state.buffer);
        for e in &experiences {
            // TD(0) advantage.
            let v = state.value(&e.features);
            let v_next = state.value(&e.next_features);
            let target = e.reward + 0.9 * v_next;
            let advantage = target - v;
            // Critic step.
            for (i, w) in state.critic.iter_mut().enumerate() {
                let x = if i == NUM_FEATURES { 1.0 } else { e.features[i] };
                *w += config.lr * advantage * x;
            }
            // Actor step: policy-gradient on the linear softmax.
            let probs = softmax(&state.logits(&e.features));
            for (a, row) in state.actor.iter_mut().enumerate() {
                let indicator = if a == e.action { 1.0 } else { 0.0 };
                let coeff = config.lr * advantage * (indicator - probs[a]);
                for (i, w) in row.iter_mut().enumerate() {
                    let x = if i == NUM_FEATURES { 1.0 } else { e.features[i] };
                    *w += coeff * x;
                }
            }
        }
        state.epsilon *= config.epsilon_decay;
    }

    /// Current exploration rate of a cluster (for tests/diagnostics).
    pub fn epsilon(&self, cluster: usize) -> Option<f64> {
        self.clusters.get(cluster).map(|c| c.epsilon)
    }
}

impl DvfsGovernor for FlemmaGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        self.num_actions = table.len();
        if cluster >= self.clusters.len() {
            let eps = self.config.epsilon;
            let n = self.num_actions;
            self.clusters.resize_with(cluster + 1, || ClusterState::new(n, eps));
        }
        let features = Self::features(counters);
        let state = &mut self.clusters[cluster];
        state.epochs_seen += 1;
        state.instr_baseline = state.instr_baseline.max(counters[CounterId::TotalInstrs]);
        state.power_baseline = state.power_baseline.max(counters[CounterId::PowerTotalW]);

        // Close out the previous transition with the observed reward.
        if let Some((prev_features, prev_action)) = state.pending.take() {
            let reward = Self::reward(&self.config, state, counters);
            state.buffer.push(Experience {
                features: prev_features,
                action: prev_action,
                reward,
                next_features: features,
            });
        }

        // Slow path: apply buffered updates only every `update_period`
        // epochs (the hierarchical structure of F-LEMMA).
        if state.epochs_seen.is_multiple_of(self.config.update_period) && !state.buffer.is_empty() {
            Self::slow_update(&self.config, state);
        }

        // Fast path: ε-greedy over the linear softmax policy.
        let state = &mut self.clusters[cluster];
        let action = if self.rng.next_f32() < state.epsilon as f32 {
            self.rng.next_below(self.num_actions as u64) as usize
        } else {
            let probs = softmax(&state.logits(&features));
            probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty action set")
        };
        state.pending = Some((features, action));
        if let Some(trail) = self.audit.as_mut() {
            crate::record_heuristic_decision(
                trail,
                cluster,
                self.config.preset,
                features.iter().map(|&f| f as f32).collect(),
                counters,
                action,
                table,
            );
        }
        action
    }

    fn reset(&mut self) {
        // A fresh program: F-LEMMA's online state restarts (the core of its
        // short-program weakness).
        self.clusters.clear();
        self.rng = SplitMix64::new(self.config.seed);
        crate::reset_trail(&mut self.audit);
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new(self.name.clone(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(ipc: f64, stall: f64, power: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalCycles] = 10_000.0;
        c[CounterId::TotalInstrs] = ipc * 10_000.0;
        c[CounterId::StallMemLoad] = stall * 10_000.0;
        c[CounterId::PowerTotalW] = power;
        c.recompute_derived();
        c
    }

    #[test]
    fn decisions_are_valid() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        for i in 0..50 {
            let idx = g.decide(0, &counters(1.0, 0.2, 5.0), &table);
            assert!(idx < table.len(), "epoch {i}");
        }
    }

    #[test]
    fn early_decisions_explore() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        let c = counters(1.0, 0.2, 5.0);
        let decisions: Vec<usize> = (0..30).map(|_| g.decide(0, &c, &table)).collect();
        let distinct: std::collections::HashSet<usize> = decisions.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "a fresh RL policy must explore several actions, saw {distinct:?}"
        );
    }

    #[test]
    fn epsilon_decays_with_updates() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        let c = counters(1.0, 0.2, 5.0);
        for _ in 0..40 {
            g.decide(0, &c, &table);
        }
        let eps = g.epsilon(0).unwrap();
        assert!(eps < FlemmaConfig::new(0.1).epsilon, "ε should have decayed, got {eps}");
    }

    #[test]
    fn learning_moves_policy_weights() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        let c = counters(1.5, 0.1, 8.0);
        for _ in 0..25 {
            g.decide(0, &c, &table);
        }
        let moved = g.clusters[0].actor.iter().flatten().any(|w| w.abs() > 1e-9);
        assert!(moved, "actor weights must change after slow-path updates");
    }

    #[test]
    fn reset_restarts_online_state() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        for _ in 0..20 {
            g.decide(0, &counters(1.0, 0.5, 5.0), &table);
        }
        g.reset();
        assert!(g.clusters.is_empty());
        assert_eq!(g.epsilon(0), None);
    }

    #[test]
    fn audit_trail_records_rl_features() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        g.enable_audit(16);
        for _ in 0..5 {
            g.decide(0, &counters(1.0, 0.5, 5.0), &table);
        }
        let trail = g.audit_trail().expect("enabled trail");
        assert_eq!(trail.len(), 5);
        for rec in trail.iter() {
            assert_eq!(rec.features.len(), NUM_FEATURES, "RL feature vector recorded");
            assert!(rec.op_index < table.len());
            assert!((rec.preset - 0.1).abs() < 1e-12);
        }
        g.reset();
        let trail = g.audit_trail().expect("trail survives reset");
        assert_eq!(trail.len(), 0);
        assert_eq!(trail.capacity(), 16, "in-place clear keeps capacity");
    }

    #[test]
    fn reward_prefers_low_power_at_equal_throughput() {
        let config = FlemmaConfig::new(0.1);
        let mut state = ClusterState::new(6, 0.5);
        state.instr_baseline = 10_000.0;
        state.power_baseline = 10.0;
        let cheap = FlemmaGovernor::reward(&config, &state, &counters(1.0, 0.0, 4.0));
        let pricey = FlemmaGovernor::reward(&config, &state, &counters(1.0, 0.0, 9.0));
        assert!(cheap > pricey);
    }

    #[test]
    fn clusters_learn_independently() {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig::new(0.1));
        for _ in 0..20 {
            g.decide(0, &counters(2.0, 0.0, 9.0), &table);
            g.decide(1, &counters(0.2, 0.9, 2.0), &table);
        }
        assert_ne!(g.clusters[0].actor, g.clusters[1].actor);
    }
}
