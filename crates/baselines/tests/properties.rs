//! Property-based tests for the baseline governors.

use dvfs_baselines::{FlemmaConfig, FlemmaGovernor, PcstallConfig, PcstallGovernor};
use gpu_power::VfTable;
use gpu_sim::{CounterId, DvfsGovernor, EpochCounters};
use proptest::prelude::*;

fn counters(stall_frac: f64, ipc: f64, power: f64) -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalCycles] = 10_000.0;
    c[CounterId::TotalInstrs] = (ipc * 10_000.0).max(0.0);
    c[CounterId::StallMemLoad] = (stall_frac * 10_000.0).max(0.0);
    c[CounterId::PowerTotalW] = power;
    c.recompute_derived();
    c
}

proptest! {
    /// PCSTALL always returns a valid index and is monotone in the stall
    /// fraction: more memory stalls never force a higher frequency.
    #[test]
    fn pcstall_monotone_in_stall_fraction(
        s_lo in 0.0f64..0.5,
        ds in 0.0f64..0.5,
        preset in 0.02f64..0.3,
    ) {
        let table = VfTable::titan_x();
        // Fresh governors so the EWMA state does not couple the two queries.
        let mut g_lo = PcstallGovernor::new(PcstallConfig::new(preset));
        let mut g_hi = PcstallGovernor::new(PcstallConfig::new(preset));
        let lo = g_lo.decide(0, &counters(s_lo, 1.0, 5.0), &table);
        let hi = g_hi.decide(0, &counters(s_lo + ds, 1.0, 5.0), &table);
        prop_assert!(lo < table.len() && hi < table.len());
        prop_assert!(hi <= lo, "more stalls must not raise the frequency: {hi} > {lo}");
    }

    /// PCSTALL is monotone in the preset: a looser preset never forces a
    /// higher frequency.
    #[test]
    fn pcstall_monotone_in_preset(s in 0.0f64..1.0, p_lo in 0.02f64..0.2, dp in 0.0f64..0.3) {
        let table = VfTable::titan_x();
        let mut g_tight = PcstallGovernor::new(PcstallConfig::new(p_lo));
        let mut g_loose = PcstallGovernor::new(PcstallConfig::new(p_lo + dp));
        let c = counters(s, 1.0, 5.0);
        prop_assert!(g_loose.decide(0, &c, &table) <= g_tight.decide(0, &c, &table));
    }

    /// F-LEMMA decisions are always valid indices, for any counter values
    /// and any number of epochs, and reset clears its state.
    #[test]
    fn flemma_decisions_always_valid(
        seed in any::<u64>(),
        epochs in 1usize..60,
        stall in 0.0f64..1.0,
    ) {
        let table = VfTable::titan_x();
        let mut g = FlemmaGovernor::new(FlemmaConfig { seed, ..FlemmaConfig::new(0.1) });
        for _ in 0..epochs {
            let idx = g.decide(0, &counters(stall, 1.0, 5.0), &table);
            prop_assert!(idx < table.len());
        }
        prop_assert!(g.epsilon(0).is_some());
        g.reset();
        prop_assert!(g.epsilon(0).is_none());
    }

    /// PCSTALL state is per-cluster: feeding one cluster never changes
    /// another cluster's estimate.
    #[test]
    fn pcstall_clusters_are_independent(s0 in 0.0f64..1.0, s1 in 0.0f64..1.0) {
        let table = VfTable::titan_x();
        let mut g = PcstallGovernor::new(PcstallConfig::new(0.1));
        g.decide(0, &counters(s0, 1.0, 5.0), &table);
        let before = g.stall_fraction(1);
        g.decide(0, &counters(s1, 1.0, 5.0), &table);
        prop_assert_eq!(g.stall_fraction(1), before);
        prop_assert!(g.stall_fraction(0).is_some());
    }
}
