//! Property-based bit-identity proof for the compiled decision fast path.
//!
//! The [`DecisionPlan`] replaces the governor's unfused engine path; these
//! properties enforce that it reproduces the reference decision arithmetic
//! **byte-for-byte** — memo on or off, dense or CSR heads, ordinal or
//! argmax decode — over random model shapes, feature vectors, presets and
//! warm/cold epoch sequences.
//!
//! The oracle is built purely from the allocating [`CombinedModel`] methods
//! (`decision_logits`, `decode_ordinal`, `predict_instructions`) plus a
//! line-for-line replica of the self-calibration update. That path is
//! independent of `plan.rs` and was pinned to the historical
//! `SsmdvfsGovernor::decide` by the pre-existing
//! `engine_path_matches_model_methods` test, so agreement here proves the
//! plan did not change a single decision bit.

use gpu_sim::{CounterId, EpochCounters};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdvfs::plan::DecisionPlan;
use ssmdvfs::{CombinedModel, FeatureSet, SsmdvfsConfig};
use tinynn::{Matrix, Mlp, Normalizer};

/// A model with random hidden shapes; optionally magnitude-pruned hard
/// enough that both heads compile to the CSR program.
fn build_model(seed: u64, hidden: &[usize], num_ops: usize, sparse: bool) -> CombinedModel {
    let fs = FeatureSet::refined();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dec_shape = vec![fs.len() + 1];
    dec_shape.extend_from_slice(hidden);
    dec_shape.push(num_ops);
    let mut cal_shape = vec![fs.len() + 2];
    cal_shape.extend_from_slice(hidden);
    cal_shape.push(1);
    let mut decision = Mlp::new(&dec_shape, &mut rng);
    let mut calibrator = Mlp::new(&cal_shape, &mut rng);
    if sparse {
        tinynn::prune_magnitude(&mut decision, 0.8);
        tinynn::prune_magnitude(&mut calibrator, 0.8);
    }
    let unit = |n: usize| {
        let lo = vec![-2.0f32; n];
        let hi = vec![2.0f32; n];
        Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]))
    };
    CombinedModel {
        decision_norm: unit(fs.len() + 1),
        calibrator_norm: unit(fs.len() + 2),
        decision,
        calibrator,
        feature_set: fs,
        instr_scale: 1_000.0,
        num_ops,
    }
}

fn counters_for(instrs: f64, stall_frac: f64, salt: f64) -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalInstrs] = instrs;
    c[CounterId::TotalCycles] = 10_000.0;
    c[CounterId::StallEmpty] = stall_frac * 10_000.0;
    c[CounterId::StallMemLoad] = salt;
    c[CounterId::PowerTotalW] = 3.0 + salt * 0.01;
    c[CounterId::L1ReadMiss] = (instrs * 0.07).floor();
    c.recompute_derived();
    c
}

/// The reference: allocating model methods + a replica of the controller's
/// self-calibration state machine, independent of `plan.rs`.
struct Reference {
    effective_preset: f64,
    predicted: Option<f32>,
    err_ewma: f64,
}

impl Reference {
    fn new(config: &SsmdvfsConfig) -> Reference {
        Reference { effective_preset: config.preset, predicted: None, err_ewma: 0.0 }
    }

    fn decide(
        &mut self,
        model: &CombinedModel,
        config: &SsmdvfsConfig,
        counters: &EpochCounters,
        table_len: usize,
    ) -> (usize, f32, Vec<f32>) {
        let features = model.feature_set.extract(counters);
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let starved = counters[CounterId::StallEmpty] / cycles > 0.2;
        if config.calibration && !starved {
            if let Some(predicted) = self.predicted {
                let actual = counters.total_instructions() as f32;
                if predicted > 0.0 {
                    let rel_err = f64::from((predicted - actual) / predicted);
                    self.err_ewma = 0.7 * self.err_ewma + 0.3 * rel_err;
                    if self.err_ewma > config.deadband {
                        self.effective_preset = (self.effective_preset
                            - config.gain * (self.err_ewma - config.deadband) * config.preset)
                            .max(config.min_preset);
                    } else {
                        self.effective_preset = (self.effective_preset
                            + config.recovery * config.preset)
                            .min(config.preset);
                    }
                }
            }
        }
        let logits = model.decision_logits(&features, self.effective_preset as f32);
        let op = if config.argmax_decode {
            tinynn::argmax(&logits).min(table_len - 1)
        } else {
            model.decode_ordinal(&logits).min(table_len - 1)
        };
        let predicted = model.predict_instructions(&features, config.preset as f32, op);
        self.predicted = Some(predicted);
        (op, predicted, logits)
    }
}

/// One generated epoch: instruction count, starvation, and how many times
/// the identical epoch repeats back-to-back (the memo's warm case).
#[derive(Debug, Clone)]
struct Epoch {
    instrs: f64,
    stall_frac: f64,
    repeats: usize,
}

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    (0u32..20_000, any::<bool>(), 1usize..4).prop_map(|(instrs, starved, repeats)| Epoch {
        instrs: instrs as f64,
        // Starved epochs freeze the calibration state, so repeats of them
        // are the memo's guaranteed-hit case; the non-starved fraction
        // exercises misses through the moving state.
        stall_frac: if starved { 0.9 } else { 0.0 },
        repeats,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_equivalence(
    seed: u64,
    hidden: Vec<usize>,
    num_ops: usize,
    sparse: bool,
    preset: f64,
    calibration: bool,
    argmax: bool,
    memo: bool,
    epochs: Vec<Epoch>,
) {
    let model = build_model(seed, &hidden, num_ops, sparse);
    let mut config = SsmdvfsConfig::new(preset);
    config.calibration = calibration;
    config.argmax_decode = argmax;
    let table_len = num_ops; // decode clamps to both; same size is the hot case
    let mut plan = DecisionPlan::compile(&model, &config);
    plan.set_memo(memo);
    let mut slot = plan.new_slot();
    let mut reference = Reference::new(&config);
    let mut step = 0usize;
    for e in &epochs {
        for rep in 0..e.repeats {
            let counters = counters_for(e.instrs, e.stall_frac, (step / 3) as f64);
            let d = plan.decide_slot(&mut slot, &counters, table_len);
            let (op, predicted, logits) = reference.decide(&model, &config, &counters, table_len);
            assert_eq!(d.op, op, "step {step} (repeat {rep}): decision diverged");
            assert_eq!(
                d.predicted.to_bits(),
                predicted.to_bits(),
                "step {step}: prediction diverged"
            );
            assert_eq!(
                d.effective_preset.to_bits(),
                reference.effective_preset.to_bits(),
                "step {step}: effective preset diverged"
            );
            assert_eq!(
                slot.state.err_ewma.to_bits(),
                reference.err_ewma.to_bits(),
                "step {step}: error EWMA diverged"
            );
            let plan_logits: Vec<u32> = plan.logits().iter().map(|v| v.to_bits()).collect();
            let ref_logits: Vec<u32> = logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(plan_logits, ref_logits, "step {step}: logits diverged");
            step += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense heads, memo on and off, over random shapes/presets/sequences.
    #[test]
    fn plan_is_bit_identical_to_reference_dense(
        seed in 0u64..1_000,
        hidden in prop::collection::vec(1usize..16, 1..3),
        num_ops in 2usize..8,
        preset in 0.02f64..0.3,
        calibration in any::<bool>(),
        argmax in any::<bool>(),
        memo in any::<bool>(),
        epochs in prop::collection::vec(epoch_strategy(), 1..12),
    ) {
        run_equivalence(seed, hidden, num_ops, false, preset, calibration, argmax, memo, epochs);
    }

    /// CSR heads (80 % magnitude-pruned): the sparse program must be just
    /// as bit-identical.
    #[test]
    fn plan_is_bit_identical_to_reference_sparse(
        seed in 0u64..1_000,
        hidden in prop::collection::vec(2usize..16, 1..3),
        num_ops in 2usize..8,
        preset in 0.02f64..0.3,
        memo in any::<bool>(),
        epochs in prop::collection::vec(epoch_strategy(), 1..12),
    ) {
        run_equivalence(seed, hidden, num_ops, true, preset, true, false, memo, epochs);
    }

    /// Memo-on and memo-off plans fed the same stream stay in lockstep and
    /// the warm repeats actually hit.
    #[test]
    fn memo_is_invisible_and_hits_on_warm_repeats(
        seed in 0u64..1_000,
        epochs in prop::collection::vec(epoch_strategy(), 2..10),
    ) {
        let model = build_model(seed, &[8], 6, false);
        let config = SsmdvfsConfig::new(0.1);
        let mut warm = DecisionPlan::compile(&model, &config);
        let mut cold = DecisionPlan::compile(&model, &config);
        cold.set_memo(false);
        let mut warm_slot = warm.new_slot();
        let mut cold_slot = cold.new_slot();
        let mut hits = 0usize;
        let mut starved_repeats = 0usize;
        for (i, e) in epochs.iter().enumerate() {
            for rep in 0..e.repeats {
                let counters = counters_for(e.instrs, e.stall_frac, i as f64);
                let w = warm.decide_slot(&mut warm_slot, &counters, 6);
                let c = cold.decide_slot(&mut cold_slot, &counters, 6);
                prop_assert_eq!(w.op, c.op);
                prop_assert_eq!(w.predicted.to_bits(), c.predicted.to_bits());
                prop_assert_eq!(
                    warm_slot.state.effective_preset.to_bits(),
                    cold_slot.state.effective_preset.to_bits()
                );
                hits += w.memo_hit as usize;
                prop_assert!(!c.memo_hit, "a disabled memo must never report hits");
                // A starved repeat freezes the state, so from the second
                // occurrence on it is a guaranteed hit.
                starved_repeats += (e.stall_frac > 0.2 && rep > 0) as usize;
            }
        }
        prop_assert!(
            hits >= starved_repeats,
            "expected at least {} hits (starved repeats), saw {}",
            starved_repeats,
            hits
        );
    }
}
