//! Checkpoint/resume guarantees: a sweep interrupted at any point and
//! resumed from its journal must produce a dataset byte-identical to an
//! uninterrupted run.
//!
//! Interruption is simulated by journaling only a prefix of the jobs an
//! uninterrupted run records (exactly what a SIGKILL mid-sweep leaves
//! behind — the flush-per-line journal can only ever be a prefix of the
//! full job log, modulo one truncated trailing line, which the loader
//! drops).

use gpu_sim::{GpuConfig, Time};
use gpu_workloads::Benchmark;
use proptest::prelude::*;
use ssmdvfs::checkpoint::{self, CheckpointJournal};
use ssmdvfs::{generate_suite_with, DvfsDataset, SuiteOptions};

fn small_suite() -> (Vec<Benchmark>, GpuConfig, ssmdvfs::DataGenConfig) {
    let cfg = GpuConfig::small_test();
    let dg = ssmdvfs::DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(300.0),
        ..ssmdvfs::DataGenConfig::default()
    };
    let benches: Vec<Benchmark> = ["lbm", "sgemm"]
        .iter()
        .map(|n| gpu_workloads::by_name(n).expect("suite benchmark").scaled(0.05))
        .collect();
    (benches, cfg, dg)
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ssmdvfs-resume-test-{tag}-{}.jsonl", std::process::id()));
    p
}

/// Runs the suite journaling to `path`, returning the merged dataset bytes.
fn run_journaled(path: &std::path::Path, resume: bool) -> (Vec<DvfsDataset>, String) {
    let (benches, cfg, dg) = small_suite();
    let mut options = SuiteOptions::new(2);
    if resume {
        options.completed = checkpoint::completed_jobs(checkpoint::load(path).expect("journal"));
        options.journal = Some(CheckpointJournal::append_to(path).expect("journal"));
    } else {
        options.journal = Some(CheckpointJournal::create(path).expect("journal"));
    }
    let outcome = generate_suite_with(&benches, &cfg, &dg, &options).expect("sweep");
    assert!(outcome.faults.is_empty(), "no fault policy, no faults");
    let mut merged = DvfsDataset::default();
    for part in &outcome.datasets {
        merged.samples.extend(part.samples.iter().cloned());
    }
    (outcome.datasets, serde_json::to_string(&merged).expect("dataset serializes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill-anywhere/resume-anywhere: keep an arbitrary prefix of the full
    /// journal (including empty and complete), resume from it, and require
    /// the final dataset bytes to match the uninterrupted run exactly.
    #[test]
    fn resumed_run_is_byte_identical(keep_fraction in 0.0f64..=1.0) {
        let path = temp_journal(&format!("prop{}", (keep_fraction * 1000.0) as u64));
        let (_, uninterrupted) = run_journaled(&path, false);

        // Truncate the journal to a prefix, as an interruption would.
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() as f64) * keep_fraction).floor() as usize;
        let mut prefix = lines[..keep].join("\n");
        if keep > 0 {
            prefix.push('\n');
        }
        std::fs::write(&path, prefix).expect("journal writable");

        let (_, resumed) = run_journaled(&path, true);
        prop_assert_eq!(
            uninterrupted,
            resumed,
            "resume after keeping {}/{} journal lines diverged",
            keep,
            lines.len()
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn resume_with_truncated_final_line_matches() {
    // The literal SIGKILL shape: a journal whose last line was cut mid-write.
    let path = temp_journal("truncline");
    let (_, uninterrupted) = run_journaled(&path, false);

    let text = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "suite must journal at least two jobs");
    let keep = lines.len() / 2;
    let mut damaged = lines[..keep].join("\n");
    damaged.push('\n');
    let half = &lines[keep][..lines[keep].len() / 2];
    damaged.push_str(half);
    std::fs::write(&path, damaged).expect("journal writable");

    let (_, resumed) = run_journaled(&path, true);
    assert_eq!(uninterrupted, resumed, "truncated-final-line resume diverged");
    std::fs::remove_file(&path).ok();
}

#[test]
fn journaled_run_matches_unjournaled_run() {
    // Checkpointing must be observation-only: journaling on/off cannot
    // change the dataset.
    let (benches, cfg, dg) = small_suite();
    let plain = generate_suite_with(&benches, &cfg, &dg, &SuiteOptions::new(2))
        .expect("plain sweep")
        .datasets;

    let path = temp_journal("obsonly");
    let (journaled, _) = run_journaled(&path, false);
    assert_eq!(plain, journaled);

    // A full journal means a resumed run recomputes nothing, yet still
    // yields identical output.
    let (fully_resumed, _) = run_journaled(&path, true);
    assert_eq!(plain, fully_resumed);
    std::fs::remove_file(&path).ok();
}
