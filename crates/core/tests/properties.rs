//! Property-based tests for the SSMDVFS dataset construction and model
//! plumbing.

use gpu_sim::{CounterId, EpochCounters};
use proptest::prelude::*;
use ssmdvfs::{DvfsDataset, FeatureSet, RawSample};
use tinynn::argmax;

/// Builds one context (six samples sharing a breakpoint) with the given
/// per-op losses and instruction counts.
fn context(losses: &[f64; 6], instrs: &[u64; 6], breakpoint: usize) -> Vec<RawSample> {
    (0..6)
        .map(|op| {
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = 1.0;
            c[CounterId::PowerTotalW] = 5.0;
            RawSample {
                benchmark: "p".into(),
                cluster: 0,
                breakpoint,
                counters: c.clone(),
                scaled_counters: c,
                op_index: op,
                perf_loss: losses[op],
                instructions: instrs[op],
            }
        })
        .collect()
}

fn arb_losses() -> impl Strategy<Value = [f64; 6]> {
    // Monotone non-increasing losses in op order (faster point, less loss),
    // as physics dictates.
    prop::collection::vec(0.0f64..0.8, 6).prop_map(|mut v| {
        v.sort_by(|a, b| b.total_cmp(a));
        let mut out = [0.0; 6];
        out.copy_from_slice(&v);
        out[5] = 0.0; // the default point loses nothing against itself
        out
    })
}

proptest! {
    /// Decision labels are monotone: a larger preset never forces a higher
    /// (faster) operating point.
    #[test]
    fn decision_labels_monotone_in_preset(losses in arb_losses()) {
        let dataset = DvfsDataset { samples: context(&losses, &[10_000; 6], 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.decision_data(&fs, 6);
        // Rows within one feature variant share features; sort by the preset
        // column and check the label ordering.
        let mut rows: Vec<(f32, usize)> = (0..data.len())
            .map(|i| (data.x.row(i)[fs.len()], data.y[i]))
            .collect();
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in rows.windows(2) {
            // Same context: higher preset => label (min satisfying op) does
            // not increase.
            prop_assert!(
                pair[1].1 <= pair[0].1,
                "label must be non-increasing in preset: {:?}",
                rows
            );
        }
    }

    /// Every decision label actually satisfies its preset under the measured
    /// losses (or is the fastest point when nothing satisfies it).
    #[test]
    fn decision_labels_satisfy_the_preset(losses in arb_losses()) {
        let dataset = DvfsDataset { samples: context(&losses, &[10_000; 6], 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.decision_data(&fs, 6);
        for i in 0..data.len() {
            let preset = f64::from(data.x.row(i)[fs.len()]);
            let label = data.y[i];
            prop_assert!(
                losses[label] <= preset + 1e-9 || label == 5,
                "label {label} (loss {}) violates preset {preset}",
                losses[label]
            );
            // And it is minimal: no slower point satisfies the preset.
            for &loss_below in &losses[..label] {
                prop_assert!(loss_below > preset - 1e-9);
            }
        }
    }

    /// Calibrator targets always correspond to the instruction count of the
    /// point the decision criterion picks.
    #[test]
    fn calibrator_targets_track_the_decision(losses in arb_losses(), scale in 1u64..4) {
        let instrs: [u64; 6] = std::array::from_fn(|i| 5_000 + 1_000 * i as u64 * scale);
        let dataset = DvfsDataset { samples: context(&losses, &instrs, 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.calibrator_data(&fs, 6, 1_000.0);
        let valid: std::collections::HashSet<u64> =
            instrs.iter().copied().collect();
        for &y in &data.y {
            let raw = (y * 1_000.0).round() as u64;
            prop_assert!(valid.contains(&raw), "target {raw} is not a measured count");
        }
    }

    /// Dataset conversions never panic and keep shapes consistent for any
    /// number of contexts.
    #[test]
    fn conversions_shape_consistent(n_contexts in 1usize..5) {
        let mut samples = Vec::new();
        for b in 0..n_contexts {
            samples.extend(context(&[0.5, 0.4, 0.3, 0.2, 0.1, 0.0], &[8_000; 6], b));
        }
        let dataset = DvfsDataset { samples, ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let dec = dataset.decision_data(&fs, 6);
        prop_assert_eq!(dec.x.cols(), fs.len() + 1);
        prop_assert_eq!(dec.x.rows(), dec.y.len());
        let cal = dataset.calibrator_data(&fs, 6, 1_000.0);
        prop_assert_eq!(cal.x.cols(), fs.len() + 2);
        prop_assert_eq!(cal.x.rows(), cal.y.len());
    }
}

#[test]
fn feature_sets_and_argmax_are_consistent() {
    // Deterministic companion check: extraction order equals counter order.
    let fs = FeatureSet::full();
    let mut counters = EpochCounters::zeroed();
    for (i, id) in CounterId::ALL.into_iter().enumerate() {
        counters[id] = i as f64;
    }
    let v = fs.extract(&counters);
    assert_eq!(argmax(&v), 46);
    assert_eq!(v[0], 0.0);
}
