//! Property-based tests for the SSMDVFS dataset construction and model
//! plumbing.

use gpu_power::VfTable;
use gpu_sim::{CounterId, DvfsGovernor, EpochCounters};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdvfs::{
    select_features_with, CombinedModel, DvfsDataset, FeatureSet, RawSample, RfeOptions,
    SsmdvfsConfig, SsmdvfsGovernor,
};
use tinynn::{argmax, Matrix, Mlp, Normalizer, TrainConfig};

/// Builds one context (six samples sharing a breakpoint) with the given
/// per-op losses and instruction counts.
fn context(losses: &[f64; 6], instrs: &[u64; 6], breakpoint: usize) -> Vec<RawSample> {
    (0..6)
        .map(|op| {
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = 1.0;
            c[CounterId::PowerTotalW] = 5.0;
            RawSample {
                benchmark: "p".into(),
                cluster: 0,
                breakpoint,
                counters: c.clone(),
                scaled_counters: c,
                op_index: op,
                perf_loss: losses[op],
                instructions: instrs[op],
            }
        })
        .collect()
}

/// A small untrained governor built purely through the public API, for
/// exercising the calibration loop with arbitrary inputs.
fn tiny_governor(preset: f64) -> SsmdvfsGovernor {
    fn unit_normalizer(n: usize) -> Normalizer {
        let lo = vec![-2.0f32; n];
        let hi = vec![2.0f32; n];
        Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]))
    }
    let fs = FeatureSet::refined();
    let mut rng = StdRng::seed_from_u64(11);
    let model = CombinedModel {
        decision: Mlp::new(&[fs.len() + 1, 8, 6], &mut rng),
        calibrator: Mlp::new(&[fs.len() + 2, 8, 1], &mut rng),
        feature_set: fs.clone(),
        decision_norm: unit_normalizer(fs.len() + 1),
        calibrator_norm: unit_normalizer(fs.len() + 2),
        instr_scale: 1_000.0,
        num_ops: 6,
    };
    SsmdvfsGovernor::new(model, SsmdvfsConfig::new(preset))
}

/// One epoch's counters: `instrs` retired over `cycles` cycles, of which a
/// `stall` fraction was spent with an empty pipeline.
fn epoch_counters(instrs: f64, cycles: f64, stall: f64) -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalInstrs] = instrs;
    c[CounterId::TotalCycles] = cycles;
    c[CounterId::StallEmpty] = stall * cycles;
    c.recompute_derived();
    c
}

fn arb_losses() -> impl Strategy<Value = [f64; 6]> {
    // Monotone non-increasing losses in op order (faster point, less loss),
    // as physics dictates.
    prop::collection::vec(0.0f64..0.8, 6).prop_map(|mut v| {
        v.sort_by(|a, b| b.total_cmp(a));
        let mut out = [0.0; 6];
        out.copy_from_slice(&v);
        out[5] = 0.0; // the default point loses nothing against itself
        out
    })
}

proptest! {
    /// Decision labels are monotone: a larger preset never forces a higher
    /// (faster) operating point.
    #[test]
    fn decision_labels_monotone_in_preset(losses in arb_losses()) {
        let dataset = DvfsDataset { samples: context(&losses, &[10_000; 6], 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.decision_data(&fs, 6);
        // Rows within one feature variant share features; sort by the preset
        // column and check the label ordering.
        let mut rows: Vec<(f32, usize)> = (0..data.len())
            .map(|i| (data.x.row(i)[fs.len()], data.y[i]))
            .collect();
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in rows.windows(2) {
            // Same context: higher preset => label (min satisfying op) does
            // not increase.
            prop_assert!(
                pair[1].1 <= pair[0].1,
                "label must be non-increasing in preset: {:?}",
                rows
            );
        }
    }

    /// Every decision label actually satisfies its preset under the measured
    /// losses (or is the fastest point when nothing satisfies it).
    #[test]
    fn decision_labels_satisfy_the_preset(losses in arb_losses()) {
        let dataset = DvfsDataset { samples: context(&losses, &[10_000; 6], 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.decision_data(&fs, 6);
        for i in 0..data.len() {
            let preset = f64::from(data.x.row(i)[fs.len()]);
            let label = data.y[i];
            prop_assert!(
                losses[label] <= preset + 1e-9 || label == 5,
                "label {label} (loss {}) violates preset {preset}",
                losses[label]
            );
            // And it is minimal: no slower point satisfies the preset.
            for &loss_below in &losses[..label] {
                prop_assert!(loss_below > preset - 1e-9);
            }
        }
    }

    /// Calibrator targets always correspond to the instruction count of the
    /// point the decision criterion picks.
    #[test]
    fn calibrator_targets_track_the_decision(losses in arb_losses(), scale in 1u64..4) {
        let instrs: [u64; 6] = std::array::from_fn(|i| 5_000 + 1_000 * i as u64 * scale);
        let dataset = DvfsDataset { samples: context(&losses, &instrs, 0), ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let data = dataset.calibrator_data(&fs, 6, 1_000.0);
        let valid: std::collections::HashSet<u64> =
            instrs.iter().copied().collect();
        for &y in &data.y {
            let raw = (y * 1_000.0).round() as u64;
            prop_assert!(valid.contains(&raw), "target {raw} is not a measured count");
        }
    }

    /// Dataset conversions never panic and keep shapes consistent for any
    /// number of contexts.
    #[test]
    fn conversions_shape_consistent(n_contexts in 1usize..5) {
        let mut samples = Vec::new();
        for b in 0..n_contexts {
            samples.extend(context(&[0.5, 0.4, 0.3, 0.2, 0.1, 0.0], &[8_000; 6], b));
        }
        let dataset = DvfsDataset { samples, ..DvfsDataset::default() };
        let fs = FeatureSet::refined();
        let dec = dataset.decision_data(&fs, 6);
        prop_assert_eq!(dec.x.cols(), fs.len() + 1);
        prop_assert_eq!(dec.x.rows(), dec.y.len());
        let cal = dataset.calibrator_data(&fs, 6, 1_000.0);
        prop_assert_eq!(cal.x.cols(), fs.len() + 2);
        prop_assert_eq!(cal.x.rows(), cal.y.len());
    }

    /// The calibration loop may tighten or relax the effective preset, but
    /// it must never leave `[min_preset, preset]` — no counter or prediction
    /// sequence may drive the controller out of its contract band.
    #[test]
    fn effective_preset_stays_within_its_band(
        preset in 0.01f64..0.5,
        epochs in prop::collection::vec(
            (0.0f64..2e6, 1.0f64..50_000.0, 0.0f64..1.0),
            1..40,
        ),
    ) {
        let table = VfTable::titan_x();
        let mut gov = tiny_governor(preset);
        let min_preset = gov.config().min_preset;
        for (instrs, cycles, stall) in epochs {
            gov.decide(0, &epoch_counters(instrs, cycles, stall), &table);
            let ep = gov.effective_preset(0);
            prop_assert!(
                (min_preset - 1e-12..=preset + 1e-12).contains(&ep),
                "effective preset {ep} left [{min_preset}, {preset}]"
            );
        }
    }

    /// A starved epoch (empty-pipeline stalls above the 20 % exclusion
    /// threshold) is evidence of missing work, not a slow clock — it must
    /// never tighten the effective preset, however large the instruction
    /// shortfall it reports.
    #[test]
    fn starved_epochs_never_tighten_the_preset(
        warmup in prop::collection::vec(
            (0.0f64..2e6, 1.0f64..50_000.0, 0.0f64..0.15),
            1..10,
        ),
        stall in 0.2001f64..1.0,
        instrs in 0.0f64..100.0,
    ) {
        let table = VfTable::titan_x();
        let mut gov = tiny_governor(0.1);
        for (i, c, s) in warmup {
            gov.decide(0, &epoch_counters(i, c, s), &table);
        }
        let before = gov.effective_preset(0);
        // A starved epoch reporting almost no instructions: calibration
        // would read this as a massive shortfall if it were not excluded.
        gov.decide(0, &epoch_counters(instrs, 10_000.0, stall), &table);
        prop_assert!(
            gov.effective_preset(0) >= before,
            "starved epoch tightened the preset: {} -> {}",
            before,
            gov.effective_preset(0)
        );
    }
}

proptest! {
    // RFE retrains a full-depth decision head every elimination round, so
    // keep the case count low and the configuration tiny; the property is
    // about seeds, not accuracy.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The RFE feature selection is a pure function of the dataset and
    /// seed: fanning the per-column importance tasks over 8 workers yields
    /// exactly the serial result, for any training seed.
    #[test]
    fn rfe_selection_is_identical_at_any_worker_count(seed in any::<u64>()) {
        let mut samples = Vec::new();
        for b in 0..8 {
            let wobble = 0.05 * (b as f64);
            samples.extend(context(
                &[0.6 + wobble, 0.5, 0.4, 0.3, 0.2, 0.0],
                &[8_000 + 500 * b as u64; 6],
                b,
            ));
        }
        let dataset = DvfsDataset { samples, ..DvfsDataset::default() };
        let cfg = TrainConfig { epochs: 1, seed, ..TrainConfig::default() };
        let serial = select_features_with(
            &dataset,
            6,
            38,
            &cfg,
            &RfeOptions { jobs: 1, importance_repeats: 1 },
        );
        let parallel = select_features_with(
            &dataset,
            6,
            38,
            &cfg,
            &RfeOptions { jobs: 8, importance_repeats: 1 },
        );
        prop_assert_eq!(parallel, serial);
    }
}

#[test]
fn feature_sets_and_argmax_are_consistent() {
    // Deterministic companion check: extraction order equals counter order.
    let fs = FeatureSet::full();
    let mut counters = EpochCounters::zeroed();
    for (i, id) in CounterId::ALL.into_iter().enumerate() {
        counters[id] = i as f64;
    }
    let v = fs.extract(&counters);
    assert_eq!(argmax(&v), 46);
    assert_eq!(v[0], 0.0);
}
