//! Cross-run replay-cache guarantees: a cache-warmed sweep must be
//! byte-identical to a cold (and to an uncached) sweep at any worker
//! count, and a cache persisted to disk must serve a fresh process the
//! same bytes.

use std::sync::Arc;

use gpu_sim::{GpuConfig, Time};
use ssmdvfs::{fingerprint, generate_suite_with, DataGenConfig, ReplayCache, SuiteOptions};

fn test_setup() -> (GpuConfig, DataGenConfig, Vec<gpu_workloads::Benchmark>) {
    let cfg = GpuConfig::small_test();
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(300.0),
        ..DataGenConfig::default()
    };
    let benches = ["lbm", "sgemm"]
        .iter()
        .map(|n| gpu_workloads::by_name(n).expect("suite benchmark").scaled(0.05))
        .collect();
    (cfg, dg, benches)
}

fn sweep(
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    benches: &[gpu_workloads::Benchmark],
    jobs: usize,
    cache: Option<Arc<ReplayCache>>,
) -> String {
    let mut options = SuiteOptions::new(jobs);
    options.cache = cache;
    let outcome = generate_suite_with(benches, cfg, dg, &options).expect("sweep runs");
    serde_json::to_string(&outcome.datasets).expect("datasets serialize")
}

#[test]
fn replay_cache_hits_are_byte_identical() {
    let (cfg, dg, benches) = test_setup();
    let reference = sweep(&cfg, &dg, &benches, 2, None);

    let cache = Arc::new(ReplayCache::in_memory());
    let cold = sweep(&cfg, &dg, &benches, 2, Some(cache.clone()));
    assert_eq!(cold, reference, "an empty cache must not change the output");
    assert!(cache.misses() > 0, "the cold sweep must populate the cache");
    assert_eq!(cache.hits(), 0, "nothing to hit on the first sweep");

    // Warm reruns at several worker counts: all hits, same bytes.
    let misses_after_cold = cache.misses();
    for jobs in [1, 2, 5] {
        let warm = sweep(&cfg, &dg, &benches, jobs, Some(cache.clone()));
        assert_eq!(warm, reference, "cache hits changed the dataset at jobs={jobs}");
    }
    assert!(cache.hits() > 0, "warm sweeps must be served from the cache");
    assert_eq!(cache.misses(), misses_after_cold, "warm sweeps must not re-simulate");
}

#[test]
fn persisted_cache_serves_identical_bytes() {
    let (cfg, dg, benches) = test_setup();
    let dir = std::env::temp_dir()
        .join(format!("ssmdvfs-replay-cache-integration-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");

    let cold_cache = Arc::new(ReplayCache::open(&path).unwrap());
    let cold = sweep(&cfg, &dg, &benches, 2, Some(cold_cache.clone()));
    cold_cache.save().unwrap();

    // A fresh handle on the saved file (a new process, in effect) serves
    // every replay from disk.
    let warm_cache = Arc::new(ReplayCache::open(&path).unwrap());
    assert_eq!(warm_cache.len(), cold_cache.len(), "the cache must roundtrip through disk");
    let warm = sweep(&cfg, &dg, &benches, 3, Some(warm_cache.clone()));
    assert_eq!(warm, cold, "a reloaded cache must reproduce the same bytes");
    assert_eq!(warm_cache.misses(), 0, "every replay must be cached");
    assert!(warm_cache.hits() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fingerprints_discriminate_sweep_inputs() {
    // A false cache hit would silently corrupt a dataset, so the key must
    // change whenever any replay input changes.
    let (cfg, dg, benches) = test_setup();
    let w = benches[0].workload();
    assert_ne!(fingerprint(w), fingerprint(benches[1].workload()), "different benchmarks");
    let rescaled = benches[0].scaled(0.5);
    assert_ne!(fingerprint(w), fingerprint(rescaled.workload()), "different scales");
    let mut other_cfg = cfg.clone();
    other_cfg.sms_per_cluster += 1;
    assert_ne!(fingerprint(&cfg), fingerprint(&other_cfg), "different GPU configs");
    let other_dg = DataGenConfig { breakpoint_interval_epochs: 6, ..dg.clone() };
    assert_ne!(fingerprint(&dg), fingerprint(&other_dg), "different datagen params");
}
