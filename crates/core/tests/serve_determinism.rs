//! Determinism guarantees of the batched decision-serving path.
//!
//! Two invariants keep the serving engine honest:
//!
//! 1. **Jobs invariance** — a fleet's decision streams are byte-identical
//!    no matter how many worker threads drive the GPUs, because batching
//!    only regroups bit-identical forwards and calibration state is keyed
//!    per `(gpu, cluster)`.
//! 2. **Serve ≡ govern** — routing a GPU's decisions through the service
//!    produces exactly the stream a private, sequential
//!    [`SsmdvfsGovernor`] would, including the self-calibration feedback.

use std::sync::Arc;

use gpu_power::VfTable;
use gpu_sim::{run_fleet, DvfsGovernor, EpochCounters, GpuConfig, Simulation, Time, Workload};
use ssmdvfs::serve::{DecisionService, ServeConfig};
use ssmdvfs::{CombinedModel, SsmdvfsConfig, SsmdvfsGovernor};

fn fleet_workloads(n: usize) -> Vec<Arc<Workload>> {
    let names = ["sgemm", "stencil", "atax"];
    (0..n)
        .map(|i| {
            let bench = gpu_workloads::by_name(names[i % names.len()]).expect("known benchmark");
            Arc::new(bench.scaled(0.02 + 0.005 * i as f64).into_workload())
        })
        .collect()
}

fn model_for(table_len: usize) -> Arc<CombinedModel> {
    Arc::new(CombinedModel::synthetic(table_len, 42))
}

/// Satellite 4: fixed seeds, one shard — the fleet's decision streams must
/// not depend on the `--jobs` worker count.
#[test]
fn fleet_decisions_are_identical_across_jobs() {
    let config = Arc::new(GpuConfig::small_test());
    let workloads = fleet_workloads(4);
    let horizon = Time::from_micros(400.0);
    let model = model_for(config.vf_table.len());

    let run = |jobs: usize| -> Vec<Vec<usize>> {
        let service = DecisionService::start(
            Arc::clone(&model),
            SsmdvfsConfig::new(0.1),
            config.vf_table.clone(),
            ServeConfig { shards: 1, max_batch: 8, ..ServeConfig::default() },
        );
        let client = service.client();
        let results = run_fleet(&config, &workloads, horizon, jobs, &client);
        let stats = service.shutdown();
        assert_eq!(stats.deadline_misses, 0, "no deadline configured");
        results.into_iter().map(|r| r.decisions).collect()
    };

    let sequential = run(1);
    let parallel = run(4);
    assert!(sequential.iter().any(|d| !d.is_empty()), "fleet must produce decisions");
    assert_eq!(sequential, parallel, "decision streams must not depend on --jobs");
}

/// A wrapper that records every operating point a real governor picks.
struct Recording<'a> {
    inner: &'a mut SsmdvfsGovernor,
    decisions: Vec<usize>,
}

impl DvfsGovernor for Recording<'_> {
    fn name(&self) -> &str {
        "recording"
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        let op = self.inner.decide(cluster, counters, table);
        self.decisions.push(op);
        op
    }
}

/// The tentpole's correctness bar: a GPU served through the batching
/// service is byte-identical to the same GPU driven by its own sequential
/// `SsmdvfsGovernor`.
#[test]
fn served_decisions_match_direct_governor() {
    let config = Arc::new(GpuConfig::small_test());
    let workloads = fleet_workloads(1);
    let horizon = Time::from_micros(400.0);
    let model = model_for(config.vf_table.len());
    let ctrl = SsmdvfsConfig::new(0.1);

    let mut governor = SsmdvfsGovernor::new(Arc::clone(&model), ctrl.clone());
    let mut recorder = Recording { inner: &mut governor, decisions: Vec::new() };
    let mut sim = Simulation::new(Arc::clone(&config), Arc::clone(&workloads[0]));
    let direct = sim.run(&mut recorder, horizon);
    let direct_decisions = recorder.decisions;

    let service = DecisionService::start(
        Arc::clone(&model),
        ctrl,
        config.vf_table.clone(),
        ServeConfig { shards: 1, max_batch: 32, ..ServeConfig::default() },
    );
    let client = service.client();
    let served = run_fleet(&config, &workloads, horizon, 1, &client);
    service.shutdown();

    assert!(!direct_decisions.is_empty(), "the governor must have decided something");
    assert_eq!(served[0].decisions, direct_decisions, "serving must equal direct governing");
    assert_eq!(served[0].result.instructions, direct.instructions);
    assert_eq!(served[0].result.epochs, direct.epochs);
}
