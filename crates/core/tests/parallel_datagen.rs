//! Determinism guarantees of the parallel data-generation engine: fanning
//! the per-operating-point replays out over a work-stealing pool must not
//! change a single byte of the resulting dataset.

use gpu_sim::{BasicBlock, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Time, Workload};
use proptest::prelude::*;
use ssmdvfs::{generate_suite, generate_with_jobs, generate_workload_jobs, DataGenConfig};

/// A small workload whose shape (size, mix, memory behaviour) is drawn
/// from the strategy inputs.
fn workload(iterations: u32, ctas: usize, mem_heavy: bool) -> Workload {
    let classes = if mem_heavy {
        vec![InstrClass::LoadGlobal, InstrClass::IntAlu]
    } else {
        vec![InstrClass::IntAlu, InstrClass::FpAlu, InstrClass::IntAlu]
    };
    let footprint = if mem_heavy { 32 << 20 } else { 1 << 17 };
    let kernel = KernelSpec::new(
        "k",
        vec![BasicBlock::new(classes, iterations, 0.0)],
        2,
        ctas,
        MemoryBehavior::streaming(footprint),
    );
    Workload::new("prop", vec![kernel])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole guarantee: `generate_workload` is byte-identical for
    /// any worker count. Replays are deterministic given the breakpoint
    /// snapshot, and assembly is order-preserving, so nothing may differ.
    #[test]
    fn parallel_datagen_is_deterministic(
        iterations in 500u32..2_500,
        ctas in 4usize..12,
        interval in 3usize..7,
        jobs in 2usize..9,
        mem_heavy in any::<bool>(),
    ) {
        let cfg = GpuConfig::small_test();
        let dg = DataGenConfig {
            breakpoint_interval_epochs: interval,
            max_time: Time::from_micros(400.0),
            ..DataGenConfig::default()
        };
        let w = workload(iterations, ctas, mem_heavy);
        let sequential = generate_workload_jobs("prop", w.clone(), &cfg, &dg, 1);
        let parallel = generate_workload_jobs("prop", w, &cfg, &dg, jobs);
        prop_assert!(!sequential.is_empty(), "the workload must produce samples");
        prop_assert_eq!(&sequential, &parallel, "jobs=1 and jobs={} diverged", jobs);
    }
}

#[test]
fn suite_fanout_matches_per_benchmark_generation() {
    // generate_suite pools every benchmark's replays into one global job
    // list; each benchmark's slice of the output must still equal an
    // isolated sequential run of that benchmark.
    let cfg = GpuConfig::small_test();
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(300.0),
        ..DataGenConfig::default()
    };
    let benches: Vec<_> = ["lbm", "sgemm", "spmv"]
        .iter()
        .map(|n| gpu_workloads::by_name(n).expect("suite benchmark").scaled(0.05))
        .collect();
    let pooled = generate_suite(&benches, &cfg, &dg, 4);
    assert_eq!(pooled.len(), benches.len());
    for (bench, pooled_part) in benches.iter().zip(&pooled) {
        let isolated = generate_with_jobs(bench, &cfg, &dg, 1);
        assert_eq!(&isolated, pooled_part, "suite fan-out changed the dataset of {}", bench.name());
    }
    assert!(pooled.iter().any(|d| !d.is_empty()), "the suite must produce samples");
}
