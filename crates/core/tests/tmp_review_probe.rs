//! Temporary review probe: does pipelining several requests for the SAME
//! (gpu, cluster) into one batch preserve byte-identical decisions vs a
//! sequential governor?

use std::sync::Arc;

use gpu_sim::{CounterId, DvfsGovernor, EpochCounters, GpuConfig};
use ssmdvfs::serve::{DecisionService, PendingDecision, ServeConfig};
use ssmdvfs::{CombinedModel, DecisionRequest, SsmdvfsConfig, SsmdvfsGovernor};

fn counters_for(i: u64) -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalInstrs] = 500.0 + 37.0 * i as f64;
    c[CounterId::TotalCycles] = 1_000.0;
    c[CounterId::IntAluInstrs] = 200.0 + 11.0 * i as f64;
    c[CounterId::LoadGlobalInstrs] = 60.0 + 3.0 * (i % 7) as f64;
    c[CounterId::StallMemLoad] = 120.0 + 17.0 * (i % 5) as f64;
    c[CounterId::L1ReadAccess] = 90.0;
    c[CounterId::L1ReadMiss] = 20.0 + (i % 9) as f64;
    c.recompute_derived();
    c
}

#[test]
fn pipelined_same_key_requests_match_sequential_governor() {
    let table = GpuConfig::small_test().vf_table;
    let model = Arc::new(CombinedModel::synthetic(table.len(), 9));
    let ctrl = SsmdvfsConfig::new(0.1);

    // Sequential reference: one governor, same counters in order.
    let mut gov = SsmdvfsGovernor::new(Arc::clone(&model), ctrl.clone());
    let reference: Vec<usize> = (0..256).map(|i| gov.decide(0, &counters_for(i), &table)).collect();

    // Served: pipeline all requests for (gpu 0, cluster 0) before waiting,
    // so the batcher drains multi-request batches with duplicate keys.
    let service = DecisionService::start(
        Arc::clone(&model),
        ctrl,
        table.clone(),
        ServeConfig { shards: 1, max_batch: 32, queue_depth: 1024, deadline: None },
    );
    let client = service.client();
    let pending: Vec<PendingDecision> = (0..256)
        .map(|i| client.submit(DecisionRequest { gpu: 0, cluster: 0, counters: counters_for(i) }))
        .collect();
    let served: Vec<usize> = pending.into_iter().map(|p| p.wait().op_index).collect();
    let stats = service.shutdown();
    eprintln!("mean batch = {:.2}, batches = {}", stats.mean_batch(), stats.batches);
    assert!(stats.mean_batch() > 1.5, "probe did not exercise batching; rerun");
    assert_eq!(served, reference, "pipelined same-key stream diverged from governor");
}
