//! Observability must be a pure observer: running data generation with
//! tracing and metrics enabled may not change a single byte of the
//! produced dataset.

use gpu_sim::{BasicBlock, GpuConfig, InstrClass, KernelSpec, MemoryBehavior, Time, Workload};
use proptest::prelude::*;
use ssmdvfs::{generate_workload_jobs, DataGenConfig};

fn workload(iterations: u32, ctas: usize, mem_heavy: bool) -> Workload {
    let classes = if mem_heavy {
        vec![InstrClass::LoadGlobal, InstrClass::IntAlu]
    } else {
        vec![InstrClass::IntAlu, InstrClass::FpAlu]
    };
    let footprint = if mem_heavy { 32 << 20 } else { 1 << 17 };
    let kernel = KernelSpec::new(
        "k",
        vec![BasicBlock::new(classes, iterations, 0.0)],
        2,
        ctas,
        MemoryBehavior::streaming(footprint),
    );
    Workload::new("obs-prop", vec![kernel])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn tracing_never_changes_datagen_output(
        iterations in 500u32..1_500,
        ctas in 4usize..10,
        jobs in 1usize..5,
        mem_heavy in any::<bool>(),
    ) {
        let cfg = GpuConfig::small_test();
        let dg = DataGenConfig {
            breakpoint_interval_epochs: 5,
            max_time: Time::from_micros(300.0),
            ..DataGenConfig::default()
        };
        let w = workload(iterations, ctas, mem_heavy);

        obs::set_enabled(false);
        let silent = generate_workload_jobs("obs-prop", w.clone(), &cfg, &dg, jobs);
        obs::set_enabled(true);
        let traced = generate_workload_jobs("obs-prop", w.clone(), &cfg, &dg, jobs);
        obs::set_enabled(false);

        // The full telemetry plane — metrics + tracing, the phase
        // profiler, and a live exporter being scraped mid-run — must be
        // just as invisible to the dataset as tracing alone.
        let server = obs::export::MetricsServer::start("127.0.0.1:0").expect("exporter binds");
        obs::set_enabled(true);
        obs::prof::set_profiling(true);
        let observed = generate_workload_jobs("obs-prop", w, &cfg, &dg, jobs);
        let (status, _) = obs::export::http_get(&server.local_addr().to_string(), "/metrics")
            .expect("exporter reachable");
        obs::prof::set_profiling(false);
        obs::set_enabled(false);
        server.shutdown();
        prop_assert_eq!(status, 200, "live scrape must succeed during datagen");

        prop_assert!(!silent.is_empty(), "the workload must produce samples");
        let silent_bytes = serde_json::to_string(&silent).expect("dataset serializes");
        let traced_bytes = serde_json::to_string(&traced).expect("dataset serializes");
        let observed_bytes = serde_json::to_string(&observed).expect("dataset serializes");
        prop_assert_eq!(&silent_bytes, &traced_bytes, "tracing changed the dataset bytes");
        prop_assert_eq!(
            &silent_bytes,
            &observed_bytes,
            "exporter/profiler changed the dataset bytes"
        );
    }
}
