//! Fault-injection drills: deterministic fail points fired inside the
//! datagen worker pool, with and without quarantine mode.
//!
//! These tests live in their own integration binary because fail points are
//! process-global: sharing a binary with unrelated parallel tests would let
//! an armed fail point leak into them.

use gpu_sim::{GpuConfig, Time};
use gpu_workloads::Benchmark;
use ssmdvfs::exec::FaultPolicy;
use ssmdvfs::{failpoint, generate_suite_with, DataGenConfig, SuiteOptions};

fn small_suite() -> (Vec<Benchmark>, GpuConfig, DataGenConfig) {
    let cfg = GpuConfig::small_test();
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(300.0),
        ..DataGenConfig::default()
    };
    let benches: Vec<Benchmark> = ["lbm", "sgemm"]
        .iter()
        .map(|n| gpu_workloads::by_name(n).expect("suite benchmark").scaled(0.05))
        .collect();
    (benches, cfg, dg)
}

// One #[test] driving every scenario sequentially: fail points are
// process-global, so scenarios must not run concurrently.
#[test]
fn fault_injection_scenarios() {
    let (benches, cfg, dg) = small_suite();
    let clean = generate_suite_with(&benches, &cfg, &dg, &SuiteOptions::new(2))
        .expect("clean sweep")
        .datasets;

    // Scenario 1: a transient fault (one panic, budget of two retries) is
    // retried to success — the sweep completes with the exact clean output
    // and the report shows the retry.
    failpoint::arm("datagen.replay", 3, 1);
    let mut options = SuiteOptions::new(2);
    options.fault_policy = Some(FaultPolicy { max_retries: 2 });
    let outcome = generate_suite_with(&benches, &cfg, &dg, &options).expect("sweep survives");
    failpoint::disarm_all();
    assert_eq!(outcome.faults.retries, 1, "one injected panic, one retry");
    assert!(outcome.faults.is_clean(), "retry succeeded: {}", outcome.faults);
    assert_eq!(outcome.datasets, clean, "a retried unit reproduces its samples exactly");

    // Scenario 2: a persistent fault (more panics than the budget) drops
    // the unit; the sweep still completes, the report names the casualty,
    // and exactly that unit's samples are missing.
    failpoint::arm("datagen.replay", 3, usize::MAX);
    let mut options = SuiteOptions::new(2);
    options.fault_policy = Some(FaultPolicy { max_retries: 1 });
    let outcome = generate_suite_with(&benches, &cfg, &dg, &options).expect("sweep survives");
    failpoint::disarm_all();
    assert_eq!(outcome.faults.dropped.len(), 1, "exactly one unit dropped: {}", outcome.faults);
    assert_eq!(outcome.faults.dropped[0].attempts, 2);
    assert!(outcome.faults.dropped[0].message.contains("failpoint datagen.replay#3"));
    let clean_total: usize = clean.iter().map(|d| d.len()).sum();
    let faulted_total: usize = outcome.datasets.iter().map(|d| d.len()).sum();
    assert!(
        faulted_total < clean_total,
        "the dropped unit's samples are missing ({faulted_total} < {clean_total})"
    );

    // Scenario 3: no fault policy — the injected panic propagates fail-fast
    // with its message intact, exactly like any other worker panic.
    failpoint::arm("datagen.replay", 0, 1);
    let result = std::panic::catch_unwind(|| {
        generate_suite_with(&benches, &cfg, &dg, &SuiteOptions::new(2))
    });
    failpoint::disarm_all();
    let payload = result.expect_err("without quarantine the panic must propagate");
    let msg = payload.downcast_ref::<String>().expect("panic message survives the pool");
    assert!(msg.contains("failpoint datagen.replay#0"), "got: {msg}");

    // Fail points must leave no residue for later runs.
    assert!(!failpoint::any_armed());
    let after = generate_suite_with(&benches, &cfg, &dg, &SuiteOptions::new(2))
        .expect("clean again")
        .datasets;
    assert_eq!(after, clean);
}
