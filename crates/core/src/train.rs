//! Offline training of the combined model.
//!
//! Training splits into two phases so sweep drivers never redo shared
//! work: [`PreparedSplits::prepare`] derives, normalizes and splits the
//! decision/calibrator datasets once, and [`train_prepared`] trains a model
//! of a given architecture against those borrowed splits — the layer-wise
//! and pruning sweeps in [`crate::compress`] call it in a loop without
//! re-deriving (or cloning) the dataset per retrain. [`train_combined`] is
//! the one-shot composition of the two, and [`train_combined_jobs`] runs
//! the SGD minibatch fan-out on a worker pool; results are byte-identical
//! at any worker count (see [`tinynn::train_classifier_parallel_with`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tinynn::{
    accuracy, mape, splitmix64, train_classifier_parallel_with, train_regressor_parallel_with,
    ClassificationData, Mlp, Normalizer, RegressionData, TrainConfig, TrainPool, TrainScratch,
};

use crate::datagen::DvfsDataset;
use crate::features::FeatureSet;
use crate::model::{CombinedModel, ModelArch};

/// Everything known about a completed training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainSummary {
    /// Validation accuracy of the Decision-maker, in [0, 1].
    pub decision_accuracy: f64,
    /// Validation MAPE of the Calibrator, in percent.
    pub calibrator_mape: f64,
    /// Dense FLOPs of the trained model.
    pub flops: u64,
    /// Number of training samples used.
    pub samples: usize,
}

/// Instruction-count scale shared by training and inference; per-cluster,
/// per-epoch instruction counts are O(10⁴), so dividing by 1000 keeps the
/// regression target O(10).
pub const INSTR_SCALE: f32 = 1_000.0;

/// The normalized, split decision and calibrator datasets of one training
/// problem, derived from a [`DvfsDataset`] exactly once. Sweep drivers that
/// retrain many architectures against the same data prepare once and pass
/// the splits by reference to [`train_prepared`] — no per-retrain dataset
/// derivation, normalization or cloning.
#[derive(Debug, Clone)]
pub struct PreparedSplits {
    features: FeatureSet,
    num_ops: usize,
    samples: usize,
    dec_norm: Normalizer,
    cal_norm: Normalizer,
    dec_train: ClassificationData,
    dec_val: ClassificationData,
    cal_train: RegressionData,
    cal_val: RegressionData,
}

impl PreparedSplits {
    /// Derives, normalizes and splits both heads' datasets (holding out
    /// `val_frac` of the samples), seeding the split shuffles from
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `num_ops < 2`.
    pub fn prepare(
        dataset: &DvfsDataset,
        features: &FeatureSet,
        num_ops: usize,
        config: &TrainConfig,
        val_frac: f64,
    ) -> PreparedSplits {
        assert!(num_ops >= 2, "need at least two operating points");
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let _prof = obs::prof::scope("train.prepare");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5A5A);
        let dec_data = dataset.decision_data(features, num_ops);
        let dec_norm = Normalizer::fit(&dec_data.x);
        let dec_data =
            ClassificationData::new(dec_norm.transform(&dec_data.x), dec_data.y, num_ops);
        let (dec_train, dec_val) = dec_data.split(val_frac, &mut rng);
        let cal_data = dataset.calibrator_data(features, num_ops, INSTR_SCALE);
        let cal_norm = Normalizer::fit(&cal_data.x);
        let cal_data = RegressionData::new(cal_norm.transform(&cal_data.x), cal_data.y);
        let (cal_train, cal_val) = cal_data.split(val_frac, &mut rng);
        PreparedSplits {
            features: features.clone(),
            num_ops,
            samples: dataset.len(),
            dec_norm,
            cal_norm,
            dec_train,
            dec_val,
            cal_train,
            cal_val,
        }
    }

    /// Number of samples in the source dataset.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

/// Trains a [`CombinedModel`] of the given architecture against prepared
/// splits. Weight init is seeded from `config.seed`, SGD shards fan out on
/// `pool`, and every retrain reuses `scratch` — the inner loop of the
/// layer-wise and pruning sweeps.
///
/// # Panics
///
/// Panics if the architecture and splits disagree on widths.
pub fn train_prepared(
    prep: &PreparedSplits,
    arch: &ModelArch,
    config: &TrainConfig,
    pool: &TrainPool,
    scratch: &mut TrainScratch,
) -> (CombinedModel, TrainSummary) {
    let _span = obs::span!("train", "train_combined:{} samples", prep.samples);
    let _prof = obs::prof::scope("train.combined");
    // Weight init draws from its own decorrelated stream (the split
    // shuffles already consumed the `seed ^ 0x5A5A` stream in `prepare`).
    let mut rng = StdRng::seed_from_u64(splitmix64(config.seed ^ 0x5A5A));

    // Decision head. The minimum-frequency labels are dominated by the
    // lowest point (memory-tolerant contexts qualify at almost every
    // preset), so the decision head always trains class-balanced.
    let config = &TrainConfig { class_balance: true, ..config.clone() };
    let mut dec_sizes = vec![prep.features.len() + 1];
    dec_sizes.extend(&arch.decision_hidden);
    dec_sizes.push(prep.num_ops);
    let mut decision = Mlp::new(&dec_sizes, &mut rng);
    let dec_report = train_classifier_parallel_with(
        &mut decision,
        &prep.dec_train,
        &prep.dec_val,
        config,
        None,
        scratch,
        pool,
    );

    // Calibrator head.
    let mut cal_sizes = vec![prep.features.len() + 2];
    cal_sizes.extend(&arch.calibrator_hidden);
    cal_sizes.push(1);
    let mut calibrator = Mlp::new(&cal_sizes, &mut rng);
    let cal_report = train_regressor_parallel_with(
        &mut calibrator,
        &prep.cal_train,
        &prep.cal_val,
        config,
        None,
        scratch,
        pool,
    );

    let model = CombinedModel {
        decision,
        calibrator,
        feature_set: prep.features.clone(),
        decision_norm: prep.dec_norm.clone(),
        calibrator_norm: prep.cal_norm.clone(),
        instr_scale: INSTR_SCALE,
        num_ops: prep.num_ops,
    };
    let summary = TrainSummary {
        decision_accuracy: dec_report.best_metric,
        calibrator_mape: cal_report.best_metric,
        flops: model.flops(),
        samples: prep.samples,
    };
    obs::gauge!("train.decision_accuracy").set(summary.decision_accuracy);
    obs::gauge!("train.calibrator_mape").set(summary.calibrator_mape);
    // Pipeline-level epoch counter (both heads), distinct from the
    // per-loop tinynn.train.epochs: this is the number a live scrape of a
    // training run rates as "train epochs/s".
    obs::counter!("train.epochs")
        .inc((dec_report.train_loss.len() + cal_report.train_loss.len()) as u64);
    (model, summary)
}

/// Trains a [`CombinedModel`] of the given architecture on a generated
/// dataset, holding out `val_frac` of the samples for early stopping and
/// for the reported metrics. Serial; see [`train_combined_jobs`].
///
/// # Panics
///
/// Panics if the dataset is empty or `num_ops < 2`.
pub fn train_combined(
    dataset: &DvfsDataset,
    features: &FeatureSet,
    arch: &ModelArch,
    num_ops: usize,
    config: &TrainConfig,
    val_frac: f64,
) -> (CombinedModel, TrainSummary) {
    train_combined_jobs(dataset, features, arch, num_ops, config, val_frac, 1)
}

/// [`train_combined`] with the SGD minibatch fan-out running on `jobs`
/// workers (`0` = one per core). The trained model is byte-identical at
/// any `jobs`.
///
/// # Panics
///
/// As [`train_combined`].
pub fn train_combined_jobs(
    dataset: &DvfsDataset,
    features: &FeatureSet,
    arch: &ModelArch,
    num_ops: usize,
    config: &TrainConfig,
    val_frac: f64,
    jobs: usize,
) -> (CombinedModel, TrainSummary) {
    let prep = PreparedSplits::prepare(dataset, features, num_ops, config, val_frac);
    let pool = TrainPool::new(jobs);
    // Both heads train through one scratch: the buffers are sized by the
    // first head and re-shaped (without reallocating what already fits)
    // for the second.
    let mut scratch = TrainScratch::new();
    train_prepared(&prep, arch, config, &pool, &mut scratch)
}

/// Re-evaluates an existing model on a dataset (e.g. after pruning),
/// returning `(decision accuracy, calibrator MAPE%)`.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn evaluate(model: &CombinedModel, dataset: &DvfsDataset) -> (f64, f64) {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let dec_data = dataset.decision_data(&model.feature_set, model.num_ops);
    let logits = model.decision_forward_raw(&dec_data.x);
    let acc = accuracy(&logits, &dec_data.y);
    let cal_data = dataset.calibrator_data(&model.feature_set, model.num_ops, model.instr_scale);
    let outputs = model.calibrator_forward_raw(&cal_data.x);
    let m = mape(&outputs, &cal_data.y);
    (acc, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::RawSample;
    use gpu_sim::{CounterId, EpochCounters};

    /// A synthetic dataset with a learnable rule: high memory-stall share
    /// tolerates low frequency (label 0..2), low stall share needs high
    /// frequency (label 3..5); instruction count tracks IPC and frequency.
    fn synthetic_dataset(n: usize) -> DvfsDataset {
        let mut samples = Vec::with_capacity(n);
        let mut state = 0x1234u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for i in 0..n {
            let stall_frac = next().min(1.0);
            let ipc = 2.0 * (1.0 - stall_frac) + 0.1;
            let op = if stall_frac > 0.66 {
                i % 3
            } else if stall_frac > 0.33 {
                2 + i % 2
            } else {
                4 + i % 2
            };
            let freq_ratio = 0.6 + 0.08 * op as f64;
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = ipc;
            c[CounterId::PowerTotalW] = 2.0 + 3.0 * ipc;
            c[CounterId::StallMemLoad] = stall_frac * 10_000.0;
            c[CounterId::StallMemOther] = stall_frac * 1_000.0;
            c[CounterId::L1ReadMiss] = stall_frac * 500.0;
            samples.push(RawSample {
                benchmark: "synthetic".into(),
                cluster: 0,
                breakpoint: i,
                counters: c.clone(),
                scaled_counters: c,
                op_index: op,
                perf_loss: (1.0 - stall_frac) * (1.0 - freq_ratio) * 0.5,
                instructions: (ipc * freq_ratio * 10_000.0) as u64,
            });
        }
        DvfsDataset { samples, ..DvfsDataset::default() }
    }

    #[test]
    fn training_learns_the_synthetic_rule() {
        let data = synthetic_dataset(600);
        let cfg = TrainConfig { epochs: 80, ..TrainConfig::default() };
        let (model, summary) = train_combined(
            &data,
            &FeatureSet::refined(),
            &ModelArch::paper_compressed(),
            6,
            &cfg,
            0.25,
        );
        assert!(
            summary.decision_accuracy > 0.5,
            "decision accuracy {:.3} too low for a learnable rule",
            summary.decision_accuracy
        );
        assert!(
            summary.calibrator_mape < 30.0,
            "calibrator MAPE {:.1}% too high",
            summary.calibrator_mape
        );
        assert_eq!(model.num_ops, 6);
        assert_eq!(summary.samples, 600);
    }

    #[test]
    fn paper_full_arch_flops_are_near_the_reported_6960() {
        let data = synthetic_dataset(200);
        let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
        let (model, _) =
            train_combined(&data, &FeatureSet::refined(), &ModelArch::paper_full(), 6, &cfg, 0.25);
        // 5 features + preset, five/four 20-wide hidden layers.
        let flops = model.flops();
        assert!(
            (5_000..9_000).contains(&flops),
            "full model FLOPs {flops} should be near the paper's 6960"
        );
    }

    #[test]
    fn evaluate_matches_training_metrics_scale() {
        let data = synthetic_dataset(400);
        let cfg = TrainConfig { epochs: 40, ..TrainConfig::default() };
        let (model, _) = train_combined(
            &data,
            &FeatureSet::refined(),
            &ModelArch::paper_compressed(),
            6,
            &cfg,
            0.25,
        );
        let (acc, m) = evaluate(&model, &data);
        assert!((0.0..=1.0).contains(&acc));
        assert!(m >= 0.0 && m.is_finite());
    }

    #[test]
    fn parallel_combined_training_is_byte_identical() {
        let data = synthetic_dataset(300);
        let cfg = TrainConfig { epochs: 6, ..TrainConfig::default() };
        let features = FeatureSet::refined();
        let arch = ModelArch::paper_compressed();
        let (serial, serial_summary) = train_combined(&data, &features, &arch, 6, &cfg, 0.25);
        for jobs in [2usize, 4] {
            let (parallel, summary) =
                train_combined_jobs(&data, &features, &arch, 6, &cfg, 0.25, jobs);
            assert_eq!(serial, parallel, "combined model diverged at {jobs} workers");
            assert_eq!(serial_summary, summary, "summary diverged at {jobs} workers");
        }
    }
}
