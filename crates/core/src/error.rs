//! The workspace-wide typed error hierarchy.
//!
//! Library crates in this workspace report failures as values instead of
//! panicking: [`gpu_power::PowerError`] covers power/EDP/VfTable invariants,
//! and this module's [`SsmdvfsError`] wraps it together with the pipeline's
//! own failure modes (artifact I/O, artifact parsing, checkpoint corruption,
//! faulted work units). The CLI formats the chain via `Display` and exits
//! nonzero, so a failed run names the stage and artifact that broke instead
//! of aborting mid-pipeline.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use gpu_power::PowerError;

/// The kind of on-disk artifact an I/O or parse failure concerns.
///
/// Carried inside [`SsmdvfsError::Io`]/[`SsmdvfsError::Parse`] so error
/// messages name the pipeline stage ("model", "dataset", "checkpoint", ...)
/// rather than just a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// A trained [`CombinedModel`](crate::CombinedModel) JSON file.
    Model,
    /// A [`DvfsDataset`](crate::DvfsDataset) JSON file.
    Dataset,
    /// A datagen checkpoint journal (JSONL).
    Checkpoint,
    /// A cross-run replay cache (JSON).
    ReplayCache,
    /// A benchmark report or other serialized output.
    Report,
}

impl Artifact {
    /// The lowercase noun used in error messages.
    pub fn noun(self) -> &'static str {
        match self {
            Artifact::Model => "model",
            Artifact::Dataset => "dataset",
            Artifact::Checkpoint => "checkpoint",
            Artifact::ReplayCache => "replay cache",
            Artifact::Report => "report",
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.noun())
    }
}

/// The top-level error of the SSMDVFS pipeline.
#[derive(Debug)]
pub enum SsmdvfsError {
    /// A power/EDP/VfTable invariant was violated.
    Power(PowerError),
    /// Reading or writing an artifact failed at the filesystem level.
    Io {
        /// What the file was supposed to be.
        artifact: Artifact,
        /// Whether the failure happened while reading or writing.
        op: IoOp,
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// An artifact file was readable but did not parse as its expected
    /// shape (malformed JSON, wrong schema, corrupt journal line).
    Parse {
        /// What the file was supposed to be.
        artifact: Artifact,
        /// The file involved.
        path: PathBuf,
        /// What the parser objected to.
        detail: String,
    },
    /// A pipeline stage ran but produced an unusable result (e.g. a work
    /// unit exhausted its quarantine retries).
    Stage {
        /// The pipeline stage, e.g. `"datagen"` or `"bench"`.
        stage: &'static str,
        /// What went wrong.
        detail: String,
    },
}

/// Whether an [`SsmdvfsError::Io`] happened while reading or writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// The file was being read.
    Read,
    /// The file was being written.
    Write,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        })
    }
}

impl SsmdvfsError {
    /// An I/O failure while reading `path` as `artifact`.
    pub fn read(artifact: Artifact, path: impl AsRef<Path>, source: io::Error) -> SsmdvfsError {
        SsmdvfsError::Io { artifact, op: IoOp::Read, path: path.as_ref().to_path_buf(), source }
    }

    /// An I/O failure while writing `path` as `artifact`.
    pub fn write(artifact: Artifact, path: impl AsRef<Path>, source: io::Error) -> SsmdvfsError {
        SsmdvfsError::Io { artifact, op: IoOp::Write, path: path.as_ref().to_path_buf(), source }
    }

    /// A parse failure for the `artifact` at `path`.
    pub fn parse(
        artifact: Artifact,
        path: impl AsRef<Path>,
        detail: impl fmt::Display,
    ) -> SsmdvfsError {
        SsmdvfsError::Parse {
            artifact,
            path: path.as_ref().to_path_buf(),
            detail: detail.to_string(),
        }
    }

    /// A stage-level failure.
    pub fn stage(stage: &'static str, detail: impl fmt::Display) -> SsmdvfsError {
        SsmdvfsError::Stage { stage, detail: detail.to_string() }
    }
}

impl fmt::Display for SsmdvfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsmdvfsError::Power(e) => write!(f, "{e}"),
            SsmdvfsError::Io { artifact, op, path, source } => {
                write!(f, "failed to {op} {artifact} '{}': {source}", path.display())
            }
            SsmdvfsError::Parse { artifact, path, detail } => {
                write!(f, "malformed {artifact} '{}': {detail}", path.display())
            }
            SsmdvfsError::Stage { stage, detail } => {
                write!(f, "{stage} stage failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SsmdvfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsmdvfsError::Power(e) => Some(e),
            SsmdvfsError::Io { source, .. } => Some(source),
            SsmdvfsError::Parse { .. } | SsmdvfsError::Stage { .. } => None,
        }
    }
}

impl From<PowerError> for SsmdvfsError {
    fn from(e: PowerError) -> SsmdvfsError {
        SsmdvfsError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_artifact_and_operation() {
        let e = SsmdvfsError::read(
            Artifact::Model,
            "/tmp/m.json",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("read model '/tmp/m.json'"), "got: {s}");
        assert!(s.contains("gone"));

        let e = SsmdvfsError::parse(Artifact::Checkpoint, "ck.jsonl", "bad line 3");
        assert_eq!(e.to_string(), "malformed checkpoint 'ck.jsonl': bad line 3");

        let e = SsmdvfsError::stage("datagen", "2 work units dropped");
        assert_eq!(e.to_string(), "datagen stage failed: 2 work units dropped");
    }

    #[test]
    fn power_errors_convert_losslessly() {
        let e: SsmdvfsError = PowerError::EmptyVfTable.into();
        assert_eq!(e.to_string(), PowerError::EmptyVfTable.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
