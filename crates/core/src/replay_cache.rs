//! A content-addressed, cross-run cache of datagen replay results.
//!
//! Every phase-2 datagen job — replaying one breakpoint interval at one
//! candidate operating point — is a pure function of the GPU configuration,
//! the datagen parameters, the workload, the breakpoint index and the
//! operating point. The [`ReplayCache`] exploits that: it keys each job's
//! [`RawSample`]s by a stable fingerprint of those five inputs, so a rerun
//! of the same sweep (an `ablation_suite` iteration, a `granularity_sweep`
//! repeat, a resumed experiment on a fresh machine) loads the samples
//! instead of simulating the replay again.
//!
//! The fingerprint is a 64-bit FNV-1a hash over the inputs' serialized
//! [`Value`](serde::Value) trees — *not* Rust's `DefaultHasher`, whose
//! per-process random seed would make keys useless across runs. Object keys
//! are already sorted (the vendored serde stores objects as `BTreeMap`s),
//! so the hash is deterministic for equal inputs on any machine.
//!
//! Hits and misses are surfaced through the obs counters
//! `sim.cache_hits` / `sim.cache_misses`, which the CLI's `inspect`
//! subcommand summarizes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize, Value};

use crate::datagen::RawSample;
use crate::error::{Artifact, SsmdvfsError};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Folds a serialized value tree into the hash. Every node contributes a
/// type tag byte so e.g. `0` and `"0"` and `[0]` hash differently; floats
/// contribute their exact bit pattern.
fn hash_value(hash: &mut u64, value: &Value) {
    match value {
        Value::Null => fnv1a(hash, b"n"),
        Value::Bool(b) => fnv1a(hash, if *b { b"t" } else { b"f" }),
        Value::Number(n) => {
            use serde::Number;
            match n {
                Number::U(v) => {
                    fnv1a(hash, b"u");
                    fnv1a(hash, &v.to_le_bytes());
                }
                Number::I(v) => {
                    fnv1a(hash, b"i");
                    fnv1a(hash, &v.to_le_bytes());
                }
                Number::F(v) => {
                    fnv1a(hash, b"d");
                    fnv1a(hash, &v.to_bits().to_le_bytes());
                }
            }
        }
        Value::String(s) => {
            fnv1a(hash, b"s");
            fnv1a(hash, &(s.len() as u64).to_le_bytes());
            fnv1a(hash, s.as_bytes());
        }
        Value::Array(items) => {
            fnv1a(hash, b"a");
            fnv1a(hash, &(items.len() as u64).to_le_bytes());
            for item in items {
                hash_value(hash, item);
            }
        }
        Value::Object(map) => {
            fnv1a(hash, b"o");
            fnv1a(hash, &(map.len() as u64).to_le_bytes());
            for (k, v) in map {
                fnv1a(hash, &(k.len() as u64).to_le_bytes());
                fnv1a(hash, k.as_bytes());
                hash_value(hash, v);
            }
        }
    }
}

/// A process- and machine-stable 64-bit fingerprint of any serializable
/// value. Equal serialized trees always produce equal fingerprints — unlike
/// `std::hash`, whose `DefaultHasher` is seeded per process.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
///
/// let a = ssmdvfs::fingerprint(&GpuConfig::small_test());
/// let b = ssmdvfs::fingerprint(&GpuConfig::small_test());
/// assert_eq!(a, b);
/// assert_ne!(a, ssmdvfs::fingerprint(&GpuConfig::titan_x()));
/// ```
pub fn fingerprint<T: Serialize>(value: &T) -> u64 {
    let mut hash = FNV_OFFSET;
    hash_value(&mut hash, &value.serialize());
    hash
}

/// The serialized form of the cache file.
#[derive(Debug, Default, Serialize, Deserialize)]
struct CacheFile {
    /// Format version, bumped if the key derivation or sample schema
    /// changes incompatibly.
    version: u32,
    /// Replay results keyed by [`ReplayCache::key`] strings. A `BTreeMap`
    /// keeps the on-disk order (and thus the file bytes) deterministic.
    entries: BTreeMap<String, Vec<RawSample>>,
}

const CACHE_VERSION: u32 = 1;

/// A thread-safe, content-addressed store of replay results that persists
/// across runs. See the [module docs](self) for the keying scheme.
#[derive(Debug, Default)]
pub struct ReplayCache {
    path: Option<PathBuf>,
    entries: Mutex<BTreeMap<String, Vec<RawSample>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReplayCache {
    /// An empty in-memory cache (no backing file; [`ReplayCache::save`] is
    /// a no-op).
    pub fn in_memory() -> ReplayCache {
        ReplayCache::default()
    }

    /// Opens the cache at `path`, loading any existing entries. A missing
    /// file (or one written by an incompatible cache version) yields an
    /// empty cache bound to that path.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the file exists but cannot be read,
    /// or [`SsmdvfsError::Parse`] if it is not valid cache JSON.
    pub fn open(path: impl AsRef<Path>) -> Result<ReplayCache, SsmdvfsError> {
        let path = path.as_ref().to_path_buf();
        let entries = if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| SsmdvfsError::read(Artifact::ReplayCache, &path, e))?;
            let file: CacheFile = serde_json::from_str(&text)
                .map_err(|e| SsmdvfsError::parse(Artifact::ReplayCache, &path, e))?;
            if file.version == CACHE_VERSION {
                file.entries
            } else {
                BTreeMap::new()
            }
        } else {
            BTreeMap::new()
        };
        Ok(ReplayCache {
            path: Some(path),
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Derives the key for one replay job. `config_hash`, `dg_hash` and
    /// `workload_hash` come from [`fingerprint`]; `breakpoint` and
    /// `op_index` identify the job within the sweep.
    pub fn key(
        config_hash: u64,
        dg_hash: u64,
        workload_hash: u64,
        breakpoint: usize,
        op_index: usize,
    ) -> String {
        format!("{config_hash:016x}-{dg_hash:016x}-{workload_hash:016x}-b{breakpoint}-op{op_index}")
    }

    /// Looks up a replay's samples, counting a hit or miss (both locally
    /// and on the obs counters `sim.cache_hits`/`sim.cache_misses`).
    pub fn get(&self, key: &str) -> Option<Vec<RawSample>> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match entries.get(key) {
            Some(samples) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter!("sim.cache_hits").inc(1);
                Some(samples.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter!("sim.cache_misses").inc(1);
                None
            }
        }
    }

    /// Stores a replay's samples under `key`.
    pub fn insert(&self, key: String, samples: Vec<RawSample>) {
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.insert(key, samples);
    }

    /// Number of cached replays.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits recorded since this cache was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses recorded since this cache was opened.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Writes the cache back to its backing file (no-op for an in-memory
    /// cache). The output is deterministic: entries are written in sorted
    /// key order, so two caches with equal contents produce equal bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the write fails.
    pub fn save(&self) -> Result<(), SsmdvfsError> {
        let Some(path) = &self.path else { return Ok(()) };
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let file = CacheFile { version: CACHE_VERSION, entries: entries.clone() };
        drop(entries);
        let text = serde_json::to_string_pretty(&file)
            .map_err(|e| SsmdvfsError::parse(Artifact::ReplayCache, path, e))?;
        std::fs::write(path, text).map_err(|e| SsmdvfsError::write(Artifact::ReplayCache, path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{EpochCounters, GpuConfig};

    fn sample(op: usize) -> RawSample {
        RawSample {
            benchmark: "b".to_string(),
            cluster: 0,
            breakpoint: 1,
            counters: EpochCounters::zeroed(),
            scaled_counters: EpochCounters::zeroed(),
            op_index: op,
            perf_loss: 0.25,
            instructions: 42,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let cfg = GpuConfig::small_test();
        assert_eq!(fingerprint(&cfg), fingerprint(&cfg.clone()));
        assert_ne!(fingerprint(&GpuConfig::small_test()), fingerprint(&GpuConfig::titan_x()));
        // Different shapes that could collide under naive hashing.
        assert_ne!(fingerprint(&0u64), fingerprint(&"0".to_string()));
        assert_ne!(fingerprint(&vec![1u64]), fingerprint(&vec![1u64, 1u64]));
        let mut seed_changed = GpuConfig::small_test();
        seed_changed.seed ^= 1;
        assert_ne!(fingerprint(&GpuConfig::small_test()), fingerprint(&seed_changed));
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = ReplayCache::in_memory();
        let key = ReplayCache::key(1, 2, 3, 4, 5);
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key.clone(), vec![sample(5)]);
        let got = cache.get(&key).expect("inserted");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].op_index, 5);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn roundtrips_through_disk_with_deterministic_bytes() {
        let dir =
            std::env::temp_dir().join(format!("ssmdvfs-replay-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let _ = std::fs::remove_file(&path);

        let cache = ReplayCache::open(&path).expect("missing file yields empty cache");
        assert!(cache.is_empty());
        cache.insert(ReplayCache::key(9, 8, 7, 0, 1), vec![sample(1), sample(2)]);
        cache.insert(ReplayCache::key(9, 8, 7, 1, 0), vec![sample(0)]);
        cache.save().expect("save");
        let bytes_a = std::fs::read(&path).unwrap();

        let reloaded = ReplayCache::open(&path).expect("reload");
        assert_eq!(reloaded.len(), 2);
        let got = reloaded.get(&ReplayCache::key(9, 8, 7, 0, 1)).expect("hit");
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].op_index, 2);
        reloaded.save().expect("resave");
        let bytes_b = std::fs::read(&path).unwrap();
        assert_eq!(bytes_a, bytes_b, "save must be byte-deterministic");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn incompatible_version_is_ignored() {
        let dir =
            std::env::temp_dir().join(format!("ssmdvfs-replay-cache-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, r#"{"version": 999, "entries": {}}"#).unwrap();
        let cache = ReplayCache::open(&path).expect("open");
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
