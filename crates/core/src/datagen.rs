//! The paper's data-generation methodology (Fig. 2).
//!
//! For each benchmark, the program runs at the default V/f point. Roughly
//! every 100 µs a *breakpoint* is established. The work each cluster
//! performs over the breakpoint interval defines a per-cluster milestone;
//! the time to reach it at the default point is `T_0`. The interval is then
//! replayed once per operating point: a 10 µs *feature-collection window* at
//! the default point, a 10 µs *frequency-scaling window* at the candidate
//! point, and the remainder back at the default point until the milestone is
//! reached, giving `T_f`. The measured performance loss `(T_f - T_0) / T_0`
//! becomes the training "preset" input, the candidate point becomes the
//! classification label, and the instruction count inside the scaling window
//! becomes the Calibrator's regression target.
//!
//! The paper stresses that the loss is measured over the whole ~100 µs
//! interval, not just the 20 µs of the two windows, because stalls induced
//! by a frequency change can manifest several epochs later — replaying to
//! the milestone captures exactly that.

use gpu_sim::{EpochCounters, EpochRecord, GpuConfig, SimSnapshot, Simulation, Time, Workload};
use gpu_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use tinynn::{ClassificationData, Matrix, RegressionData};

use crate::checkpoint::{CheckpointEntry, CheckpointJournal, CompletedJobs};
use crate::error::{Artifact, SsmdvfsError};
use crate::exec::{parallel_map_indexed, parallel_map_quarantine, FaultPolicy, FaultReport};
use crate::features::FeatureSet;
use crate::replay_cache::{fingerprint, ReplayCache};

/// Parameters of the data-generation process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGenConfig {
    /// Epochs between breakpoints (the paper's ~100 µs = 10 epochs).
    pub breakpoint_interval_epochs: usize,
    /// Extra replay budget past the interval, as a multiple of it, for
    /// slowed-down runs to still reach the milestone.
    pub replay_slack: f64,
    /// Hard simulation horizon per benchmark.
    pub max_time: Time,
}

impl Default for DataGenConfig {
    fn default() -> DataGenConfig {
        DataGenConfig {
            breakpoint_interval_epochs: 10,
            replay_slack: 1.0,
            max_time: Time::from_micros(2_000.0),
        }
    }
}

/// One training sample: the feature-window counters of one cluster, the
/// operating point forced during the scaling window, and the measured
/// outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Benchmark the sample came from.
    pub benchmark: String,
    /// Cluster the sample came from.
    pub cluster: usize,
    /// Breakpoint index within the benchmark.
    pub breakpoint: usize,
    /// Counters from the 10 µs feature-collection window (at default V/f).
    pub counters: EpochCounters,
    /// Counters from the 10 µs frequency-scaling window (measured at
    /// `op_index`). Runtime inference sees counters from whatever frequency
    /// the cluster last ran at, so training also uses these as feature
    /// variants to close the train/inference distribution gap.
    pub scaled_counters: EpochCounters,
    /// Operating point applied during the scaling window (the label).
    pub op_index: usize,
    /// Measured performance loss over the interval, e.g. 0.08 = 8 % slower.
    pub perf_loss: f64,
    /// Instructions the cluster retired during the scaling window (the
    /// Calibrator target).
    pub instructions: u64,
}

/// The preset grid shared by the Decision-maker labeling and the Calibrator
/// target construction (values are additionally jittered per context for the
/// classifier so the grid does not imprint itself).
pub const DECISION_PRESET_GRID: [f64; 12] =
    [0.01, 0.02, 0.035, 0.05, 0.075, 0.10, 0.125, 0.15, 0.18, 0.22, 0.26, 0.30];

/// How Decision-maker labels are derived from the measurements (ablation
/// switch; the deployed pipeline uses [`LabelingMode::MinFrequency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LabelingMode {
    /// The paper's stated classification criterion: label = minimum
    /// operating point whose measured loss satisfies the preset input.
    #[default]
    MinFrequency,
    /// The literal Fig. 2 reading: input = measured loss, label = the
    /// operating point that caused it.
    Raw,
}

/// A collection of raw samples with conversions to trainable datasets.
///
/// # Examples
///
/// See [`generate`] and the `train_pipeline` example binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsDataset {
    /// The samples.
    pub samples: Vec<RawSample>,
    /// Whether dataset conversions emit per-frequency feature variants in
    /// addition to the default-clock feature window (ablation switch;
    /// `true` in the deployed pipeline).
    #[serde(default = "default_true")]
    pub feature_variants: bool,
    /// Decision-label construction mode (ablation switch).
    #[serde(default)]
    pub labeling: LabelingMode,
}

fn default_true() -> bool {
    true
}

impl Default for DvfsDataset {
    fn default() -> DvfsDataset {
        DvfsDataset {
            samples: Vec::new(),
            feature_variants: true,
            labeling: LabelingMode::default(),
        }
    }
}

impl DvfsDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been generated.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merges another dataset's samples into this one.
    pub fn extend(&mut self, other: DvfsDataset) {
        self.samples.extend(other.samples);
    }

    /// Serializes the dataset as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] tagged with [`Artifact::Dataset`] on a
    /// write failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SsmdvfsError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| SsmdvfsError::parse(Artifact::Dataset, path, e))?;
        std::fs::write(path, json).map_err(|e| SsmdvfsError::write(Artifact::Dataset, path, e))
    }

    /// Loads a dataset serialized by [`DvfsDataset::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the file is unreadable and
    /// [`SsmdvfsError::Parse`] if it is not a valid dataset, both tagged
    /// with [`Artifact::Dataset`] so the CLI names the failing stage.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<DvfsDataset, SsmdvfsError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| SsmdvfsError::read(Artifact::Dataset, path, e))?;
        serde_json::from_str(&json).map_err(|e| SsmdvfsError::parse(Artifact::Dataset, path, e))
    }

    /// Builds the Decision-maker dataset implementing the paper's
    /// classification criterion — "select the minimum frequency that
    /// satisfies a given performance loss preset".
    ///
    /// Samples sharing a (benchmark, cluster, breakpoint) context carry the
    /// measured loss of every operating point for the same feature window.
    /// For each context, a grid of preset values is emitted as
    /// `x = [features..., preset]` with label `y = min{op : loss(op) <=
    /// preset}` — exactly the decision the runtime controller must make.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn decision_data(&self, features: &FeatureSet, num_ops: usize) -> ClassificationData {
        assert!(!self.is_empty(), "cannot build a dataset from zero samples");
        if self.labeling == LabelingMode::Raw {
            return self.decision_data_raw(features, num_ops);
        }
        let mut rows: Vec<(Vec<f32>, f32, usize)> = Vec::new();
        for (group_idx, group) in self.context_groups().into_iter().enumerate() {
            // Measured loss per operating point for this context.
            let mut loss = vec![f64::INFINITY; num_ops];
            for s in &group {
                loss[s.op_index] = s.perf_loss;
            }
            // Feature variants: the default-clock feature window, plus the
            // scaling window of every measured point. Program behaviour is
            // locally stationary (the paper's linear-forward-motion
            // assumption), so the same loss table applies to each variant;
            // the variants teach the model to recognize the same code
            // region through counters measured at any clock.
            let mut variants: Vec<Vec<f32>> = vec![features.extract(&group[0].counters)];
            if self.feature_variants {
                for s in &group {
                    variants.push(features.extract(&s.scaled_counters));
                }
            }
            // Deterministic jitter so the grid does not imprint itself.
            let jitter = 1.0 + 0.15 * (((group_idx * 2_654_435_761) % 1_000) as f64 / 500.0 - 1.0);
            for feats in &variants {
                for (k, &p0) in DECISION_PRESET_GRID.iter().enumerate() {
                    let preset = p0 * if k % 2 == 0 { jitter } else { 2.0 - jitter };
                    let label = (0..num_ops).find(|&op| loss[op] <= preset).unwrap_or(num_ops - 1);
                    rows.push((feats.clone(), preset as f32, label));
                }
            }
        }
        let cols = features.len() + 1;
        let mut x = Matrix::zeros(rows.len(), cols);
        let mut y = Vec::with_capacity(rows.len());
        for (i, (feats, preset, label)) in rows.into_iter().enumerate() {
            let row = x.row_mut(i);
            row[..features.len()].copy_from_slice(&feats);
            row[features.len()] = preset;
            y.push(label);
        }
        ClassificationData::new(x, y, num_ops)
    }

    /// Builds the Decision-maker dataset with the paper's *raw* labeling
    /// (`x = [features..., measured loss]`, `y = the frequency that caused
    /// it`) — the direct reading of Fig. 2's training logic, kept for
    /// comparison and ablation.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn decision_data_raw(&self, features: &FeatureSet, num_ops: usize) -> ClassificationData {
        assert!(!self.is_empty(), "cannot build a dataset from zero samples");
        let cols = features.len() + 1;
        let mut x = Matrix::zeros(self.len(), cols);
        let mut y = Vec::with_capacity(self.len());
        for (i, s) in self.samples.iter().enumerate() {
            let row = x.row_mut(i);
            row[..features.len()].copy_from_slice(&features.extract(&s.counters));
            row[features.len()] = s.perf_loss as f32;
            y.push(s.op_index);
        }
        ClassificationData::new(x, y, num_ops)
    }

    /// Groups samples by (benchmark, cluster, breakpoint) context. Each
    /// group holds one sample per operating point that was measured.
    fn context_groups(&self) -> Vec<Vec<&RawSample>> {
        use std::collections::HashMap;
        let mut map: HashMap<(&str, usize, usize), Vec<&RawSample>> = HashMap::new();
        for s in &self.samples {
            map.entry((s.benchmark.as_str(), s.cluster, s.breakpoint)).or_default().push(s);
        }
        let mut groups: Vec<Vec<&RawSample>> = map.into_values().collect();
        // Deterministic order independent of hash state.
        groups.sort_by(|a, b| {
            (a[0].benchmark.as_str(), a[0].cluster, a[0].breakpoint).cmp(&(
                b[0].benchmark.as_str(),
                b[0].cluster,
                b[0].breakpoint,
            ))
        });
        groups
    }

    /// Builds the Calibrator dataset: `x = [features..., loss_expectation,
    /// op_index / (num_ops-1)]`, `y = instructions / instr_scale`.
    ///
    /// Per Section III-C, at runtime the Calibrator "consistently uses the
    /// originally set performance loss preset, implying that under the
    /// initial performance loss expectation, it predicts the expected total
    /// instructions". The training rows therefore mirror the runtime query
    /// distribution exactly: for every preset value on the grid, the target
    /// is the instruction count measured at the operating point a correct
    /// decision picks for that preset (`min{op : loss(op) <= preset}`). A
    /// memory-bound context thus predicts its full-rate count at every
    /// preset (no point loses time), while a compute-bound context predicts
    /// the throughput consistent with the preset — which is what turns the
    /// prediction-vs-actual comparison into a preset-violation detector.
    /// The op input stays in the signature (Fig. 2's wiring) but is
    /// deliberately decorrelated with a displaced variant per row.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn calibrator_data(
        &self,
        features: &FeatureSet,
        num_ops: usize,
        instr_scale: f32,
    ) -> RegressionData {
        assert!(!self.is_empty(), "cannot build a dataset from zero samples");
        // Nearly idle scaling windows (a few hundred instructions against a
        // typical ~10⁴) carry no throughput signal but dominate a relative
        // error metric; the Calibrator is trained on windows with real work.
        const MIN_INSTRUCTIONS: u64 = 500;
        let op_norm = (num_ops.max(2) - 1) as f32;
        let mut rows: Vec<(Vec<f32>, f32, f32, f32)> = Vec::new();
        for group in self.context_groups() {
            let mut loss = vec![f64::INFINITY; num_ops];
            let mut instr: Vec<Option<u64>> = vec![None; num_ops];
            for s in &group {
                loss[s.op_index] = s.perf_loss;
                instr[s.op_index] = Some(s.instructions);
            }
            let mut variants: Vec<Vec<f32>> = vec![features.extract(&group[0].counters)];
            if self.feature_variants {
                for s in &group {
                    variants.push(features.extract(&s.scaled_counters));
                }
            }
            for feats in &variants {
                for &preset in &DECISION_PRESET_GRID {
                    let label = (0..num_ops).find(|&op| loss[op] <= preset).unwrap_or(num_ops - 1);
                    let Some(target) = instr[label] else { continue };
                    if target < MIN_INSTRUCTIONS {
                        continue;
                    }
                    // Two op inputs per row: the consistent one and a
                    // displaced one, so the network cannot shortcut through
                    // the op input and must read the loss expectation.
                    for delta in [0usize, num_ops / 2] {
                        let op = (label + delta) % num_ops;
                        rows.push((
                            feats.clone(),
                            preset as f32,
                            op as f32 / op_norm,
                            target as f32 / instr_scale,
                        ));
                    }
                }
            }
        }
        // Degenerate fallback (e.g. every window idle): keep the direct rows
        // so training still has data.
        if rows.is_empty() {
            for s in &self.samples {
                rows.push((
                    features.extract(&s.counters),
                    s.perf_loss as f32,
                    s.op_index as f32 / op_norm,
                    s.instructions as f32 / instr_scale,
                ));
            }
        }
        let cols = features.len() + 2;
        let mut x = Matrix::zeros(rows.len(), cols);
        let mut y = Vec::with_capacity(rows.len());
        for (i, (feats, loss, op, target)) in rows.into_iter().enumerate() {
            let row = x.row_mut(i);
            row[..features.len()].copy_from_slice(&feats);
            row[features.len()] = loss;
            row[features.len() + 1] = op;
            y.push(target);
        }
        RegressionData::new(x, y)
    }
}

/// Everything one operating-point replay needs, captured once per
/// breakpoint from the reference timeline. The six per-operating-point
/// replays sharing a spec are independent of each other and of every other
/// breakpoint, which is what the work-stealing fan-out exploits.
struct ReplaySpec {
    /// Breakpoint index within the benchmark.
    breakpoint: usize,
    /// Machine state at the breakpoint (O(machine), not O(history)).
    snapshot: SimSnapshot,
    /// Time of the breakpoint.
    t_start: Time,
    /// Per-cluster instruction milestones defined by the reference interval.
    milestones: Vec<u64>,
    /// Per-cluster reference times to the milestone (`T_0`).
    t0: Vec<Option<Time>>,
    /// The feature-collection window record from the reference timeline.
    feature_record: EpochRecord,
}

/// Phase 1: runs the reference timeline at the default point, snapshotting
/// at every breakpoint and measuring milestones/`T_0` from the continued
/// main simulation. Purely sequential — each breakpoint's reference data
/// depends on the previous interval.
fn collect_replay_specs(
    workload: Workload,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
) -> Vec<ReplaySpec> {
    let _span = obs::span!("datagen", "reference:{}", workload.name());
    let _prof = obs::prof::scope("datagen.reference");
    let default_ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let interval = dg.breakpoint_interval_epochs;
    let max_epochs = (dg.max_time.as_ps() / cfg.epoch.as_ps()) as usize;

    let mut sim = Simulation::new(cfg.clone(), workload);
    // The main timeline only ever looks back one breakpoint interval (for
    // `T_0` and the feature window), so its record history can be pruned.
    sim.set_history_limit(Some(interval + 2));
    let mut specs = Vec::new();
    let mut breakpoint = 0usize;

    while !sim.is_complete() && sim.epoch_index() < max_epochs {
        // Snapshot at the breakpoint, then produce the reference timeline by
        // continuing the main simulation at the default point.
        let snapshot = sim.snapshot();
        let start_cums: Vec<u64> =
            (0..cfg.num_clusters).map(|c| sim.cluster_instructions(c)).collect();
        let t_start = sim.now();

        for _ in 0..interval {
            if sim.is_complete() {
                break;
            }
            sim.step_epoch(&default_ops);
        }
        // Per-cluster milestones and reference times.
        let milestones: Vec<u64> =
            (0..cfg.num_clusters).map(|c| sim.cluster_instructions(c)).collect();
        let t0: Vec<Option<Time>> = (0..cfg.num_clusters)
            .map(|c| {
                if milestones[c] > start_cums[c] {
                    sim.time_at_instructions(c, milestones[c])
                } else {
                    None
                }
            })
            .collect();

        // Feature-collection window counters: the first epoch after the
        // breakpoint, straight from the reference timeline (it ran at the
        // default point, exactly as the methodology prescribes).
        let feature_record = match sim.record_at(snapshot.epoch_index()) {
            Some(r) => r.clone(),
            None => break,
        };

        specs.push(ReplaySpec { breakpoint, snapshot, t_start, milestones, t0, feature_record });
        breakpoint += 1;
    }
    obs::counter!("datagen.breakpoints").inc(specs.len() as u64);
    specs
}

/// Phase 2, one job: replays one breakpoint interval at one candidate
/// operating point and measures the per-cluster performance loss. Samples
/// come back in cluster order, so assembling jobs in (breakpoint, op) order
/// reproduces the sequential sample order exactly.
fn run_replay(
    name: &str,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    spec: &ReplaySpec,
    op_index: usize,
) -> Vec<RawSample> {
    let _span = obs::span!("datagen", "replay:{}#{}@op{}", name, spec.breakpoint, op_index);
    let _prof = obs::prof::scope("datagen.replay");
    let default_ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let interval = dg.breakpoint_interval_epochs;
    let budget = interval + (interval as f64 * dg.replay_slack).ceil() as usize;
    // The replay looks up milestone crossings anywhere within its own
    // window, so retain every epoch it can possibly step.
    let mut replay = spec.snapshot.restore_with_history(budget.max(2) + 1);
    // Feature window at default, scaling window at the candidate.
    replay.step_epoch(&default_ops);
    let scaled_record = replay.step_epoch(&vec![op_index; cfg.num_clusters]).clone();
    // Back at default until every milestone is reached (bounded).
    while replay.epoch_index() < spec.snapshot.epoch_index() + budget
        && !replay.is_complete()
        && (0..cfg.num_clusters).any(|c| replay.cluster_instructions(c) < spec.milestones[c])
    {
        replay.step_epoch(&default_ops);
    }

    let mut samples = Vec::new();
    for cluster in 0..cfg.num_clusters {
        let Some(t0_c) = spec.t0[cluster] else { continue };
        let Some(tf_c) = replay.time_at_instructions(cluster, spec.milestones[cluster]) else {
            continue;
        };
        let ref_dur = t0_c.saturating_sub(spec.t_start).as_secs();
        if ref_dur <= 0.0 {
            continue;
        }
        let scaled_dur = tf_c.saturating_sub(spec.t_start).as_secs();
        // Sustained-equivalent loss: the extra time the single
        // scaled epoch cost (including delayed effects, which is why
        // the measurement runs to the milestone rather than stopping
        // after 20 µs), normalized to the scaling window's own
        // duration. This is the slowdown a cluster would sustain if
        // it ran at this point continuously — the quantity a preset
        // of "10 % performance loss" constrains at runtime.
        let perf_loss = (scaled_dur - ref_dur) / cfg.epoch.as_secs();
        let scaled_cluster = &scaled_record.clusters[cluster];
        samples.push(RawSample {
            benchmark: name.to_string(),
            cluster,
            breakpoint: spec.breakpoint,
            counters: spec.feature_record.clusters[cluster].counters.clone(),
            scaled_counters: scaled_cluster.counters.clone(),
            op_index,
            perf_loss,
            instructions: scaled_cluster.counters.total_instructions() as u64,
        });
    }
    obs::counter!("datagen.replays").inc(1);
    obs::counter!("datagen.samples").inc(samples.len() as u64);
    samples
}

/// Runs the Fig. 2 methodology on one benchmark, returning its samples.
/// Replays fan out over one worker per core; see [`generate_with_jobs`].
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`GpuConfig::validate`]).
pub fn generate(benchmark: &Benchmark, cfg: &GpuConfig, dg: &DataGenConfig) -> DvfsDataset {
    generate_with_jobs(benchmark, cfg, dg, 0)
}

/// [`generate`] with an explicit worker count (`0` = one per core, `1` =
/// fully sequential). The result is byte-identical for every worker count:
/// replays are deterministic given the breakpoint snapshot, and samples are
/// assembled in (breakpoint, operating point, cluster) order regardless of
/// which worker ran which replay.
pub fn generate_with_jobs(
    benchmark: &Benchmark,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    jobs: usize,
) -> DvfsDataset {
    generate_workload_jobs(benchmark.name(), benchmark.workload().clone(), cfg, dg, jobs)
}

/// [`generate`] for a bare workload.
pub fn generate_workload(
    name: &str,
    workload: Workload,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
) -> DvfsDataset {
    generate_workload_jobs(name, workload, cfg, dg, 0)
}

/// [`generate_workload`] with an explicit worker count (see
/// [`generate_with_jobs`]).
pub fn generate_workload_jobs(
    name: &str,
    workload: Workload,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    jobs: usize,
) -> DvfsDataset {
    let _span = obs::span!("datagen", "datagen:{name}");
    let _prof = obs::prof::scope("datagen");
    let specs = collect_replay_specs(workload, cfg, dg);
    let num_ops = cfg.vf_table.len();
    let job_list: Vec<(usize, usize)> =
        (0..specs.len()).flat_map(|s| (0..num_ops).map(move |op| (s, op))).collect();
    let per_job: Vec<Vec<RawSample>> =
        parallel_map_indexed(jobs, job_list, |_, (spec_idx, op_index)| {
            run_replay(name, cfg, dg, &specs[spec_idx], op_index)
        });
    DvfsDataset { samples: per_job.concat(), ..DvfsDataset::default() }
}

/// Runs data generation over a whole benchmark suite with global fan-out:
/// reference timelines run in parallel across benchmarks, then every
/// (benchmark, breakpoint, operating point) replay becomes one job on the
/// shared work-stealing pool, so a long benchmark's replays keep all
/// workers busy while short benchmarks finish. Returns one dataset per
/// benchmark, in input order, each byte-identical to a sequential
/// [`generate`] run on that benchmark.
///
/// Checkpointing, resume and fault tolerance live on
/// [`generate_suite_with`]; this wrapper is the plain fail-fast path.
pub fn generate_suite(
    benchmarks: &[Benchmark],
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    jobs: usize,
) -> Vec<DvfsDataset> {
    match generate_suite_with(benchmarks, cfg, dg, &SuiteOptions::new(jobs)) {
        Ok(outcome) => outcome.datasets,
        // Unreachable without a journal (the only fallible option), kept as
        // a loud failure rather than an `unwrap` in case that changes.
        Err(e) => panic!("{e}"),
    }
}

/// Knobs for a resilient [`generate_suite_with`] sweep.
#[derive(Debug, Default)]
pub struct SuiteOptions {
    /// Worker count (`0` = one per core).
    pub jobs: usize,
    /// Journal that every finished replay job is appended to (and flushed)
    /// as it completes, enabling a later `--resume`.
    pub journal: Option<CheckpointJournal>,
    /// Jobs already completed by an interrupted run (loaded from its
    /// journal); they are skipped and their journaled samples reused.
    pub completed: CompletedJobs,
    /// When set, a panicking replay job is quarantined and retried on the
    /// pool instead of aborting the sweep; jobs that exhaust the retry
    /// budget are dropped and reported in [`SuiteOutcome::faults`].
    pub fault_policy: Option<FaultPolicy>,
    /// Cross-run replay cache: jobs whose (config, datagen parameters,
    /// workload, breakpoint, operating point) fingerprint is already cached
    /// reuse the stored samples instead of simulating; fresh results are
    /// inserted as they complete. The caller persists the cache with
    /// [`ReplayCache::save`] after the sweep.
    pub cache: Option<std::sync::Arc<ReplayCache>>,
}

impl SuiteOptions {
    /// Plain fail-fast options: no checkpointing, no quarantine.
    pub fn new(jobs: usize) -> SuiteOptions {
        SuiteOptions { jobs, ..SuiteOptions::default() }
    }
}

/// What a resilient suite sweep produced.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// One dataset per benchmark, in input order.
    pub datasets: Vec<DvfsDataset>,
    /// Quarantine activity (empty unless a fault policy was set and a job
    /// panicked).
    pub faults: FaultReport,
}

/// [`generate_suite`] with checkpointing, resume and fault tolerance.
///
/// Phase 1 (reference timelines) is recomputed deterministically even on
/// resume — it is cheap relative to phase 2 and seeds identical
/// [`ReplaySpec`]s, which is what makes journaled and fresh results
/// interchangeable. Phase 2 jobs found in `options.completed` are skipped;
/// the rest run on the pool, each passing the fail-point site
/// `"datagen.replay"` (keyed by global job index) on entry and appending to
/// the journal on exit. Assembly walks the full ordered job list mixing
/// journaled and fresh samples, so the output is byte-identical to an
/// uninterrupted run regardless of where the previous run died.
///
/// # Errors
///
/// Returns [`SsmdvfsError::Io`] if a journal append fails. Replay panics
/// either propagate (no fault policy) or end up in
/// [`SuiteOutcome::faults`].
pub fn generate_suite_with(
    benchmarks: &[Benchmark],
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    options: &SuiteOptions,
) -> Result<SuiteOutcome, SsmdvfsError> {
    let _span = obs::span!("datagen", "datagen-suite:{} benchmarks", benchmarks.len());
    let _prof = obs::prof::scope("datagen.suite");
    let jobs = options.jobs;
    // Phase 1: per-benchmark reference timelines (independent of each other).
    let specs_per_bench: Vec<Vec<ReplaySpec>> =
        parallel_map_indexed(jobs, benchmarks.to_vec(), |_, bench| {
            collect_replay_specs(bench.workload().clone(), cfg, dg)
        });
    // Phase 2: one global job list over every replay of every benchmark.
    let num_ops = cfg.vf_table.len();
    let job_list: Vec<(usize, usize, usize)> = specs_per_bench
        .iter()
        .enumerate()
        .flat_map(|(b, specs)| {
            (0..specs.len()).flat_map(move |s| (0..num_ops).map(move |op| (b, s, op)))
        })
        .collect();

    // Content-addressed cache keys: stable fingerprints of everything a
    // replay's result depends on. Computed once per sweep (per benchmark
    // for the workload), not per job.
    let cache_keys = options.cache.as_ref().map(|_| {
        let cfg_hash = fingerprint(cfg);
        let dg_hash = fingerprint(dg);
        let wl_hashes: Vec<u64> =
            benchmarks.iter().map(|bench| fingerprint(bench.workload())).collect();
        move |b: usize, s: usize, op: usize| {
            ReplayCache::key(cfg_hash, dg_hash, wl_hashes[b], s, op)
        }
    });

    // Split into already-available jobs (journaled by an interrupted run,
    // or cached by a previous sweep) and work still to do. `todo` keeps
    // each job's global index so fail points and journal entries stay
    // deterministic across runs with different resume points.
    let mut cached: Vec<Option<Vec<RawSample>>> = Vec::with_capacity(job_list.len());
    let mut todo: Vec<(usize, (usize, usize, usize))> = Vec::new();
    for (j, &(b, s, op)) in job_list.iter().enumerate() {
        let key = (benchmarks[b].name().to_string(), s, op);
        if let Some(samples) = options.completed.get(&key) {
            cached.push(Some(samples.clone()));
            continue;
        }
        if let (Some(cache), Some(keys)) = (&options.cache, &cache_keys) {
            if let Some(samples) = cache.get(&keys(b, s, op)) {
                cached.push(Some(samples));
                continue;
            }
        }
        cached.push(None);
        todo.push((j, (b, s, op)));
    }
    if !options.completed.is_empty() || options.cache.is_some() {
        obs::info!(
            "datagen: resume/cache skips {}/{} replay jobs",
            job_list.len() - todo.len(),
            job_list.len()
        );
    }
    obs::counter!("datagen.jobs_resumed").inc((job_list.len() - todo.len()) as u64);

    // A journal append failure inside a worker cannot early-return; park
    // the first one here and surface it after the sweep.
    let journal_error: std::sync::Mutex<Option<SsmdvfsError>> = std::sync::Mutex::new(None);
    let run_one = |job_index: usize, b: usize, s: usize, op: usize| -> Vec<RawSample> {
        crate::failpoint::hit("datagen.replay", job_index);
        let samples = run_replay(benchmarks[b].name(), cfg, dg, &specs_per_bench[b][s], op);
        if let (Some(cache), Some(keys)) = (&options.cache, &cache_keys) {
            cache.insert(keys(b, s, op), samples.clone());
        }
        if let Some(journal) = &options.journal {
            let entry = CheckpointEntry {
                benchmark: benchmarks[b].name().to_string(),
                breakpoint: s,
                op_index: op,
                samples: samples.clone(),
            };
            if let Err(e) = journal.append(&entry) {
                let mut slot =
                    journal_error.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert(e);
            }
        }
        samples
    };

    let (fresh, faults): (Vec<Option<Vec<RawSample>>>, FaultReport) = match options.fault_policy {
        Some(policy) => {
            let (out, report) =
                parallel_map_quarantine(jobs, &todo, policy, |_, &(j, (b, s, op))| {
                    run_one(j, b, s, op)
                });
            (out, report)
        }
        None => {
            let out =
                parallel_map_indexed(jobs, todo.clone(), |_, (j, (b, s, op))| run_one(j, b, s, op));
            (out.into_iter().map(Some).collect(), FaultReport::default())
        }
    };
    if let Some(e) = journal_error.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        return Err(e);
    }

    // Ordered assembly back into per-benchmark datasets, merging journaled
    // results with fresh ones; dropped (faulted) jobs contribute nothing.
    let mut fresh_by_job: Vec<Option<Vec<RawSample>>> = vec![None; job_list.len()];
    for ((j, _), result) in todo.into_iter().zip(fresh) {
        fresh_by_job[j] = result;
    }
    let mut datasets: Vec<DvfsDataset> =
        benchmarks.iter().map(|_| DvfsDataset::default()).collect();
    for (j, &(b, _, _)) in job_list.iter().enumerate() {
        if let Some(samples) = cached[j].take() {
            datasets[b].samples.extend(samples);
        } else if let Some(samples) = fresh_by_job[j].take() {
            datasets[b].samples.extend(samples);
        }
    }
    Ok(SuiteOutcome { datasets, faults })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BasicBlock, InstrClass, KernelSpec, MemoryBehavior};

    fn test_cfg() -> GpuConfig {
        GpuConfig::small_test()
    }

    fn compute_workload() -> Workload {
        let k = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::IntAlu, InstrClass::FpAlu], 4_000, 0.0)],
            2,
            16,
            MemoryBehavior::streaming(1 << 18),
        );
        Workload::new("compute", vec![k])
    }

    fn memory_workload() -> Workload {
        let k = KernelSpec::new(
            "k",
            vec![BasicBlock::new(vec![InstrClass::LoadGlobal, InstrClass::IntAlu], 2_000, 0.0)],
            2,
            16,
            MemoryBehavior::streaming(64 << 20),
        );
        Workload::new("memory", vec![k])
    }

    #[test]
    fn generates_samples_for_every_op_and_cluster() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let data = generate_workload("compute", compute_workload(), &cfg, &dg);
        assert!(!data.is_empty());
        // Every operating point appears as a label.
        for op in 0..cfg.vf_table.len() {
            assert!(
                data.samples.iter().any(|s| s.op_index == op),
                "no sample labeled with op {op}"
            );
        }
        // Both clusters contribute.
        assert!(data.samples.iter().any(|s| s.cluster == 0));
        assert!(data.samples.iter().any(|s| s.cluster == 1));
    }

    #[test]
    fn default_point_has_near_zero_loss() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let data = generate_workload("compute", compute_workload(), &cfg, &dg);
        let default_idx = cfg.vf_table.default_index();
        for s in data.samples.iter().filter(|s| s.op_index == default_idx) {
            assert!(
                s.perf_loss.abs() < 0.02,
                "replaying at the default point must reproduce the reference: loss {}",
                s.perf_loss
            );
        }
    }

    #[test]
    fn compute_bound_loss_grows_as_frequency_drops() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let data = generate_workload("compute", compute_workload(), &cfg, &dg);
        let mean_loss = |op: usize| {
            let v: Vec<f64> = data
                .samples
                .iter()
                .filter(|s| s.op_index == op && s.breakpoint == 0)
                .map(|s| s.perf_loss)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let slow = mean_loss(0);
        let fast = mean_loss(5);
        assert!(
            slow > fast + 0.05,
            "dropping to 683 MHz must cost a compute-bound kernel time: {slow:.4} vs {fast:.4}"
        );
        // Sustained-equivalent loss at 683 MHz should approach the
        // frequency ratio penalty (1165/683 - 1 = 0.71) for compute-bound
        // code.
        assert!(slow > 0.3, "sustained loss at the floor should be large: {slow:.4}");
    }

    #[test]
    fn memory_bound_loss_is_smaller_than_compute_bound() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let compute = generate_workload("c", compute_workload(), &cfg, &dg);
        let memory = generate_workload("m", memory_workload(), &cfg, &dg);
        let mean_low = |d: &DvfsDataset| {
            let v: Vec<f64> =
                d.samples.iter().filter(|s| s.op_index == 0).map(|s| s.perf_loss).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_low(&memory) < mean_low(&compute),
            "memory-bound work must tolerate the low point better ({:.4} vs {:.4})",
            mean_low(&memory),
            mean_low(&compute)
        );
    }

    #[test]
    fn dataset_conversions_have_consistent_shapes() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let data = generate_workload("c", compute_workload(), &cfg, &dg);
        let fs = FeatureSet::refined();
        let dec = data.decision_data(&fs, cfg.vf_table.len());
        assert_eq!(dec.x.cols(), fs.len() + 1);
        assert!(dec.len() >= data.len() / 6, "one row per context per grid preset");
        assert_eq!(dec.num_classes, 6);
        let raw = data.decision_data_raw(&fs, cfg.vf_table.len());
        assert_eq!(raw.len(), data.len());
        let cal = data.calibrator_data(&fs, cfg.vf_table.len(), 1_000.0);
        assert_eq!(cal.x.cols(), fs.len() + 2);
        assert!(cal.len() >= data.len(), "cross-product rows per context");
        // Targets were scaled.
        assert!(cal.y.iter().all(|&v| v < 1_000.0));
    }

    #[test]
    fn instructions_in_scaling_window_scale_with_frequency_for_compute() {
        let cfg = test_cfg();
        let dg = DataGenConfig { breakpoint_interval_epochs: 5, ..DataGenConfig::default() };
        let data = generate_workload("c", compute_workload(), &cfg, &dg);
        let mean_instr = |op: usize| {
            let v: Vec<f64> = data
                .samples
                .iter()
                .filter(|s| s.op_index == op && s.breakpoint == 0)
                .map(|s| s.instructions as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let ratio = mean_instr(0) / mean_instr(5);
        assert!(
            (0.45..0.85).contains(&ratio),
            "throughput in the scaling window should track frequency (683/1165 = 0.59), got {ratio:.3}"
        );
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use gpu_sim::CounterId;

    fn sample_dataset() -> DvfsDataset {
        let mut c = EpochCounters::zeroed();
        c[CounterId::Ipc] = 1.5;
        let samples = (0..6)
            .map(|op| RawSample {
                benchmark: "p".into(),
                cluster: 0,
                breakpoint: 0,
                counters: c.clone(),
                scaled_counters: c.clone(),
                op_index: op,
                perf_loss: 0.1 * (5 - op) as f64,
                instructions: 9_000,
            })
            .collect();
        DvfsDataset { samples, ..DvfsDataset::default() }
    }

    #[test]
    fn save_load_roundtrip_preserves_flags() {
        let dir = std::env::temp_dir().join("ssmdvfs_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.json");
        let mut ds = sample_dataset();
        ds.feature_variants = false;
        ds.labeling = LabelingMode::Raw;
        ds.save(&path).unwrap();
        let loaded = DvfsDataset::load(&path).unwrap();
        assert_eq!(ds, loaded);
        assert!(!loaded.feature_variants);
        assert_eq!(loaded.labeling, LabelingMode::Raw);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_json_without_flags_defaults_sanely() {
        // Caches written before the ablation flags existed must still load,
        // with the deployed defaults.
        let ds = sample_dataset();
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&ds).unwrap()).unwrap();
        json.as_object_mut().unwrap().remove("feature_variants");
        json.as_object_mut().unwrap().remove("labeling");
        let loaded: DvfsDataset = serde_json::from_value(json).unwrap();
        assert!(loaded.feature_variants, "legacy caches default to variants on");
        assert_eq!(loaded.labeling, LabelingMode::MinFrequency);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("ssmdvfs_dataset_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "[1,2,3]").unwrap();
        assert!(DvfsDataset::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_labeling_mode_switches_conversion() {
        let mut ds = sample_dataset();
        let fs = crate::features::FeatureSet::refined();
        let min_freq = ds.decision_data(&fs, 6);
        ds.labeling = LabelingMode::Raw;
        let raw = ds.decision_data(&fs, 6);
        assert_eq!(raw.len(), ds.len(), "raw labeling: one row per sample");
        assert_ne!(min_freq.len(), raw.len());
        // Raw labels are exactly the op indices.
        assert_eq!(raw.y, vec![0, 1, 2, 3, 4, 5]);
    }
}
