//! Sharded micro-batching DVFS decision service.
//!
//! The paper's premise is a microsecond decision budget per cluster; a
//! fleet of GPUs multiplies that into a stream of concurrent decision
//! requests, and answering them one `forward_one` at a time wastes most of
//! the inference budget on per-call overhead. This module turns the
//! per-cluster [`SsmdvfsGovernor`](crate::SsmdvfsGovernor) hot path into a
//! service:
//!
//! * Clients submit [`DecisionRequest`]s into **bounded per-shard queues**
//!   (a GPU always maps to the same shard). Submission blocks while the
//!   shard is full — backpressure, not loss.
//! * One batcher thread per shard drains up to `max_batch` requests and
//!   answers them through the shard's compiled
//!   [`DecisionPlan`](crate::plan::DecisionPlan) — the same fused
//!   single-allocation fast path the governor runs, including the
//!   per-`(gpu, cluster)` phase-locality memo. Draining in batches
//!   amortizes the queue wakeup over many sub-200 ns decisions.
//! * A request carries an optional **deadline**; one that expires in the
//!   queue is answered with the table's safe fallback operating point (the
//!   default, highest-frequency point — never slow down an epoch on stale
//!   information) and skips inference and calibration entirely.
//!
//! Batching never changes a decision. The plan is byte-identical to the
//! governor path (proptest-enforced in `tests/plan_equivalence.rs`), and
//! the self-calibration state is keyed per `(gpu, cluster)` with each
//! key's requests applied in submission order, so the decision stream for
//! any GPU is byte-identical to driving a private
//! [`SsmdvfsGovernor`](crate::SsmdvfsGovernor) sequentially — at any shard
//! count, batch size or client parallelism.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_power::VfTable;
use gpu_sim::{DecisionSource, EpochCounters};
use serde::Serialize;

use crate::controller::SsmdvfsConfig;
use crate::model::CombinedModel;
use crate::plan::{ClusterSlot, DecisionPlan};

/// Tunables of a [`DecisionService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of independent queue + batcher shards. A GPU always maps to
    /// shard `gpu % shards`, so per-GPU calibration state never crosses a
    /// shard boundary.
    pub shards: usize,
    /// Most requests answered by one batched forward pass.
    pub max_batch: usize,
    /// Bound of each shard's queue; submission blocks at the bound.
    pub queue_depth: usize,
    /// Per-request deadline measured from submission; `None` disables
    /// expiry. Expired requests get the fallback operating point.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { shards: 1, max_batch: 32, queue_depth: 256, deadline: None }
    }
}

/// One DVFS decision request: which cluster of which GPU just finished an
/// epoch with these counters.
#[derive(Debug, Clone)]
pub struct DecisionRequest {
    /// Fleet-wide GPU index (selects the shard and the calibration key).
    pub gpu: usize,
    /// Cluster index within the GPU (calibration key).
    pub cluster: usize,
    /// The finished epoch's performance counters.
    pub counters: EpochCounters,
}

/// The service's answer to one [`DecisionRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Chosen operating-point index.
    pub op_index: usize,
    /// `true` when the deadline expired and `op_index` is the safe
    /// fallback point rather than an inference result.
    pub fallback: bool,
    /// Queue + inference time, submission to answer.
    pub latency: Duration,
}

/// Aggregate counters from a shut-down service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServeStats {
    /// Requests answered (inference and fallback alike).
    pub decisions: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests answered by inference (sum of batch sizes).
    pub batched: u64,
    /// Requests that expired in the queue and got the fallback point.
    pub deadline_misses: u64,
}

impl ServeStats {
    /// Mean requests per batched forward pass (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched as f64 / self.batches as f64
        }
    }

    fn merge(&mut self, other: ServeStats) {
        self.decisions += other.decisions;
        self.batches += other.batches;
        self.batched += other.batched;
        self.deadline_misses += other.deadline_misses;
    }
}

struct Pending {
    gpu: usize,
    cluster: usize,
    counters: EpochCounters,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<Decision>,
}

struct ShardQueue {
    items: VecDeque<Pending>,
    closed: bool,
}

struct Shard {
    queue: Mutex<ShardQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
}

impl Shard {
    fn new(depth: usize) -> Shard {
        Shard {
            queue: Mutex::new(ShardQueue { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth,
        }
    }

    /// Blocks while the shard is at its bound — the service's
    /// backpressure. Panics if the service was shut down.
    fn push(&self, p: Pending) {
        let mut q = self.queue.lock().expect("serve shard poisoned");
        while q.items.len() >= self.depth && !q.closed {
            q = self.not_full.wait(q).expect("serve shard poisoned");
        }
        assert!(!q.closed, "DecisionRequest submitted to a shut-down DecisionService");
        q.items.push_back(p);
        obs::gauge!("serve.queue_depth").set(q.items.len() as f64);
        drop(q);
        self.not_empty.notify_one();
    }

    /// Blocks until requests are available, then moves up to `max_batch`
    /// of them into `buf`. Returns `false` once the shard is closed and
    /// drained — the batcher's exit condition.
    fn drain(&self, max_batch: usize, buf: &mut Vec<Pending>) -> bool {
        let mut q = self.queue.lock().expect("serve shard poisoned");
        while q.items.is_empty() && !q.closed {
            q = self.not_empty.wait(q).expect("serve shard poisoned");
        }
        if q.items.is_empty() {
            return false;
        }
        let n = q.items.len().min(max_batch.max(1));
        buf.extend(q.items.drain(..n));
        obs::gauge!("serve.queue_depth").set(q.items.len() as f64);
        drop(q);
        self.not_full.notify_all();
        true
    }

    fn close(&self) {
        self.queue.lock().expect("serve shard poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// One shard's batcher: owns the shard's compiled [`DecisionPlan`] and the
/// decision slot (calibration state + memo) of every GPU mapped to the
/// shard.
struct ShardWorker {
    table_len: usize,
    fallback_op: usize,
    plan: DecisionPlan,
    slots: HashMap<(usize, usize), ClusterSlot>,
    live: Vec<Pending>,
    stats: ServeStats,
}

impl ShardWorker {
    fn new(
        model: Arc<CombinedModel>,
        config: SsmdvfsConfig,
        table: VfTable,
        fallback_op: usize,
    ) -> ShardWorker {
        ShardWorker {
            table_len: table.len(),
            fallback_op,
            plan: DecisionPlan::compile(&model, &config),
            slots: HashMap::new(),
            live: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    fn respond(&mut self, p: Pending, op_index: usize, fallback: bool) {
        let latency = p.submitted.elapsed();
        obs::histogram!("serve.decision_latency_us").record(latency.as_secs_f64() * 1e6);
        self.stats.decisions += 1;
        // A vanished client (it gave up on the request) is not an error.
        let _ = p.reply.send(Decision { op_index, fallback, latency });
    }

    /// Answers one drained batch: expired requests get the fallback point;
    /// the rest run in submission order through the shard's compiled
    /// [`DecisionPlan`] against their `(gpu, cluster)` slot. The plan is
    /// byte-identical to `SsmdvfsGovernor::decide` (memo included), so
    /// serving is byte-identical to sequential governing.
    fn process(&mut self, batch: &mut Vec<Pending>) {
        let now = Instant::now();
        for p in batch.drain(..) {
            if p.deadline.is_some_and(|d| now > d) {
                self.stats.deadline_misses += 1;
                obs::counter!("serve.deadline_misses").inc(1);
                let op = self.fallback_op;
                self.respond(p, op, true);
            } else {
                self.live.push(p);
            }
        }
        let n = self.live.len();
        if n == 0 {
            return;
        }
        obs::histogram!("serve.batch_size").record(n as f64);
        self.stats.batches += 1;
        self.stats.batched += n as u64;
        let answered: Vec<Pending> = self.live.drain(..).collect();
        for p in answered {
            let slot = self.slots.entry((p.gpu, p.cluster)).or_insert_with(|| self.plan.new_slot());
            let d = self.plan.decide_slot(slot, &p.counters, self.table_len);
            self.respond(p, d.op, false);
        }
    }
}

/// A running decision service: per-shard bounded queues and batcher
/// threads around one shared model. Create with [`DecisionService::start`],
/// talk to it through [`DecisionService::client`] handles, stop it with
/// [`DecisionService::shutdown`].
pub struct DecisionService {
    shards: Arc<Vec<Shard>>,
    workers: Vec<JoinHandle<ServeStats>>,
    max_batch: usize,
    deadline: Option<Duration>,
}

impl DecisionService {
    /// Spawns the shard batcher threads and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if `table` is empty (there would be no decodable decision
    /// and no fallback point).
    pub fn start(
        model: Arc<CombinedModel>,
        config: SsmdvfsConfig,
        table: VfTable,
        serve: ServeConfig,
    ) -> DecisionService {
        assert!(!table.is_empty(), "DecisionService needs a non-empty VfTable");
        let shard_count = serve.shards.max(1);
        let shards: Arc<Vec<Shard>> =
            Arc::new((0..shard_count).map(|_| Shard::new(serve.queue_depth.max(1))).collect());
        // Pre-register the miss counter: a snapshot after a clean run must
        // still show `serve.deadline_misses = 0`, not a missing key.
        obs::counter!("serve.deadline_misses").inc(0);
        let fallback_op = table.default_index();
        let max_batch = serve.max_batch.max(1);
        let workers = (0..shard_count)
            .map(|idx| {
                let shards = Arc::clone(&shards);
                let mut worker = ShardWorker::new(
                    Arc::clone(&model),
                    config.clone(),
                    table.clone(),
                    fallback_op,
                );
                std::thread::Builder::new()
                    .name(format!("serve-shard-{idx}"))
                    .spawn(move || {
                        let mut batch = Vec::new();
                        while shards[idx].drain(max_batch, &mut batch) {
                            worker.process(&mut batch);
                        }
                        worker.stats
                    })
                    .expect("failed to spawn serve shard thread")
            })
            .collect();
        DecisionService { shards, workers, max_batch, deadline: serve.deadline }
    }

    /// A cheap, cloneable submission handle.
    pub fn client(&self) -> DecisionClient {
        DecisionClient { shards: Arc::clone(&self.shards), deadline: self.deadline }
    }

    /// The batch bound the service was started with.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Closes the queues, waits for every shard to drain, and returns the
    /// aggregate statistics.
    ///
    /// # Panics
    ///
    /// Panics if a shard batcher thread itself panicked.
    pub fn shutdown(mut self) -> ServeStats {
        for shard in self.shards.iter() {
            shard.close();
        }
        let mut stats = ServeStats::default();
        for handle in self.workers.drain(..) {
            stats.merge(handle.join().expect("serve shard thread panicked"));
        }
        stats
    }
}

impl Drop for DecisionService {
    fn drop(&mut self) {
        // A dropped-without-shutdown service must not leave batcher
        // threads parked forever; closing is idempotent.
        for shard in self.shards.iter() {
            shard.close();
        }
    }
}

/// A client handle to a [`DecisionService`]. Cloning is cheap; every
/// clone talks to the same shards.
#[derive(Clone)]
pub struct DecisionClient {
    shards: Arc<Vec<Shard>>,
    deadline: Option<Duration>,
}

impl DecisionClient {
    /// Enqueues a request and returns immediately; blocks only while the
    /// shard queue is full (backpressure). The answer is collected from
    /// the returned handle, which lets a caller pipeline a window of
    /// requests before waiting.
    pub fn submit(&self, request: DecisionRequest) -> PendingDecision {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let shard = &self.shards[request.gpu % self.shards.len()];
        shard.push(Pending {
            gpu: request.gpu,
            cluster: request.cluster,
            counters: request.counters,
            submitted: now,
            deadline: self.deadline.map(|d| now + d),
            reply: tx,
        });
        PendingDecision { rx }
    }

    /// Submit-and-wait round trip for one decision.
    pub fn decide(&self, gpu: usize, cluster: usize, counters: &EpochCounters) -> Decision {
        self.submit(DecisionRequest { gpu, cluster, counters: counters.clone() }).wait()
    }
}

/// The in-flight side of [`DecisionClient::submit`].
pub struct PendingDecision {
    rx: Receiver<Decision>,
}

impl PendingDecision {
    /// Blocks until the service answers.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down with the request still in flight.
    pub fn wait(self) -> Decision {
        self.rx.recv().expect("DecisionService shut down with a request in flight")
    }
}

impl DecisionSource for DecisionClient {
    fn decide(
        &self,
        gpu: usize,
        cluster: usize,
        counters: &EpochCounters,
        _table: &VfTable,
    ) -> usize {
        DecisionClient::decide(self, gpu, cluster, counters).op_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::CounterId;

    fn setup(serve: ServeConfig) -> (DecisionService, VfTable) {
        let table = gpu_sim::GpuConfig::small_test().vf_table;
        let model = Arc::new(CombinedModel::synthetic(table.len(), 9));
        let service = DecisionService::start(model, SsmdvfsConfig::new(0.1), table.clone(), serve);
        (service, table)
    }

    fn counters_for(i: u64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalInstrs] = 500.0 + 37.0 * i as f64;
        c[CounterId::TotalCycles] = 1_000.0;
        c[CounterId::IntAluInstrs] = 200.0 + 11.0 * i as f64;
        c[CounterId::LoadGlobalInstrs] = 60.0 + 3.0 * (i % 7) as f64;
        c[CounterId::StallMemLoad] = 120.0 + 17.0 * (i % 5) as f64;
        c[CounterId::L1ReadAccess] = 90.0;
        c[CounterId::L1ReadMiss] = 20.0 + (i % 9) as f64;
        c.recompute_derived();
        c
    }

    #[test]
    fn serve_decisions_match_batch_size_one() {
        let run = |max_batch: usize| -> Vec<usize> {
            let (service, _) =
                setup(ServeConfig { shards: 1, max_batch, ..ServeConfig::default() });
            let client = service.client();
            // Pipeline windows so the batcher actually sees batches.
            let mut ops = Vec::new();
            for window in 0..8 {
                let pending: Vec<PendingDecision> = (0..16)
                    .map(|k| {
                        client.submit(DecisionRequest {
                            gpu: k % 4,
                            cluster: 0,
                            counters: counters_for(window * 16 + k as u64),
                        })
                    })
                    .collect();
                ops.extend(pending.into_iter().map(|p| p.wait().op_index));
            }
            let stats = service.shutdown();
            assert_eq!(stats.decisions, 128);
            assert_eq!(stats.deadline_misses, 0);
            ops
        };
        assert_eq!(run(1), run(32), "batching must not change any decision");
    }

    #[test]
    fn expired_requests_get_the_fallback_point() {
        let (service, table) = setup(ServeConfig {
            shards: 1,
            max_batch: 8,
            deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        });
        let client = service.client();
        // A zero deadline has expired by the time the batcher drains it.
        let d = client.decide(0, 0, &counters_for(0));
        assert!(d.fallback);
        assert_eq!(d.op_index, table.default_index());
        let stats = service.shutdown();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.batched, 0);
    }

    #[test]
    fn shards_isolate_gpus_but_not_results() {
        let gather = |shards: usize| -> Vec<usize> {
            let (service, _) =
                setup(ServeConfig { shards, max_batch: 4, ..ServeConfig::default() });
            let client = service.client();
            let ops = (0..24)
                .map(|i| client.decide(i % 6, i / 6, &counters_for(i as u64)).op_index)
                .collect();
            service.shutdown();
            ops
        };
        assert_eq!(gather(1), gather(3), "shard count must not change decisions");
    }
}
