//! The compiled single-decision fast path.
//!
//! [`SsmdvfsGovernor`](crate::SsmdvfsGovernor)'s per-epoch hot path used to
//! thread each decision through several independently allocated pieces — a
//! feature buffer, two [`Normalizer`]s, two compiled
//! [`InferenceNet`](tinynn::InferenceNet)s with their own ping-pong scratch,
//! and decode buffers. A [`DecisionPlan`] fuses all of it at governor
//! construction into one flat preplanned arena: a single contiguous `f32`
//! allocation holding the normalizer constants, both heads' weights and
//! biases (dense row-major, or CSR values when pruning left a head mostly
//! zeros) and every scratch slot the decision needs, with all layer offsets
//! precomputed. A decision then runs branchless inner loops over that one
//! allocation — no per-decision heap traffic, no pointer chasing between
//! model pieces.
//!
//! Two properties are load-bearing and test-enforced:
//!
//! * **Bit-identity.** The plan replicates the exact arithmetic of the
//!   engine path it replaces — same feature extraction, same `(x - mean) /
//!   std` normalization, same ascending-`k` dense accumulation, same
//!   ascending-column CSR accumulation, same softmax/ordinal decode, same
//!   `f64` calibration update. The decision stream is byte-identical to the
//!   pre-plan governor (proptest-enforced in `tests/plan_equivalence.rs`).
//! * **Memoization is invisible.** The per-cluster memo (see below) only
//!   ever replays a decision whose *entire* input — feature bits, actual
//!   instruction count, starvation flag, pre-decision calibration state and
//!   table size — is bit-for-bit identical to the memoized epoch, so a hit
//!   returns exactly what recomputing would have.
//!
//! # Phase-locality memo
//!
//! GPU workloads run in phases: during a steady compute or memory phase the
//! quantized counter vector of consecutive 10 µs epochs is frequently
//! unchanged, and the calibration state sits at a fixed point (starved
//! epochs skip the update entirely; converged epochs are clamped at the
//! preset). The plan keeps a depth-1 memo per cluster slot: when the new
//! epoch's inputs match the previous epoch bit-for-bit, inference is
//! short-circuited entirely and the stored decision (including the logits
//! the audit trail records) is replayed. Hits and misses are observable as
//! `decide.memo_hits` / `decide.memo_misses`, and the plan latency as the
//! `decide.plan_latency_ns` histogram.
//!
//! # Quantized path
//!
//! The plan also compiles both heads to [`Int8Net`] — the flat-arena INT8
//! engine whose i32-accumulating kernel is the fastest single-decision path
//! in `BENCH_decide` — reachable through
//! [`DecisionPlan::decide_slot_quantized`]. It runs the same fused decision
//! (features, calibration, decode) but infers through the integer datapath,
//! so its decisions match the exact path only up to activation-quantization
//! error; deployments take it for latency, the default exact path for
//! bit-stable replays.

use gpu_sim::{CounterId, EpochCounters};
use tinynn::{Activation, Int8Net, Mlp, Normalizer, QuantizedMlp, SparseMlp};

use crate::controller::SsmdvfsConfig;
use crate::model::CombinedModel;

/// Density below which a head compiles to the CSR program — the same
/// threshold [`tinynn::InferenceNet::compile`] uses, so the plan always
/// picks the engine the governor would have.
const SPARSE_DENSITY_THRESHOLD: f64 = 0.5;

/// One fused layer inside the arena program.
#[derive(Debug, Clone)]
struct PlanStep {
    /// Output width.
    rows: usize,
    /// Input width.
    cols: usize,
    /// Arena offset of the weights: row-major dense values, or the CSR
    /// value stream when `csr` is set.
    w_off: usize,
    /// Arena offset of the biases.
    b_off: usize,
    /// Apply ReLU after the affine map.
    relu: bool,
    /// CSR bookkeeping offsets into the index arena; `None` for dense.
    csr: Option<CsrOff>,
}

/// Offsets of one CSR layer's structure inside the shared index arena.
#[derive(Debug, Clone)]
struct CsrOff {
    /// Offset of the `rows + 1` row pointers.
    row_ptr: usize,
    /// Offset of the per-value column indices.
    col_idx: usize,
}

/// Compiled program for one model head: its steps plus engine metadata.
#[derive(Debug, Clone)]
struct HeadProgram {
    steps: Vec<PlanStep>,
    sparse: bool,
    flops: u64,
    output_size: usize,
}

/// Per-cluster self-calibration state — the plan-side spelling of the
/// governor's historical `ClusterState`, updated with identical `f64`
/// arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct CalState {
    /// The preset the Decision-maker currently sees (tightened below the
    /// configured preset while the cluster runs slower than predicted).
    pub effective_preset: f64,
    /// The Calibrator's instruction-count prediction for the epoch in
    /// flight, judged when that epoch's counters arrive.
    pub predicted_instructions: Option<f32>,
    /// Exponentially smoothed relative prediction error; single-epoch
    /// throughput variance (cache bursts, CTA boundaries) must not trigger
    /// calibration, persistent shortfalls must.
    pub err_ewma: f64,
}

/// The depth-1 decision memo of one cluster slot: the complete bit-exact
/// input of the last decision, plus everything needed to replay its output.
/// Buffers are reused across epochs — storing a memo never allocates once
/// the slot is warm.
#[derive(Debug, Clone, Default)]
struct MemoEntry {
    valid: bool,
    // --- key: every input the decision arithmetic reads ---
    features: Vec<f32>,
    actual_bits: u64,
    starved: bool,
    table_len: usize,
    pre_preset_bits: u64,
    pre_err_bits: u64,
    pre_pred_bits: Option<u32>,
    // --- replayed output ---
    op: usize,
    post_preset_bits: u64,
    post_err_bits: u64,
    post_pred: f32,
    logits: Vec<f32>,
}

/// Per-cluster state a [`DecisionPlan`] decides against: calibration state
/// plus the phase-locality memo. Create via [`DecisionPlan::new_slot`]; the
/// governor keeps one per cluster, the decision service one per
/// `(gpu, cluster)` key.
#[derive(Debug, Clone)]
pub struct ClusterSlot {
    /// The calibration state (public so harnesses and tests can inspect or
    /// perturb it; the memo key covers it, so perturbation never causes a
    /// stale replay).
    pub state: CalState,
    memo: MemoEntry,
}

/// What one fused decision produced (the governor's audit trail consumes
/// every field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDecision {
    /// Chosen operating-point index.
    pub op: usize,
    /// `true` when the memo replayed the previous epoch's decision without
    /// running inference.
    pub memo_hit: bool,
    /// The epoch was dominated by empty-pipeline stalls and skipped
    /// calibration.
    pub starved: bool,
    /// The effective preset after this decision's calibration update.
    pub effective_preset: f64,
    /// The instruction-count prediction made for the *next* epoch.
    pub predicted: f32,
    /// The prediction that was outstanding *for* the epoch just judged
    /// (`None` on a cluster's first decision).
    pub prev_predicted: Option<f32>,
}

/// The compiled single-decision fast path. See the module docs.
///
/// # Examples
///
/// ```
/// use gpu_sim::{CounterId, EpochCounters};
/// use ssmdvfs::plan::DecisionPlan;
/// use ssmdvfs::{CombinedModel, SsmdvfsConfig};
///
/// let model = CombinedModel::synthetic(6, 7);
/// let mut plan = DecisionPlan::compile(&model, &SsmdvfsConfig::new(0.1));
/// let mut slot = plan.new_slot();
/// // A starvation-dominated epoch: calibration skips it, so the slot's
/// // state freezes and an exact repeat is the memo's guaranteed hit.
/// let mut counters = EpochCounters::zeroed();
/// counters[CounterId::TotalCycles] = 10_000.0;
/// counters[CounterId::StallEmpty] = 9_000.0;
/// let first = plan.decide_slot(&mut slot, &counters, 6);
/// assert!(first.op < 6 && !first.memo_hit);
/// // Identical inputs + unchanged state → the memo replays the decision.
/// let replay = plan.decide_slot(&mut slot, &counters, 6);
/// assert!(replay.memo_hit);
/// assert_eq!(replay.op, first.op);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionPlan {
    /// The single contiguous allocation: `[0, scratch_base)` is the
    /// immutable program (normalizer constants, weights, biases),
    /// `[scratch_base, ..)` the per-decision scratch slots.
    arena: Vec<f32>,
    /// CSR structure (row pointers + column indices) for sparse steps;
    /// empty when both heads compiled dense.
    idx: Vec<u32>,
    decision: HeadProgram,
    calibrator: HeadProgram,
    /// Quantized twins of both heads — the fastest inference kernels in the
    /// workspace, reachable via [`DecisionPlan::decide_slot_quantized`].
    int8_decision: Int8Net,
    int8_calibrator: Int8Net,
    /// Which counters feed the model, fused from the feature set.
    feature_ids: Vec<CounterId>,
    // Program offsets (into the arena's program region).
    dec_mean: usize,
    dec_std: usize,
    cal_mean: usize,
    cal_std: usize,
    // Scratch offsets (relative to `scratch_base`).
    scratch_base: usize,
    s_features: usize,
    s_input: usize,
    s_a: usize,
    s_b: usize,
    s_logits: usize,
    s_probs: usize,
    act_width: usize,
    // Decode and calibration constants.
    num_ops: usize,
    instr_scale: f32,
    cal_op_denom: f32,
    preset: f64,
    gain: f64,
    recovery: f64,
    min_preset: f64,
    deadband: f64,
    calibration: bool,
    argmax_decode: bool,
    memo: bool,
}

impl DecisionPlan {
    /// Compiles the model and controller config into a fused plan. Engine
    /// selection matches [`tinynn::InferenceNet::compile`] per head: CSR
    /// below half density, branch-free dense otherwise.
    pub fn compile(model: &CombinedModel, config: &SsmdvfsConfig) -> DecisionPlan {
        let f = model.feature_set.len();
        let mut arena: Vec<f32> = Vec::new();
        let mut idx: Vec<u32> = Vec::new();

        let push_norm = |arena: &mut Vec<f32>, n: &Normalizer| -> (usize, usize) {
            let mean = arena.len();
            arena.extend_from_slice(n.mean());
            let std = arena.len();
            arena.extend_from_slice(n.std());
            (mean, std)
        };
        let (dec_mean, dec_std) = push_norm(&mut arena, &model.decision_norm);
        let (cal_mean, cal_std) = push_norm(&mut arena, &model.calibrator_norm);
        let decision = compile_head(&model.decision, &mut arena, &mut idx);
        let calibrator = compile_head(&model.calibrator, &mut arena, &mut idx);

        // Scratch layout: features | assembled input | activation ping |
        // activation pong | logits | probs. The activation slots must fit
        // the widest layer input/output of either head.
        let act_width = model
            .decision
            .layers()
            .iter()
            .chain(model.calibrator.layers())
            .flat_map(|l| [l.input_size(), l.output_size()])
            .max()
            .unwrap_or(0)
            .max(f + 2);
        let num_out = decision.output_size;
        let scratch_base = arena.len();
        let s_features = 0;
        let s_input = s_features + f;
        let s_a = s_input + (f + 2);
        let s_b = s_a + act_width;
        let s_logits = s_b + act_width;
        let s_probs = s_logits + num_out;
        arena.resize(scratch_base + s_probs + num_out, 0.0);

        DecisionPlan {
            arena,
            idx,
            decision,
            calibrator,
            int8_decision: Int8Net::from_quantized(&QuantizedMlp::quantize(&model.decision)),
            int8_calibrator: Int8Net::from_quantized(&QuantizedMlp::quantize(&model.calibrator)),
            feature_ids: model.feature_set.counters().to_vec(),
            dec_mean,
            dec_std,
            cal_mean,
            cal_std,
            scratch_base,
            s_features,
            s_input,
            s_a,
            s_b,
            s_logits,
            s_probs,
            act_width,
            num_ops: model.num_ops,
            instr_scale: model.instr_scale,
            cal_op_denom: (model.num_ops.max(2) - 1) as f32,
            preset: config.preset,
            gain: config.gain,
            recovery: config.recovery,
            min_preset: config.min_preset,
            deadband: config.deadband,
            calibration: config.calibration,
            argmax_decode: config.argmax_decode,
            memo: true,
        }
    }

    /// A fresh cluster slot at the configured preset, with a cold memo.
    pub fn new_slot(&self) -> ClusterSlot {
        ClusterSlot {
            state: CalState {
                effective_preset: self.preset,
                predicted_instructions: None,
                err_ewma: 0.0,
            },
            memo: MemoEntry::default(),
        }
    }

    /// Enables or disables the phase-locality memo (on by default). The
    /// decision stream is byte-identical either way; turning it off is for
    /// benchmarking the uncached path.
    pub fn set_memo(&mut self, on: bool) {
        self.memo = on;
    }

    /// Whether the memo is active.
    pub fn memo_enabled(&self) -> bool {
        self.memo
    }

    /// Whether the Decision-maker head compiled to the CSR program.
    pub fn decision_is_sparse(&self) -> bool {
        self.decision.sparse
    }

    /// Whether the Calibrator head compiled to the CSR program.
    pub fn calibrator_is_sparse(&self) -> bool {
        self.calibrator.sparse
    }

    /// FLOPs of one Decision-maker inference on the compiled program
    /// (sparse-aware, matching [`tinynn::InferenceNet::flops`]).
    pub fn decision_flops(&self) -> u64 {
        self.decision.flops
    }

    /// FLOPs of one Calibrator inference on the compiled program.
    pub fn calibrator_flops(&self) -> u64 {
        self.calibrator.flops
    }

    /// Number of features the plan extracts per decision.
    pub fn feature_len(&self) -> usize {
        self.feature_ids.len()
    }

    /// The features extracted by the most recent decision (valid after any
    /// [`DecisionPlan::decide_slot`] call; the audit trail reads it).
    pub fn features(&self) -> &[f32] {
        let base = self.scratch_base + self.s_features;
        &self.arena[base..base + self.feature_ids.len()]
    }

    /// The Decision-maker logits of the most recent decision (replayed from
    /// the memo on a hit, so they are always the logits of the returned
    /// decision).
    pub fn logits(&self) -> &[f32] {
        let base = self.scratch_base + self.s_logits;
        &self.arena[base..base + self.decision.output_size]
    }

    /// One fused decision for `slot`: feature extraction, calibration
    /// update, Decision-maker inference + decode, Calibrator prediction —
    /// all inside the preplanned arena, memo-short-circuited when the epoch
    /// bit-exactly repeats the previous one. Byte-identical to the unfused
    /// engine path.
    ///
    /// # Panics
    ///
    /// Panics if `table_len` is zero (there would be no decodable decision).
    pub fn decide_slot(
        &mut self,
        slot: &mut ClusterSlot,
        counters: &EpochCounters,
        table_len: usize,
    ) -> PlanDecision {
        assert!(table_len > 0, "DecisionPlan::decide_slot needs a non-empty operating-point table");
        // Timing the sub-200ns path costs two clock reads; only pay for it
        // when the metrics plane is actually on.
        let t0 = if obs::enabled() { Some(std::time::Instant::now()) } else { None };

        let f = self.feature_ids.len();
        let (prog, scratch) = self.arena.split_at_mut(self.scratch_base);
        for (i, &c) in self.feature_ids.iter().enumerate() {
            scratch[self.s_features + i] = counters[c] as f32;
        }
        // Epochs dominated by empty-pipeline stalls (the cluster ran out of
        // work, e.g. at a kernel boundary) are excluded from calibration: an
        // instruction shortfall there signals missing work, not a slow
        // clock.
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let starved = counters[CounterId::StallEmpty] / cycles > 0.2;
        let actual = counters.total_instructions();
        let prev_predicted = slot.state.predicted_instructions;

        // Memo probe: a hit requires every input of the decision arithmetic
        // — features, judged instruction count, starvation, pre-decision
        // calibration state, table size — to match the stored epoch
        // bit-for-bit, which makes the replay provably identical to
        // recomputing.
        if self.memo {
            let m = &slot.memo;
            // The outstanding prediction only feeds the calibration update;
            // when that update cannot run (starved epoch, or calibration
            // off) every output is independent of it, so it drops out of
            // the key — this is what lets steady starved phases hit from
            // their second epoch on.
            let pred_matches =
                starved || !self.calibration || m.pre_pred_bits == prev_predicted.map(f32::to_bits);
            if m.valid
                && m.table_len == table_len
                && m.starved == starved
                && m.actual_bits == actual.to_bits()
                && m.pre_preset_bits == slot.state.effective_preset.to_bits()
                && m.pre_err_bits == slot.state.err_ewma.to_bits()
                && pred_matches
                && bits_equal(&m.features, &scratch[self.s_features..self.s_features + f])
            {
                slot.state.effective_preset = f64::from_bits(m.post_preset_bits);
                slot.state.err_ewma = f64::from_bits(m.post_err_bits);
                slot.state.predicted_instructions = Some(m.post_pred);
                scratch[self.s_logits..self.s_logits + m.logits.len()].copy_from_slice(&m.logits);
                let decision = PlanDecision {
                    op: m.op,
                    memo_hit: true,
                    starved,
                    effective_preset: slot.state.effective_preset,
                    predicted: m.post_pred,
                    prev_predicted,
                };
                obs::counter!("decide.memo_hits").inc(1);
                if let Some(t0) = t0 {
                    obs::histogram!("decide.plan_latency_ns")
                        .record(t0.elapsed().as_nanos() as f64);
                }
                return decision;
            }
        }
        let pre_preset_bits = slot.state.effective_preset.to_bits();
        let pre_err_bits = slot.state.err_ewma.to_bits();
        let pre_pred_bits = prev_predicted.map(f32::to_bits);

        // Self-calibration on the epoch that just ended (exact f64
        // arithmetic of the engine path).
        if self.calibration && !starved {
            if let Some(predicted) = slot.state.predicted_instructions {
                let actual_f32 = actual as f32;
                if predicted > 0.0 {
                    let rel_err = f64::from((predicted - actual_f32) / predicted);
                    slot.state.err_ewma = 0.7 * slot.state.err_ewma + 0.3 * rel_err;
                    if slot.state.err_ewma > self.deadband {
                        // Persistently slower than the preset expectation:
                        // tighten the effective preset.
                        slot.state.effective_preset = (slot.state.effective_preset
                            - self.gain * (slot.state.err_ewma - self.deadband) * self.preset)
                            .max(self.min_preset);
                    } else {
                        // On or ahead of expectation: relax toward the
                        // original preset.
                        slot.state.effective_preset = (slot.state.effective_preset
                            + self.recovery * self.preset)
                            .min(self.preset);
                    }
                }
            }
        }
        let effective_preset = slot.state.effective_preset;

        // Decision head: assemble [features..., effective preset],
        // normalize, run the fused program, decode.
        scratch.copy_within(self.s_features..self.s_features + f, self.s_input);
        scratch[self.s_input + f] = effective_preset as f32;
        normalize(
            &mut scratch[self.s_input..self.s_input + f + 1],
            &prog[self.dec_mean..self.dec_mean + f + 1],
            &prog[self.dec_std..self.dec_std + f + 1],
        );
        run_head(
            prog,
            &self.idx,
            &self.decision,
            scratch,
            self.s_input,
            f + 1,
            self.s_a,
            self.s_b,
            self.act_width,
            self.s_logits,
        );
        let num_out = self.decision.output_size;
        let op = if self.argmax_decode {
            argmax_of(&scratch[self.s_logits..self.s_logits + num_out]).min(table_len - 1)
        } else {
            scratch.copy_within(self.s_logits..self.s_logits + num_out, self.s_probs);
            let probs = &mut scratch[self.s_probs..self.s_probs + num_out];
            tinynn::softmax_in_place(probs);
            let mean: f32 = probs.iter().enumerate().map(|(i, p)| i as f32 * p).sum();
            (mean.round() as usize).min(self.num_ops - 1).min(table_len - 1)
        };

        // Calibrator head: always sees the original preset.
        scratch.copy_within(self.s_features..self.s_features + f, self.s_input);
        scratch[self.s_input + f] = self.preset as f32;
        scratch[self.s_input + f + 1] = op as f32 / self.cal_op_denom;
        normalize(
            &mut scratch[self.s_input..self.s_input + f + 2],
            &prog[self.cal_mean..self.cal_mean + f + 2],
            &prog[self.cal_std..self.cal_std + f + 2],
        );
        run_head(
            prog,
            &self.idx,
            &self.calibrator,
            scratch,
            self.s_input,
            f + 2,
            self.s_a,
            self.s_b,
            self.act_width,
            self.s_a, // calibrator output lands in the ping slot
        );
        let predicted = (scratch[self.s_a] * self.instr_scale).max(0.0);
        slot.state.predicted_instructions = Some(predicted);

        if self.memo {
            let m = &mut slot.memo;
            m.valid = true;
            m.features.clear();
            m.features.extend_from_slice(&scratch[self.s_features..self.s_features + f]);
            m.actual_bits = actual.to_bits();
            m.starved = starved;
            m.table_len = table_len;
            m.pre_preset_bits = pre_preset_bits;
            m.pre_err_bits = pre_err_bits;
            m.pre_pred_bits = pre_pred_bits;
            m.op = op;
            m.post_preset_bits = slot.state.effective_preset.to_bits();
            m.post_err_bits = slot.state.err_ewma.to_bits();
            m.post_pred = predicted;
            m.logits.clear();
            m.logits.extend_from_slice(&scratch[self.s_logits..self.s_logits + num_out]);
        }
        obs::counter!("decide.memo_misses").inc(1);
        if let Some(t0) = t0 {
            obs::histogram!("decide.plan_latency_ns").record(t0.elapsed().as_nanos() as f64);
        }
        PlanDecision { op, memo_hit: false, starved, effective_preset, predicted, prev_predicted }
    }

    /// The fused decision on the INT8 datapath: identical flow to
    /// [`DecisionPlan::decide_slot`] (features, calibration, decode,
    /// prediction) but both heads infer through the quantized [`Int8Net`]
    /// kernels — the fastest single-decision path. Decisions track the
    /// exact path within activation-quantization error; they are **not**
    /// bit-identical, so replay-stable pipelines use the exact path and
    /// latency-bound deployments this one. No memo (the exact path's memo
    /// already serves the phase-repeat case).
    ///
    /// # Panics
    ///
    /// Panics if `table_len` is zero.
    pub fn decide_slot_quantized(
        &mut self,
        slot: &mut ClusterSlot,
        counters: &EpochCounters,
        table_len: usize,
    ) -> PlanDecision {
        assert!(table_len > 0, "DecisionPlan needs a non-empty operating-point table");
        let f = self.feature_ids.len();
        let (prog, scratch) = self.arena.split_at_mut(self.scratch_base);
        for (i, &c) in self.feature_ids.iter().enumerate() {
            scratch[self.s_features + i] = counters[c] as f32;
        }
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let starved = counters[CounterId::StallEmpty] / cycles > 0.2;
        let actual = counters.total_instructions();
        let prev_predicted = slot.state.predicted_instructions;
        if self.calibration && !starved {
            if let Some(predicted) = slot.state.predicted_instructions {
                let actual_f32 = actual as f32;
                if predicted > 0.0 {
                    let rel_err = f64::from((predicted - actual_f32) / predicted);
                    slot.state.err_ewma = 0.7 * slot.state.err_ewma + 0.3 * rel_err;
                    if slot.state.err_ewma > self.deadband {
                        slot.state.effective_preset = (slot.state.effective_preset
                            - self.gain * (slot.state.err_ewma - self.deadband) * self.preset)
                            .max(self.min_preset);
                    } else {
                        slot.state.effective_preset = (slot.state.effective_preset
                            + self.recovery * self.preset)
                            .min(self.preset);
                    }
                }
            }
        }
        let effective_preset = slot.state.effective_preset;

        scratch.copy_within(self.s_features..self.s_features + f, self.s_input);
        scratch[self.s_input + f] = effective_preset as f32;
        normalize(
            &mut scratch[self.s_input..self.s_input + f + 1],
            &prog[self.dec_mean..self.dec_mean + f + 1],
            &prog[self.dec_std..self.dec_std + f + 1],
        );
        let num_out = self.decision.output_size;
        let out = self.int8_decision.infer(&scratch[self.s_input..self.s_input + f + 1]);
        scratch[self.s_logits..self.s_logits + num_out].copy_from_slice(out);
        let op = if self.argmax_decode {
            argmax_of(&scratch[self.s_logits..self.s_logits + num_out]).min(table_len - 1)
        } else {
            scratch.copy_within(self.s_logits..self.s_logits + num_out, self.s_probs);
            let probs = &mut scratch[self.s_probs..self.s_probs + num_out];
            tinynn::softmax_in_place(probs);
            let mean: f32 = probs.iter().enumerate().map(|(i, p)| i as f32 * p).sum();
            (mean.round() as usize).min(self.num_ops - 1).min(table_len - 1)
        };

        scratch.copy_within(self.s_features..self.s_features + f, self.s_input);
        scratch[self.s_input + f] = self.preset as f32;
        scratch[self.s_input + f + 1] = op as f32 / self.cal_op_denom;
        normalize(
            &mut scratch[self.s_input..self.s_input + f + 2],
            &prog[self.cal_mean..self.cal_mean + f + 2],
            &prog[self.cal_std..self.cal_std + f + 2],
        );
        let out = self.int8_calibrator.infer(&scratch[self.s_input..self.s_input + f + 2]);
        let predicted = (out[0] * self.instr_scale).max(0.0);
        slot.state.predicted_instructions = Some(predicted);

        PlanDecision { op, memo_hit: false, starved, effective_preset, predicted, prev_predicted }
    }
}

/// Bit-exact slice comparison (`f32::to_bits`, not `==`): NaN-proof and
/// `-0.0 ≠ 0.0`-strict, which is what "exact replay" requires.
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// `(x - mean) / std` per column — the exact arithmetic of
/// [`Normalizer::transform_one`].
fn normalize(x: &mut [f32], mean: &[f32], std: &[f32]) {
    for ((v, &m), &s) in x.iter_mut().zip(mean).zip(std) {
        *v = (*v - m) / s;
    }
}

/// `tinynn::argmax` without the slice-to-vec detour (same semantics: first
/// maximal element wins).
fn argmax_of(v: &[f32]) -> usize {
    tinynn::argmax(v)
}

/// Flattens one head into the arena: dense layers append row-major weights,
/// CSR layers append the value stream to the arena and row pointers +
/// column indices to the index arena. Engine choice (whole-head density
/// against [`SPARSE_DENSITY_THRESHOLD`]) mirrors `InferenceNet::compile`.
fn compile_head(mlp: &Mlp, arena: &mut Vec<f32>, idx: &mut Vec<u32>) -> HeadProgram {
    let sparse_mlp = SparseMlp::from_mlp(mlp);
    let sparse = sparse_mlp.density() < SPARSE_DENSITY_THRESHOLD;
    let flops = if sparse { sparse_mlp.flops() } else { mlp.flops() };
    let mut steps = Vec::with_capacity(mlp.layers().len());
    if sparse {
        for layer in sparse_mlp.layers() {
            let w_off = arena.len();
            arena.extend_from_slice(layer.w.vals());
            let b_off = arena.len();
            arena.extend_from_slice(&layer.b);
            let row_ptr = idx.len();
            idx.extend_from_slice(layer.w.row_ptr());
            let col_idx = idx.len();
            idx.extend_from_slice(layer.w.col_idx());
            steps.push(PlanStep {
                rows: layer.w.rows(),
                cols: layer.w.cols(),
                w_off,
                b_off,
                relu: layer.activation == Activation::Relu,
                csr: Some(CsrOff { row_ptr, col_idx }),
            });
        }
    } else {
        for layer in mlp.layers() {
            let w_off = arena.len();
            arena.extend_from_slice(layer.w.as_slice());
            let b_off = arena.len();
            arena.extend_from_slice(&layer.b);
            steps.push(PlanStep {
                rows: layer.output_size(),
                cols: layer.input_size(),
                w_off,
                b_off,
                relu: layer.activation == Activation::Relu,
                csr: None,
            });
        }
    }
    HeadProgram { steps, sparse, flops, output_size: mlp.output_size() }
}

/// Runs one compiled head over the scratch ping-pong slots and copies the
/// final activations to `out_off`. The kernels replicate the engine
/// arithmetic exactly: dense accumulates each output over `k` ascending
/// with a single `f32` accumulator, CSR over stored columns ascending; both
/// then add the bias and apply the ReLU — bit-identical to
/// `Mlp::forward_one_into` / `SparseMlp::forward_one_into`.
#[allow(clippy::too_many_arguments)]
fn run_head(
    prog: &[f32],
    idx: &[u32],
    head: &HeadProgram,
    scratch: &mut [f32],
    in_off: usize,
    in_len: usize,
    s_a: usize,
    s_b: usize,
    act_width: usize,
    out_off: usize,
) {
    scratch.copy_within(in_off..in_off + in_len, s_a);
    // Two disjoint ping-pong views over the one scratch slice; roles swap
    // per layer.
    let (lo, hi) = scratch.split_at_mut(s_b);
    let mut src: &mut [f32] = &mut lo[s_a..s_a + act_width];
    let mut dst: &mut [f32] = &mut hi[..act_width];
    let mut out_in_a = true;
    for step in &head.steps {
        run_step(prog, idx, step, src, dst);
        std::mem::swap(&mut src, &mut dst);
        out_in_a = !out_in_a;
    }
    let n = head.output_size;
    let final_off = if out_in_a { s_a } else { s_b };
    if final_off != out_off {
        scratch.copy_within(final_off..final_off + n, out_off);
    }
}

/// One fused layer: `y = act(W @ x + b)` with the engine-exact accumulation
/// order (see [`run_head`]).
fn run_step(prog: &[f32], idx: &[u32], step: &PlanStep, x: &[f32], out: &mut [f32]) {
    let b = &prog[step.b_off..step.b_off + step.rows];
    match &step.csr {
        None => {
            let w = &prog[step.w_off..step.w_off + step.rows * step.cols];
            let x = &x[..step.cols];
            for (j, (o, &bj)) in out[..step.rows].iter_mut().zip(b).enumerate() {
                let wrow = &w[j * step.cols..(j + 1) * step.cols];
                let mut acc = 0.0f32;
                for (&wv, &xv) in wrow.iter().zip(x) {
                    acc += wv * xv;
                }
                acc += bj;
                if step.relu {
                    acc = acc.max(0.0);
                }
                *o = acc;
            }
        }
        Some(c) => {
            let row_ptr = &idx[c.row_ptr..c.row_ptr + step.rows + 1];
            for (j, (o, &bj)) in out[..step.rows].iter_mut().zip(b).enumerate() {
                let (start, end) = (row_ptr[j] as usize, row_ptr[j + 1] as usize);
                let cols = &idx[c.col_idx + start..c.col_idx + end];
                let vals = &prog[step.w_off + start..step.w_off + end];
                let mut acc = 0.0f32;
                for (&ci, &v) in cols.iter().zip(vals) {
                    acc += v * x[ci as usize];
                }
                acc += bj;
                if step.relu {
                    acc = acc.max(0.0);
                }
                *o = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use gpu_power::VfTable;
    use gpu_sim::DvfsGovernor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinynn::{Matrix, Normalizer};

    fn dummy_model(seed: u64) -> CombinedModel {
        let fs = FeatureSet::refined();
        let mut rng = StdRng::seed_from_u64(seed);
        let decision = Mlp::new(&[fs.len() + 1, 12, 12, 6], &mut rng);
        let calibrator = Mlp::new(&[fs.len() + 2, 12, 1], &mut rng);
        let lo = vec![0.0f32; fs.len() + 1];
        let hi = vec![5.0f32; fs.len() + 1];
        let decision_norm = Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]));
        let lo = vec![0.0f32; fs.len() + 2];
        let hi = vec![5.0f32; fs.len() + 2];
        let calibrator_norm = Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]));
        CombinedModel {
            decision,
            calibrator,
            feature_set: fs,
            decision_norm,
            calibrator_norm,
            instr_scale: 1_000.0,
            num_ops: 6,
        }
    }

    fn counters_with(instrs: f64, stall_empty: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalInstrs] = instrs;
        c[CounterId::TotalCycles] = 10_000.0;
        c[CounterId::StallEmpty] = stall_empty;
        c[CounterId::L1ReadMiss] = instrs % 97.0;
        c.recompute_derived();
        c
    }

    #[test]
    fn plan_matches_model_methods_exactly() {
        // First decision on a fresh slot: effective preset is still the
        // configured preset, so the allocating CombinedModel methods are a
        // complete independent oracle.
        let model = dummy_model(3);
        let config = SsmdvfsConfig::new(0.1);
        let mut plan = DecisionPlan::compile(&model, &config);
        let mut slot = plan.new_slot();
        let counters = counters_with(5_000.0, 0.0);
        let d = plan.decide_slot(&mut slot, &counters, 6);
        let features = model.feature_set.extract(&counters);
        assert_eq!(plan.features(), &features[..]);
        let logits = model.decision_logits(&features, 0.1);
        assert_eq!(plan.logits(), &logits[..]);
        assert_eq!(d.op, model.decode_ordinal(&logits).min(5));
        assert_eq!(d.predicted, model.predict_instructions(&features, 0.1, d.op));
        assert_eq!(slot.state.predicted_instructions, Some(d.predicted));
    }

    #[test]
    fn sparse_heads_compile_to_csr_programs_with_identical_results() {
        let mut model = dummy_model(5);
        tinynn::prune_magnitude(&mut model.decision, 0.8);
        tinynn::prune_magnitude(&mut model.calibrator, 0.8);
        let config = SsmdvfsConfig::new(0.1);
        let mut plan = DecisionPlan::compile(&model, &config);
        assert!(plan.decision_is_sparse());
        assert!(plan.calibrator_is_sparse());
        assert!(plan.decision_flops() < model.decision.flops());
        let mut slot = plan.new_slot();
        let counters = counters_with(4_000.0, 0.0);
        let d = plan.decide_slot(&mut slot, &counters, 6);
        let features = model.feature_set.extract(&counters);
        assert_eq!(plan.logits(), &model.decision_logits(&features, 0.1)[..]);
        assert_eq!(d.op, model.decide(&features, 0.1).min(5));
    }

    #[test]
    fn memo_hits_on_exact_repeat_and_misses_on_any_change() {
        let model = dummy_model(7);
        let mut plan = DecisionPlan::compile(&model, &SsmdvfsConfig::new(0.1));
        let mut slot = plan.new_slot();
        // Starved epochs skip calibration, so the state reaches a fixed
        // point immediately and an exact counter repeat must hit.
        let starved = counters_with(100.0, 9_000.0);
        let first = plan.decide_slot(&mut slot, &starved, 6);
        assert!(first.starved && !first.memo_hit);
        let hit = plan.decide_slot(&mut slot, &starved, 6);
        assert!(hit.memo_hit);
        assert_eq!(hit.op, first.op);
        assert_eq!(hit.predicted, first.predicted);
        // Any input change misses.
        let changed = plan.decide_slot(&mut slot, &counters_with(101.0, 9_000.0), 6);
        assert!(!changed.memo_hit);
        // Perturbing the calibration state invalidates the key too.
        let again = plan.decide_slot(&mut slot, &counters_with(101.0, 9_000.0), 6);
        assert!(again.memo_hit, "sanity: repeat hits");
        slot.state.err_ewma = 0.25;
        let perturbed = plan.decide_slot(&mut slot, &counters_with(101.0, 9_000.0), 6);
        assert!(!perturbed.memo_hit, "stale state must never replay");
    }

    #[test]
    fn memo_replay_equals_recompute_stream() {
        // The same counter stream through a memo-on and a memo-off plan
        // must produce byte-identical decisions, predictions and state.
        let model = dummy_model(11);
        let config = SsmdvfsConfig::new(0.1);
        let mut with = DecisionPlan::compile(&model, &config);
        let mut without = DecisionPlan::compile(&model, &config);
        without.set_memo(false);
        assert!(with.memo_enabled() && !without.memo_enabled());
        let mut slot_a = with.new_slot();
        let mut slot_b = without.new_slot();
        let stream = [
            (5_000.0, 0.0),
            (5_000.0, 0.0),
            (200.0, 9_500.0),
            (200.0, 9_500.0),
            (200.0, 9_500.0),
            (7_000.0, 0.0),
            (5_000.0, 0.0),
        ];
        let mut hits = 0;
        for &(instrs, stall) in &stream {
            let c = counters_with(instrs, stall);
            let a = with.decide_slot(&mut slot_a, &c, 6);
            let b = without.decide_slot(&mut slot_b, &c, 6);
            assert_eq!(a.op, b.op);
            assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
            assert_eq!(
                slot_a.state.effective_preset.to_bits(),
                slot_b.state.effective_preset.to_bits()
            );
            assert_eq!(slot_a.state.err_ewma.to_bits(), slot_b.state.err_ewma.to_bits());
            assert_eq!(with.logits(), without.logits());
            hits += a.memo_hit as usize;
            assert!(!b.memo_hit);
        }
        assert!(hits >= 2, "the starved repeats must hit the memo, got {hits}");
    }

    #[test]
    fn quantized_path_tracks_exact_path() {
        let model = dummy_model(13);
        let mut plan = DecisionPlan::compile(&model, &SsmdvfsConfig::new(0.1));
        let mut exact_slot = plan.new_slot();
        let mut quant_slot = plan.new_slot();
        let mut agree = 0;
        for i in 0..20 {
            let c = counters_with(3_000.0 + 200.0 * i as f64, 0.0);
            let e = plan.decide_slot(&mut exact_slot, &c, 6);
            let q = plan.decide_slot_quantized(&mut quant_slot, &c, 6);
            // Quantization error can flip a borderline ordinal decode by
            // one point, never more.
            assert!(e.op.abs_diff(q.op) <= 1, "epoch {i}: {} vs {}", e.op, q.op);
            agree += (e.op == q.op) as usize;
            assert!(q.predicted >= 0.0 && q.predicted.is_finite());
        }
        assert!(agree >= 15, "quantized decisions should mostly agree, got {agree}/20");
    }

    #[test]
    fn plan_decisions_match_the_governor_stream() {
        // The governor now runs on the plan, but this pins the whole loop
        // (slot management, audit bookkeeping) to a raw plan driven by
        // hand.
        let model = dummy_model(17);
        let config = SsmdvfsConfig::new(0.1);
        let table = VfTable::titan_x();
        let mut gov = crate::SsmdvfsGovernor::new(model.clone(), config.clone());
        let mut plan = DecisionPlan::compile(&model, &config);
        let mut slot = plan.new_slot();
        for i in 0..12 {
            let c =
                counters_with(4_000.0 + 300.0 * i as f64, if i % 4 == 0 { 9_000.0 } else { 0.0 });
            let g = gov.decide(0, &c, &table);
            let p = plan.decide_slot(&mut slot, &c, table.len());
            assert_eq!(g, p.op, "epoch {i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty operating-point table")]
    fn empty_table_is_rejected() {
        let model = dummy_model(19);
        let mut plan = DecisionPlan::compile(&model, &SsmdvfsConfig::new(0.1));
        let mut slot = plan.new_slot();
        plan.decide_slot(&mut slot, &counters_with(1.0, 0.0), 0);
    }
}
