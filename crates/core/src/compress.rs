//! Model combination and compression (Section IV): the layer-wise
//! architecture sweep and the two-stage pruning sweep behind Fig. 3, and
//! the final compression pipeline behind Table II.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tinynn::{
    accuracy, mape, prune_magnitude, prune_neurons, train_classifier_parallel_with,
    train_regressor_parallel_with, ClassificationData, RegressionData, TrainConfig, TrainPool,
    TrainScratch, ZeroMask,
};

use crate::datagen::DvfsDataset;
use crate::features::FeatureSet;
use crate::model::{CombinedModel, ModelArch};
use crate::train::{train_prepared, PreparedSplits};

/// One point on a FLOPs-vs-quality curve (the axes of Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionPoint {
    /// A short description of the configuration.
    pub label: String,
    /// FLOPs per inference at this point (sparse FLOPs for pruned models).
    pub flops: u64,
    /// Decision-maker accuracy, in [0, 1].
    pub accuracy: f64,
    /// Calibrator MAPE, in percent.
    pub mape: f64,
}

/// Sweeps uniform architectures (hidden-layer count × width), training each
/// from scratch — the "layer-wise compression" series of Fig. 3.
///
/// # Panics
///
/// Panics if the dataset is empty or `shapes` is empty.
pub fn layerwise_sweep(
    dataset: &DvfsDataset,
    features: &FeatureSet,
    shapes: &[(usize, usize)],
    num_ops: usize,
    config: &TrainConfig,
) -> Vec<CompressionPoint> {
    layerwise_sweep_jobs(dataset, features, shapes, num_ops, config, 1)
}

/// [`layerwise_sweep`] with the SGD fan-out running on `jobs` workers. The
/// decision/calibrator splits are prepared **once** and shared by every
/// shape (they do not depend on the architecture), so the sweep performs
/// no per-retrain dataset derivation or cloning; each retrain also reuses
/// one scratch and one worker team. Points are byte-identical at any
/// `jobs`.
///
/// # Panics
///
/// As [`layerwise_sweep`].
pub fn layerwise_sweep_jobs(
    dataset: &DvfsDataset,
    features: &FeatureSet,
    shapes: &[(usize, usize)],
    num_ops: usize,
    config: &TrainConfig,
    jobs: usize,
) -> Vec<CompressionPoint> {
    assert!(!shapes.is_empty(), "the sweep needs at least one shape");
    let prep = PreparedSplits::prepare(dataset, features, num_ops, config, 0.25);
    let pool = TrainPool::new(jobs);
    let mut scratch = TrainScratch::new();
    shapes
        .iter()
        .map(|&(layers, neurons)| {
            let arch = ModelArch::uniform(layers, neurons);
            let (model, summary) = train_prepared(&prep, &arch, config, &pool, &mut scratch);
            CompressionPoint {
                label: format!("{layers}x{neurons}"),
                flops: model.flops(),
                accuracy: summary.decision_accuracy,
                mape: summary.calibrator_mape,
            }
        })
        .collect()
}

/// Applies the paper's two-stage pruning to both heads of a trained model:
/// magnitude pruning at `x1`, then removal of neurons whose incoming weights
/// are at least `x2` zeros. No fine-tuning — see
/// [`compress_and_finetune`] for the recovery step used by the final
/// pipeline.
pub fn compress_model(model: &CombinedModel, x1: f32, x2: f32) -> CombinedModel {
    let mut out = model.clone();
    prune_magnitude(&mut out.decision, x1);
    prune_magnitude(&mut out.calibrator, x1);
    let (decision, _) = prune_neurons(&out.decision, x2);
    let (calibrator, _) = prune_neurons(&out.calibrator, x2);
    out.decision = decision;
    out.calibrator = calibrator;
    out
}

/// The normalized, split recovery-training datasets of the fine-tune step,
/// derived from a `(model, dataset, seed)` triple exactly once. The splits
/// depend only on the *unpruned* model's normalizers and feature set —
/// never on the `(x1, x2)` pruning parameters — so a [`pruning_sweep`]
/// prepares once and fine-tunes every point against borrowed splits
/// instead of re-deriving (and cloning) the dataset per point.
#[derive(Debug, Clone)]
pub struct FinetuneSplits {
    dec_train: ClassificationData,
    dec_val: ClassificationData,
    cal_train: RegressionData,
    cal_val: RegressionData,
}

impl FinetuneSplits {
    /// Derives and splits both heads' recovery datasets, transforming with
    /// the model's own normalizers and seeding the split shuffles from
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn prepare(
        model: &CombinedModel,
        dataset: &DvfsDataset,
        config: &TrainConfig,
    ) -> FinetuneSplits {
        assert!(!dataset.is_empty(), "cannot fine-tune on an empty dataset");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF17E);
        let dec_data = dataset.decision_data(&model.feature_set, model.num_ops);
        let dec_data = ClassificationData::new(
            model.decision_norm.transform(&dec_data.x),
            dec_data.y,
            model.num_ops,
        );
        let (dec_train, dec_val) = dec_data.split(0.25, &mut rng);
        let cal_data =
            dataset.calibrator_data(&model.feature_set, model.num_ops, model.instr_scale);
        let cal_data =
            RegressionData::new(model.calibrator_norm.transform(&cal_data.x), cal_data.y);
        let (cal_train, cal_val) = cal_data.split(0.25, &mut rng);
        FinetuneSplits { dec_train, dec_val, cal_train, cal_val }
    }
}

/// The full compression pipeline: two-stage pruning followed by a short
/// sparsity-preserving fine-tune of both heads on the dataset (pruned
/// weights stay frozen at zero, so the FLOPs reduction survives the
/// recovery training).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn compress_and_finetune(
    model: &CombinedModel,
    dataset: &DvfsDataset,
    x1: f32,
    x2: f32,
    config: &TrainConfig,
) -> CombinedModel {
    compress_and_finetune_jobs(model, dataset, x1, x2, config, 1)
}

/// [`compress_and_finetune`] with the recovery SGD running on `jobs`
/// workers — byte-identical at any `jobs`.
///
/// # Panics
///
/// As [`compress_and_finetune`].
pub fn compress_and_finetune_jobs(
    model: &CombinedModel,
    dataset: &DvfsDataset,
    x1: f32,
    x2: f32,
    config: &TrainConfig,
    jobs: usize,
) -> CombinedModel {
    let splits = FinetuneSplits::prepare(model, dataset, config);
    let pool = TrainPool::new(jobs);
    // Both recovery trainings share one scratch, like `train_combined`.
    let mut scratch = TrainScratch::new();
    compress_and_finetune_prepared(model, &splits, x1, x2, config, &pool, &mut scratch)
}

/// [`compress_and_finetune`] against prepared [`FinetuneSplits`] — the
/// inner loop of [`pruning_sweep_jobs`], which shares one set of splits,
/// one worker team and one scratch across every `(x1, x2)` point.
pub fn compress_and_finetune_prepared(
    model: &CombinedModel,
    splits: &FinetuneSplits,
    x1: f32,
    x2: f32,
    config: &TrainConfig,
    pool: &TrainPool,
    scratch: &mut TrainScratch,
) -> CombinedModel {
    let mut out = compress_model(model, x1, x2);
    // Recovery training uses a gentler step than from-scratch training: the
    // weights are already near a solution and the sparsity mask amplifies
    // effective step sizes on the surviving weights.
    let config = &TrainConfig { lr: config.lr * 0.3, ..config.clone() };
    let dec_mask = ZeroMask::from_zeros(&out.decision);
    train_classifier_parallel_with(
        &mut out.decision,
        &splits.dec_train,
        &splits.dec_val,
        config,
        Some(&dec_mask),
        scratch,
        pool,
    );
    let cal_mask = ZeroMask::from_zeros(&out.calibrator);
    train_regressor_parallel_with(
        &mut out.calibrator,
        &splits.cal_train,
        &splits.cal_val,
        config,
        Some(&cal_mask),
        scratch,
        pool,
    );
    out
}

/// Quantizes both heads to INT8 weights (extension; the paper's module is
/// FP32), returning a model whose weights carry the quantization error so
/// the accuracy cost of an INT8 datapath can be measured with
/// [`crate::train::evaluate`].
pub fn quantize_model(model: &CombinedModel) -> CombinedModel {
    let mut out = model.clone();
    out.decision = tinynn::QuantizedMlp::quantize(&out.decision).dequantize();
    out.calibrator = tinynn::QuantizedMlp::quantize(&out.calibrator).dequantize();
    out
}

/// Sweeps `(x1, x2)` pruning parameters over a trained model, evaluating
/// each pruned variant on the dataset — the "pruning" series of Fig. 3.
///
/// # Panics
///
/// Panics if the dataset is empty or `params` is empty.
pub fn pruning_sweep(
    model: &CombinedModel,
    dataset: &DvfsDataset,
    params: &[(f32, f32)],
    finetune: &TrainConfig,
) -> Vec<CompressionPoint> {
    pruning_sweep_jobs(model, dataset, params, finetune, 1)
}

/// [`pruning_sweep`] with the recovery SGD running on `jobs` workers. The
/// fine-tune splits and the evaluation datasets are derived **once** (they
/// depend only on the unpruned model and the dataset, never on the pruning
/// parameters) and shared by every `(x1, x2)` point, as are the worker
/// team and the training scratch. Points are byte-identical at any `jobs`.
///
/// # Panics
///
/// As [`pruning_sweep`].
pub fn pruning_sweep_jobs(
    model: &CombinedModel,
    dataset: &DvfsDataset,
    params: &[(f32, f32)],
    finetune: &TrainConfig,
    jobs: usize,
) -> Vec<CompressionPoint> {
    assert!(!params.is_empty(), "the sweep needs at least one parameter pair");
    let splits = FinetuneSplits::prepare(model, dataset, finetune);
    let pool = TrainPool::new(jobs);
    let mut scratch = TrainScratch::new();
    // Every pruned variant keeps the parent's feature set, normalizers and
    // op count, so the evaluation inputs are shared across points too
    // (previously `evaluate` re-derived them per point).
    let dec_eval = dataset.decision_data(&model.feature_set, model.num_ops);
    let cal_eval = dataset.calibrator_data(&model.feature_set, model.num_ops, model.instr_scale);
    params
        .iter()
        .map(|&(x1, x2)| {
            let pruned = compress_and_finetune_prepared(
                model,
                &splits,
                x1,
                x2,
                finetune,
                &pool,
                &mut scratch,
            );
            let acc = accuracy(&pruned.decision_forward_raw(&dec_eval.x), &dec_eval.y);
            let m = mape(&pruned.calibrator_forward_raw(&cal_eval.x), &cal_eval.y);
            CompressionPoint {
                label: format!("x1={x1:.2},x2={x2:.2}"),
                flops: pruned.sparse_flops(),
                accuracy: acc,
                mape: m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::RawSample;
    use crate::train::{evaluate, train_combined};
    use gpu_sim::{CounterId, EpochCounters};

    fn tiny_dataset(n: usize) -> DvfsDataset {
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let stall = (i % 10) as f64 / 10.0;
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = 2.0 - stall;
            c[CounterId::PowerTotalW] = 3.0 + stall;
            c[CounterId::StallMemLoad] = stall * 5_000.0;
            c[CounterId::StallMemOther] = stall * 400.0;
            c[CounterId::L1ReadMiss] = stall * 300.0;
            samples.push(RawSample {
                benchmark: "t".into(),
                cluster: 0,
                breakpoint: i,
                counters: c.clone(),
                scaled_counters: c,
                op_index: if stall > 0.5 { 1 } else { 4 },
                perf_loss: 0.05,
                instructions: 8_000 + i as u64,
            });
        }
        DvfsDataset { samples, ..DvfsDataset::default() }
    }

    fn quick_config() -> TrainConfig {
        TrainConfig { epochs: 10, ..TrainConfig::default() }
    }

    #[test]
    fn layerwise_sweep_orders_flops_by_size() {
        let data = tiny_dataset(120);
        let pts = layerwise_sweep(
            &data,
            &FeatureSet::refined(),
            &[(1, 6), (2, 12), (3, 20)],
            6,
            &quick_config(),
        );
        assert_eq!(pts.len(), 3);
        assert!(pts[0].flops < pts[1].flops);
        assert!(pts[1].flops < pts[2].flops);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!(p.mape.is_finite());
        }
    }

    #[test]
    fn pruning_reduces_sparse_flops_monotonically_in_x1() {
        let data = tiny_dataset(120);
        let (model, _) = train_combined(
            &data,
            &FeatureSet::refined(),
            &ModelArch::paper_compressed(),
            6,
            &quick_config(),
            0.25,
        );
        let pts =
            pruning_sweep(&model, &data, &[(0.2, 0.95), (0.5, 0.95), (0.8, 0.95)], &quick_config());
        assert!(pts[0].flops >= pts[1].flops);
        assert!(pts[1].flops >= pts[2].flops);
    }

    #[test]
    fn quantization_keeps_decisions_and_sparsity() {
        let data = tiny_dataset(120);
        let (model, _) = train_combined(
            &data,
            &FeatureSet::refined(),
            &ModelArch::paper_compressed(),
            6,
            &quick_config(),
            0.25,
        );
        let pruned = compress_model(&model, 0.5, 0.9);
        let quantized = quantize_model(&pruned);
        // Sparsity survives (zero weights quantize to zero).
        assert_eq!(quantized.sparse_flops(), pruned.sparse_flops());
        // Decision agreement stays high over the dataset.
        let (acc_p, _) = evaluate(&pruned, &data);
        let (acc_q, _) = evaluate(&quantized, &data);
        assert!(
            (acc_p - acc_q).abs() < 0.08,
            "INT8 should barely move accuracy: {acc_p:.3} vs {acc_q:.3}"
        );
    }

    #[test]
    fn sweeps_are_byte_identical_at_any_worker_count() {
        let data = tiny_dataset(100);
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
        let features = FeatureSet::refined();
        let serial_layers = layerwise_sweep(&data, &features, &[(1, 6), (2, 10)], 6, &cfg);
        let (model, _) =
            train_combined(&data, &features, &ModelArch::paper_compressed(), 6, &cfg, 0.25);
        let serial_prune = pruning_sweep(&model, &data, &[(0.3, 0.95), (0.6, 0.95)], &cfg);
        for jobs in [2usize, 4] {
            let layers = layerwise_sweep_jobs(&data, &features, &[(1, 6), (2, 10)], 6, &cfg, jobs);
            assert_eq!(serial_layers, layers, "layerwise sweep diverged at {jobs} workers");
            let prune = pruning_sweep_jobs(&model, &data, &[(0.3, 0.95), (0.6, 0.95)], &cfg, jobs);
            assert_eq!(serial_prune, prune, "pruning sweep diverged at {jobs} workers");
        }
    }

    #[test]
    fn compress_model_preserves_io_shapes() {
        let data = tiny_dataset(80);
        let (model, _) = train_combined(
            &data,
            &FeatureSet::refined(),
            &ModelArch::paper_full(),
            6,
            &quick_config(),
            0.25,
        );
        let pruned = compress_model(&model, 0.6, 0.9);
        assert_eq!(pruned.decision.input_size(), model.decision.input_size());
        assert_eq!(pruned.decision.output_size(), 6);
        assert_eq!(pruned.calibrator.output_size(), 1);
        assert!(pruned.sparse_flops() < model.flops());
        // A pruned model still makes valid decisions.
        let idx = pruned.decide(&[1.0, 4.0, 100.0, 10.0, 20.0], 0.1);
        assert!(idx < 6);
    }
}
