//! RFE-based feature selection over the 47 performance counters (Table I).
//!
//! Following the paper, the power counter (PPC) is treated as a *direct*
//! feature and always kept; RFE refines the *indirect* features
//! (instruction and stall metrics) by repeatedly retraining the
//! Decision-maker, measuring each feature's permutation importance, and
//! eliminating the weakest until the target count remains.
//!
//! # Parallelism and determinism
//!
//! Elimination rounds are inherently sequential (each round retrains on the
//! survivors of the previous one), but *within* a round two stages fan
//! out, one after the other: the retrain shards its minibatch gradients
//! over a persistent [`TrainPool`], and the per-column
//! permutation-importance evaluations run on
//! [`crate::exec::parallel_map_indexed`]. Both stages draw on the same
//! `opts.jobs` budget and never overlap, so RFE×SGD nesting cannot
//! oversubscribe the host. Every `(column, repeat)` shuffle draws from its
//! own [`splitmix64`]-derived seed inside [`tinynn::column_importance`] and
//! the sharded gradient reduces in fixed index order, so the importance
//! vector — and therefore the selected feature set — is byte-identical to
//! the serial result at any worker count.

use gpu_sim::{CounterCategory, CounterId};
use serde::{Deserialize, Serialize};
use tinynn::{
    accuracy, column_importance, splitmix64, train_classifier_parallel_with, ClassificationData,
    Matrix, Mlp, Normalizer, TrainConfig, TrainPool, TrainScratch,
};

use crate::datagen::DvfsDataset;
use crate::exec;
use crate::features::FeatureSet;
use crate::model::ModelArch;

/// Result of the feature-selection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelection {
    /// The selected feature set (always includes the direct power feature).
    pub selected: FeatureSet,
    /// Elimination order of the rejected candidates (first eliminated
    /// first), as counter names.
    pub eliminated: Vec<String>,
    /// Validation accuracy of a model trained on the full candidate set.
    pub full_accuracy: f64,
    /// Validation accuracy of a model trained on the selected set.
    pub selected_accuracy: f64,
}

/// Tuning knobs for [`select_features_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfeOptions {
    /// Worker threads for both the SGD gradient shards and the per-column
    /// importance fan-out (`0` = one per core). The result is identical at
    /// every worker count.
    pub jobs: usize,
    /// Shuffle repeats averaged per column importance. More repeats cost
    /// proportionally more forward passes but smooth the importance
    /// estimate; the paper-scale runs use 3.
    pub importance_repeats: usize,
}

impl Default for RfeOptions {
    fn default() -> RfeOptions {
        RfeOptions { jobs: 1, importance_repeats: 3 }
    }
}

/// The candidate counters RFE may select from: the *indirect* features
/// (instruction + stall + cache categories). Power is excluded because it
/// is always kept as the direct feature.
pub fn candidate_counters() -> Vec<CounterId> {
    CounterId::ALL.iter().copied().filter(|c| c.category() != CounterCategory::Power).collect()
}

/// A decorrelated seed for one stage of the selection run. Rounds use their
/// round number as the stage; the full-set and selected-set reference
/// trainings use reserved stage ids far above any round count.
fn stage_seed(base: u64, stage: u64) -> u64 {
    splitmix64(base ^ splitmix64(stage))
}

/// Stage id for the full-candidate-set reference training.
const FULL_STAGE: u64 = 1 << 32;
/// Stage id for the final selected-set training.
const SELECTED_STAGE: u64 = (1 << 32) + 1;

fn train_and_score(
    data: &ClassificationData,
    seed: u64,
    config: &TrainConfig,
    pool: &TrainPool,
    scratch: &mut TrainScratch,
) -> (Mlp, Normalizer, ClassificationData, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let norm = Normalizer::fit(&data.x);
    let normalized =
        ClassificationData::new(norm.transform(&data.x), data.y.clone(), data.num_classes);
    let (train, val) = normalized.split(0.25, &mut rng);
    let arch = ModelArch::paper_full();
    let mut sizes = vec![data.x.cols()];
    sizes.extend(&arch.decision_hidden);
    sizes.push(data.num_classes);
    let mut mlp = Mlp::new(&sizes, &mut rng);
    let report =
        train_classifier_parallel_with(&mut mlp, &train, &val, config, None, scratch, pool);
    (mlp, norm, val, report.best_metric)
}

/// Runs RFE on the Decision-maker task, keeping `keep_indirect` indirect
/// features plus the direct PPC feature — reproducing Table I (which keeps
/// four indirect features: IPC, MH, MH\L, L1CRM). Serial, default repeats;
/// see [`select_features_with`] for the tunable version.
///
/// # Panics
///
/// Panics if the dataset is empty or `keep_indirect` is not smaller than
/// the candidate count.
pub fn select_features(
    dataset: &DvfsDataset,
    num_ops: usize,
    keep_indirect: usize,
    config: &TrainConfig,
) -> FeatureSelection {
    select_features_with(dataset, num_ops, keep_indirect, config, &RfeOptions::default())
}

/// [`select_features`] with explicit [`RfeOptions`]: the per-column
/// importance fan-out runs on `opts.jobs` workers and averages
/// `opts.importance_repeats` shuffles per column.
///
/// Per-stage seeds are derived with [`splitmix64`], so the selection is a
/// pure function of `(dataset, num_ops, keep_indirect, config, repeats)` —
/// in particular it does *not* depend on `opts.jobs`. The concrete selected
/// set may legitimately change when the seed-derivation scheme changes
/// (features of similar importance swap places); only the determinism
/// contract is stable.
///
/// # Panics
///
/// Panics if the dataset is empty, `keep_indirect` is not smaller than the
/// candidate count, or `opts.importance_repeats` is zero.
pub fn select_features_with(
    dataset: &DvfsDataset,
    num_ops: usize,
    keep_indirect: usize,
    config: &TrainConfig,
    opts: &RfeOptions,
) -> FeatureSelection {
    let candidates = candidate_counters();
    assert!(keep_indirect < candidates.len(), "keep_indirect must be below the candidate count");
    assert!(opts.importance_repeats > 0, "at least one importance repeat is required");
    let candidate_set = FeatureSet::new(candidates.clone());
    let full_data = dataset.decision_data(&candidate_set, num_ops);
    // One worker team and one scratch serve every retrain of the run. The
    // retrain (pool-parallel SGD) and importance fan-out
    // (`exec::parallel_map_indexed`) are sequential phases, so the two
    // parallel stages share the single `opts.jobs` budget instead of
    // oversubscribing the host.
    let pool = TrainPool::new(opts.jobs);
    let mut scratch = TrainScratch::new();
    let (_, _, _, full_accuracy) = train_and_score(
        &full_data,
        stage_seed(config.seed, FULL_STAGE),
        config,
        &pool,
        &mut scratch,
    );

    let mut active: Vec<usize> = (0..candidates.len()).collect();
    let mut eliminated = Vec::new();
    for round in 0u64.. {
        if active.len() <= keep_indirect {
            break;
        }
        let _span = obs::span!("rfe", "rfe.round#{round}");
        obs::counter!("rfe.rounds").inc(1);
        // Retrain on the active subset (+ the preset column, which always
        // rides along as the last input).
        let mut cols: Vec<usize> = active.clone();
        cols.push(candidates.len()); // the preset column in full_data.x
        let x = full_data.x.select_columns(&cols);
        let data = ClassificationData::new(x, full_data.y.clone(), num_ops);
        let round_seed = stage_seed(config.seed, round);
        let (mlp, _norm, val, _) = train_and_score(&data, round_seed, config, &pool, &mut scratch);
        // Permutation importance on the validation split, one task per
        // *active* column — the preset column (last) is never a removal
        // candidate, so its importance is never computed. Each task derives
        // its own shuffle seeds from `pi_seed`, making the fan-out
        // order-independent.
        let score = |m: &Matrix| accuracy(&mlp.forward(m), &val.y);
        let baseline = score(&val.x);
        let pi_seed = splitmix64(round_seed);
        obs::counter!("rfe.parallel_tasks").inc(active.len() as u64);
        let importance =
            exec::parallel_map_indexed(opts.jobs, (0..active.len()).collect(), |_, col| {
                column_importance(&val.x, score, baseline, col, opts.importance_repeats, pi_seed)
            });
        let weakest = importance
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("active set is non-empty");
        let removed = active.remove(weakest);
        eliminated.push(candidates[removed].name().to_string());
    }

    // Final selected set: surviving indirect features + the direct PPC.
    let mut selected: Vec<CounterId> = active.iter().map(|&i| candidates[i]).collect();
    selected.push(CounterId::PowerTotalW);
    let selected_set = FeatureSet::new(selected);
    let selected_data = dataset.decision_data(&selected_set, num_ops);
    let (_, _, _, selected_accuracy) = train_and_score(
        &selected_data,
        stage_seed(config.seed, SELECTED_STAGE),
        config,
        &pool,
        &mut scratch,
    );

    FeatureSelection { selected: selected_set, eliminated, full_accuracy, selected_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::RawSample;
    use gpu_sim::EpochCounters;

    /// Samples where only IPC and StallMemLoad carry label signal.
    fn signal_dataset(n: usize) -> DvfsDataset {
        let mut samples = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX / 2)
        };
        for i in 0..n {
            let stall = next().min(1.0);
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = 2.0 - 1.8 * stall;
            c[CounterId::StallMemLoad] = stall * 9_000.0;
            // Noise counters.
            c[CounterId::BranchInstrs] = next() * 100.0;
            c[CounterId::SharedAccesses] = next() * 100.0;
            let op = if stall > 0.5 { 0 } else { 5 };
            samples.push(RawSample {
                benchmark: "s".into(),
                cluster: 0,
                breakpoint: i,
                counters: c.clone(),
                scaled_counters: c,
                op_index: op,
                perf_loss: 0.1 * (1.0 - stall),
                instructions: 5_000,
            });
        }
        DvfsDataset { samples, ..DvfsDataset::default() }
    }

    #[test]
    fn candidates_exclude_power() {
        let c = candidate_counters();
        assert!(c.iter().all(|c| c.category() != CounterCategory::Power));
        assert_eq!(c.len(), 40);
    }

    #[test]
    fn selection_keeps_signal_features() {
        let data = signal_dataset(240);
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let sel = select_features(&data, 6, 4, &cfg);
        assert_eq!(sel.selected.len(), 5, "4 indirect + PPC");
        let names = sel.selected.names();
        assert!(names.contains(&"power_total_w"), "PPC always kept");
        assert!(
            names.contains(&"ipc") || names.contains(&"stall_mem_load"),
            "at least one signal feature must survive, got {names:?}"
        );
        assert_eq!(sel.eliminated.len(), 40 - 4);
        assert!((0.0..=1.0).contains(&sel.full_accuracy));
        assert!((0.0..=1.0).contains(&sel.selected_accuracy));
    }

    #[test]
    fn worker_count_never_changes_the_selection() {
        // Cheap configuration: three elimination rounds, two epochs.
        let data = signal_dataset(96);
        let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
        let serial = select_features_with(
            &data,
            6,
            37,
            &cfg,
            &RfeOptions { jobs: 1, importance_repeats: 2 },
        );
        for jobs in [2, 8] {
            let parallel = select_features_with(
                &data,
                6,
                37,
                &cfg,
                &RfeOptions { jobs, importance_repeats: 2 },
            );
            assert_eq!(parallel, serial, "selection diverged at {jobs} workers");
        }
    }
}
