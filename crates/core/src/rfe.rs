//! RFE-based feature selection over the 47 performance counters (Table I).
//!
//! Following the paper, the power counter (PPC) is treated as a *direct*
//! feature and always kept; RFE refines the *indirect* features
//! (instruction and stall metrics) by repeatedly retraining the
//! Decision-maker, measuring each feature's permutation importance, and
//! eliminating the weakest until the target count remains.

use gpu_sim::{CounterCategory, CounterId};
use serde::{Deserialize, Serialize};
use tinynn::{
    accuracy, permutation_importance, train_classifier, ClassificationData, Matrix, Mlp,
    Normalizer, TrainConfig,
};

use crate::datagen::DvfsDataset;
use crate::features::FeatureSet;
use crate::model::ModelArch;

/// Result of the feature-selection experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelection {
    /// The selected feature set (always includes the direct power feature).
    pub selected: FeatureSet,
    /// Elimination order of the rejected candidates (first eliminated
    /// first), as counter names.
    pub eliminated: Vec<String>,
    /// Validation accuracy of a model trained on the full candidate set.
    pub full_accuracy: f64,
    /// Validation accuracy of a model trained on the selected set.
    pub selected_accuracy: f64,
}

/// The candidate counters RFE may select from: the *indirect* features
/// (instruction + stall + cache categories). Power is excluded because it
/// is always kept as the direct feature.
pub fn candidate_counters() -> Vec<CounterId> {
    CounterId::ALL.iter().copied().filter(|c| c.category() != CounterCategory::Power).collect()
}

fn train_and_score(
    data: &ClassificationData,
    seed: u64,
    config: &TrainConfig,
) -> (Mlp, Normalizer, ClassificationData, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let norm = Normalizer::fit(&data.x);
    let normalized =
        ClassificationData::new(norm.transform(&data.x), data.y.clone(), data.num_classes);
    let (train, val) = normalized.split(0.25, &mut rng);
    let arch = ModelArch::paper_full();
    let mut sizes = vec![data.x.cols()];
    sizes.extend(&arch.decision_hidden);
    sizes.push(data.num_classes);
    let mut mlp = Mlp::new(&sizes, &mut rng);
    let report = train_classifier(&mut mlp, &train, &val, config);
    (mlp, norm, val, report.best_metric)
}

/// Runs RFE on the Decision-maker task, keeping `keep_indirect` indirect
/// features plus the direct PPC feature — reproducing Table I (which keeps
/// four indirect features: IPC, MH, MH\L, L1CRM).
///
/// # Panics
///
/// Panics if the dataset is empty or `keep_indirect` is not smaller than
/// the candidate count.
pub fn select_features(
    dataset: &DvfsDataset,
    num_ops: usize,
    keep_indirect: usize,
    config: &TrainConfig,
) -> FeatureSelection {
    let candidates = candidate_counters();
    assert!(keep_indirect < candidates.len(), "keep_indirect must be below the candidate count");
    let candidate_set = FeatureSet::new(candidates.clone());
    let full_data = dataset.decision_data(&candidate_set, num_ops);
    let (_, _, _, full_accuracy) = train_and_score(&full_data, config.seed, config);

    let mut active: Vec<usize> = (0..candidates.len()).collect();
    let mut eliminated = Vec::new();
    while active.len() > keep_indirect {
        // Retrain on the active subset (+ the preset column, which always
        // rides along as the last input).
        let mut cols: Vec<usize> = active.clone();
        cols.push(candidates.len()); // the preset column in full_data.x
        let x = full_data.x.select_columns(&cols);
        let data = ClassificationData::new(x, full_data.y.clone(), num_ops);
        let (mlp, norm, val, _) = train_and_score(&data, config.seed ^ active.len() as u64, config);
        // Permutation importance on the validation split; the preset column
        // (last) is never a removal candidate.
        let score = |m: &Matrix| accuracy(&mlp.forward(m), &val.y);
        let _ = norm; // val is already normalized by train_and_score
        let importance = permutation_importance(&val.x, score, 3, config.seed ^ 0xFE);
        let weakest = importance[..active.len()]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("active set is non-empty");
        let removed = active.remove(weakest);
        eliminated.push(candidates[removed].name().to_string());
    }

    // Final selected set: surviving indirect features + the direct PPC.
    let mut selected: Vec<CounterId> = active.iter().map(|&i| candidates[i]).collect();
    selected.push(CounterId::PowerTotalW);
    let selected_set = FeatureSet::new(selected);
    let selected_data = dataset.decision_data(&selected_set, num_ops);
    let (_, _, _, selected_accuracy) = train_and_score(&selected_data, config.seed ^ 7, config);

    FeatureSelection { selected: selected_set, eliminated, full_accuracy, selected_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::RawSample;
    use gpu_sim::EpochCounters;

    /// Samples where only IPC and StallMemLoad carry label signal.
    fn signal_dataset(n: usize) -> DvfsDataset {
        let mut samples = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX / 2)
        };
        for i in 0..n {
            let stall = next().min(1.0);
            let mut c = EpochCounters::zeroed();
            c[CounterId::Ipc] = 2.0 - 1.8 * stall;
            c[CounterId::StallMemLoad] = stall * 9_000.0;
            // Noise counters.
            c[CounterId::BranchInstrs] = next() * 100.0;
            c[CounterId::SharedAccesses] = next() * 100.0;
            let op = if stall > 0.5 { 0 } else { 5 };
            samples.push(RawSample {
                benchmark: "s".into(),
                cluster: 0,
                breakpoint: i,
                counters: c.clone(),
                scaled_counters: c,
                op_index: op,
                perf_loss: 0.1 * (1.0 - stall),
                instructions: 5_000,
            });
        }
        DvfsDataset { samples, ..DvfsDataset::default() }
    }

    #[test]
    fn candidates_exclude_power() {
        let c = candidate_counters();
        assert!(c.iter().all(|c| c.category() != CounterCategory::Power));
        assert_eq!(c.len(), 40);
    }

    #[test]
    fn selection_keeps_signal_features() {
        let data = signal_dataset(240);
        let cfg = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let sel = select_features(&data, 6, 4, &cfg);
        assert_eq!(sel.selected.len(), 5, "4 indirect + PPC");
        let names = sel.selected.names();
        assert!(names.contains(&"power_total_w"), "PPC always kept");
        assert!(
            names.contains(&"ipc") || names.contains(&"stall_mem_load"),
            "at least one signal feature must survive, got {names:?}"
        );
        assert_eq!(sel.eliminated.len(), 40 - 4);
        assert!((0.0..=1.0).contains(&sel.full_accuracy));
        assert!((0.0..=1.0).contains(&sel.selected_accuracy));
    }
}
