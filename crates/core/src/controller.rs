//! The runtime SSMDVFS governor: per-epoch inference plus the
//! self-calibration loop of Fig. 1.
//!
//! Every 10 µs epoch, per cluster:
//!
//! 1. Compare the instruction count the Calibrator predicted for the epoch
//!    that just ended against the actual count. If the prediction exceeds
//!    reality, the cluster is running slower than the model expected, so the
//!    *effective* preset is tightened (guiding the Decision-maker toward a
//!    faster point); if reality meets the prediction, the effective preset
//!    relaxes back toward the user's original preset.
//! 2. Feed the epoch's counters plus the effective preset to the
//!    Decision-maker to pick the next epoch's operating point.
//! 3. Feed the counters, the *original* preset and the chosen point to the
//!    Calibrator to produce the next prediction.

use gpu_power::VfTable;
use gpu_sim::{AuditRecord, AuditTrail, DvfsGovernor, EpochCounters};
use serde::{Deserialize, Serialize};

use crate::model::CombinedModel;
use crate::plan::{ClusterSlot, DecisionPlan};

/// Tunables of the runtime controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsmdvfsConfig {
    /// The user's performance-loss preset (0.10 = allow 10 % slowdown).
    pub preset: f64,
    /// Whether the Calibrator feedback loop is active (the paper's
    /// with/without-Calibrator ablation).
    pub calibration: bool,
    /// Proportional gain applied to the relative prediction error when
    /// tightening the effective preset.
    pub gain: f64,
    /// Additive recovery applied when the cluster meets its prediction,
    /// relaxing the effective preset back toward `preset`.
    pub recovery: f64,
    /// Lower clamp for the effective preset (0 = "no loss allowed").
    pub min_preset: f64,
    /// Relative prediction-error deadband: shortfalls smaller than this are
    /// treated as calibration noise and do not tighten the preset.
    pub deadband: f64,
    /// Use plain argmax instead of ordinal decoding for the Decision-maker
    /// output (ablation switch; ordinal is the default).
    pub argmax_decode: bool,
}

impl SsmdvfsConfig {
    /// A controller allowing `preset` performance loss with calibration on.
    pub fn new(preset: f64) -> SsmdvfsConfig {
        SsmdvfsConfig {
            preset,
            calibration: true,
            gain: 1.0,
            recovery: 0.10,
            min_preset: 0.005,
            deadband: 0.05,
            argmax_decode: false,
        }
    }

    /// Disables the Calibrator feedback loop.
    pub fn without_calibration(mut self) -> SsmdvfsConfig {
        self.calibration = false;
        self
    }
}

/// The SSMDVFS DVFS governor.
///
/// # Examples
///
/// ```no_run
/// use gpu_sim::{GpuConfig, Simulation, Time};
/// use ssmdvfs::{CombinedModel, SsmdvfsConfig, SsmdvfsGovernor};
///
/// # fn demo(model: CombinedModel, sim: &mut Simulation) {
/// let mut governor = SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10));
/// let result = sim.run(&mut governor, Time::from_micros(2_000.0));
/// println!("EDP: {:.3e}", result.edp_report().edp());
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SsmdvfsGovernor {
    /// The trained model, shared immutably: cloning the governor (one per
    /// evaluated run in the bench sweeps) shares the weights instead of
    /// deep-copying every layer.
    model: std::sync::Arc<CombinedModel>,
    config: SsmdvfsConfig,
    clusters: Vec<ClusterSlot>,
    name: String,
    audit: Option<AuditTrail>,
    /// The compiled fast path: feature extraction, normalization, both
    /// heads, decode and the calibration clamp fused into one flat arena
    /// (see [`DecisionPlan`]), with a per-cluster phase-locality memo.
    plan: DecisionPlan,
}

impl SsmdvfsGovernor {
    /// Creates a governor around a trained model, compiling both heads (and
    /// everything around them) into a fused [`DecisionPlan`] — CSR layer
    /// programs when a head is mostly zeros, dense otherwise.
    pub fn new(
        model: impl Into<std::sync::Arc<CombinedModel>>,
        config: SsmdvfsConfig,
    ) -> SsmdvfsGovernor {
        let model: std::sync::Arc<CombinedModel> = model.into();
        let name = if config.calibration {
            format!("ssmdvfs[{:.0}%]", config.preset * 100.0)
        } else {
            format!("ssmdvfs-nocal[{:.0}%]", config.preset * 100.0)
        };
        let plan = DecisionPlan::compile(&model, &config);
        SsmdvfsGovernor { model, config, clusters: Vec::new(), name, audit: None, plan }
    }

    /// The controller configuration.
    pub fn config(&self) -> &SsmdvfsConfig {
        &self.config
    }

    /// The underlying model.
    pub fn model(&self) -> &CombinedModel {
        &self.model
    }

    /// The compiled decision plan (introspection: engine choice, FLOPs,
    /// memo state).
    pub fn plan(&self) -> &DecisionPlan {
        &self.plan
    }

    /// Mutable access to the compiled plan (e.g. to disable the decision
    /// memo for an uncached benchmark run).
    pub fn plan_mut(&mut self) -> &mut DecisionPlan {
        &mut self.plan
    }

    /// The effective preset currently applied to `cluster` (equals the
    /// original preset until calibration adjusts it).
    pub fn effective_preset(&self, cluster: usize) -> f64 {
        self.clusters.get(cluster).map_or(self.config.preset, |s| s.state.effective_preset)
    }
}

impl DvfsGovernor for SsmdvfsGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        // An empty table is reachable through deserialization (which
        // bypasses `VfTable::new`); the `len() - 1` decode clamps below
        // would underflow on it, so refuse up front with a clear message.
        assert!(
            !table.is_empty(),
            "SsmdvfsGovernor::decide needs a non-empty VfTable; \
             run VfTable::validate() on tables loaded from disk"
        );
        if cluster >= self.clusters.len() {
            let fresh = self.plan.new_slot();
            self.clusters.resize(cluster + 1, fresh);
        }
        // The whole decision — feature extraction, calibration, both heads,
        // decode — runs inside the compiled plan's arena; a warm governor
        // allocates nothing per epoch (audit clones aside).
        let d = self.plan.decide_slot(&mut self.clusters[cluster], counters, table.len());

        if let Some(trail) = self.audit.as_mut() {
            let point = table.point(d.op);
            trail.record(AuditRecord {
                seq: 0, // stamped by the trail
                cluster,
                features: self.plan.features().to_vec(),
                logits: self.plan.logits().to_vec(),
                preset: self.config.preset,
                effective_preset: d.effective_preset,
                // The prediction made *for* the epoch that just ended,
                // paired with the reality it was judged on.
                predicted_instructions: d.prev_predicted,
                actual_instructions: counters.total_instructions(),
                next_predicted_instructions: Some(d.predicted),
                starved: d.starved,
                op_index: d.op,
                freq_mhz: point.freq_mhz(),
                voltage_v: point.voltage_v(),
            });
        }
        d.op
    }

    fn reset(&mut self) {
        self.clusters.clear();
        // The trail is per-run: a reset starts a fresh one at the same
        // capacity, in place, without reallocating the ring.
        if let Some(trail) = self.audit.as_mut() {
            trail.clear();
        }
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new(self.name.clone(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use gpu_sim::CounterId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinynn::{Matrix, Mlp, Normalizer};

    fn identity_normalizer(n: usize) -> Normalizer {
        // Fit on rows with mean 0, std 1 per column.
        let mut lo = vec![0.0f32; n];
        let hi = vec![2.0f32; n];
        for v in &mut lo {
            *v = -2.0;
        }
        Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]))
    }

    fn dummy_model() -> CombinedModel {
        let fs = FeatureSet::refined();
        let mut rng = StdRng::seed_from_u64(9);
        CombinedModel {
            decision: Mlp::new(&[fs.len() + 1, 8, 6], &mut rng),
            calibrator: Mlp::new(&[fs.len() + 2, 8, 1], &mut rng),
            feature_set: fs.clone(),
            decision_norm: identity_normalizer(fs.len() + 1),
            calibrator_norm: identity_normalizer(fs.len() + 2),
            instr_scale: 1_000.0,
            num_ops: 6,
        }
    }

    fn counters_with(instrs: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalInstrs] = instrs;
        c[CounterId::TotalCycles] = 10_000.0;
        c.recompute_derived();
        c
    }

    #[test]
    #[should_panic(expected = "non-empty VfTable")]
    fn empty_deserialized_table_is_rejected_not_underflowed() {
        // Deserialization bypasses `VfTable::new`, so an empty table can
        // reach `decide`; before the up-front check, `table.len() - 1`
        // underflowed usize and panicked with an inscrutable message.
        let empty: VfTable = serde_json::from_str(r#"{"points":[],"default_index":0}"#)
            .expect("an empty table deserializes fine — that is the bug");
        assert!(empty.validate().is_err(), "validate flags what decide refuses");
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &empty);
    }

    #[test]
    fn decisions_are_valid_indices() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        for cluster in 0..3 {
            let idx = gov.decide(cluster, &counters_with(5_000.0), &table);
            assert!(idx < table.len());
        }
    }

    #[test]
    fn calibration_tightens_preset_when_running_slow() {
        let table = VfTable::titan_x();
        let model = dummy_model();
        let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
        // First decision primes a prediction.
        gov.decide(0, &counters_with(8_000.0), &table);
        let predicted = gov.clusters[0].state.predicted_instructions.unwrap();
        assert!(predicted >= 0.0);
        // Report far fewer instructions than predicted: preset must shrink
        // (if the model predicted anything positive).
        if predicted > 0.0 {
            let before = gov.effective_preset(0);
            gov.decide(0, &counters_with(0.0), &table);
            assert!(gov.effective_preset(0) < before);
        }
    }

    #[test]
    fn calibration_recovers_when_meeting_predictions() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        // Force a tightened state, then exceed the prediction.
        gov.clusters[0].state.effective_preset = 0.02;
        gov.clusters[0].state.predicted_instructions = Some(100.0);
        gov.decide(0, &counters_with(1_000_000.0), &table);
        assert!(gov.effective_preset(0) > 0.02);
        assert!(gov.effective_preset(0) <= 0.1 + 1e-12);
    }

    #[test]
    fn no_calibration_keeps_preset_fixed() {
        let table = VfTable::titan_x();
        let mut gov =
            SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1).without_calibration());
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.clusters[0].state.predicted_instructions = Some(1_000_000.0);
        gov.decide(0, &counters_with(1.0), &table);
        assert_eq!(gov.effective_preset(0), 0.1);
        assert!(gov.name().contains("nocal"));
    }

    #[test]
    fn reset_clears_per_run_state() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        assert!(!gov.clusters.is_empty());
        gov.reset();
        assert!(gov.clusters.is_empty());
        assert_eq!(gov.effective_preset(0), 0.1);
    }

    #[test]
    fn audit_trail_pairs_predictions_with_reality() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        assert!(gov.audit_trail().is_none(), "auditing is opt-in");
        gov.enable_audit(16);
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.decide(0, &counters_with(4_000.0), &table);
        let trail = gov.audit_trail().unwrap();
        assert_eq!(trail.len(), 2);
        let recs: Vec<&AuditRecord> = trail.iter().collect();
        // The first epoch had no prior prediction to judge.
        assert_eq!(recs[0].predicted_instructions, None);
        // The second record's "predicted" is exactly what the first
        // decision forecast.
        assert_eq!(recs[1].predicted_instructions, recs[0].next_predicted_instructions);
        assert_eq!(recs[1].actual_instructions, 4_000.0);
        assert_eq!(recs[0].logits.len(), 6);
        assert!(!recs[0].features.is_empty());
        assert!(recs[0].freq_mhz > 0.0);
        // A reset starts a fresh per-run trail at the same capacity.
        gov.reset();
        let trail = gov.audit_trail().unwrap();
        assert!(trail.is_empty());
        assert_eq!(trail.capacity(), 16);
    }

    #[test]
    fn engine_path_matches_model_methods() {
        // The buffered engine path in `decide` must replicate the
        // allocating `CombinedModel` methods exactly: same logits, same
        // decoded op, same instruction prediction.
        let table = VfTable::titan_x();
        let model = dummy_model();
        let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
        gov.enable_audit(4);
        let counters = counters_with(5_000.0);
        let op = gov.decide(0, &counters, &table);
        let features = model.feature_set.extract(&counters);
        // First epoch: no prior prediction, so the effective preset is
        // still the configured preset.
        let logits = model.decision_logits(&features, 0.1);
        let rec: &AuditRecord = gov.audit_trail().unwrap().iter().next().unwrap();
        assert_eq!(rec.features, features);
        assert_eq!(rec.logits, logits);
        assert_eq!(op, model.decode_ordinal(&logits).min(table.len() - 1));
        assert_eq!(
            gov.clusters[0].state.predicted_instructions,
            Some(model.predict_instructions(&features, 0.1, op))
        );
    }

    #[test]
    fn pruned_model_compiles_to_sparse_engine_with_identical_decisions() {
        let table = VfTable::titan_x();
        let mut model = dummy_model();
        tinynn::prune_magnitude(&mut model.decision, 0.8);
        tinynn::prune_magnitude(&mut model.calibrator, 0.8);
        for instrs in [1_000.0, 5_000.0, 9_000.0] {
            let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
            assert!(gov.plan().decision_is_sparse(), "80 % pruned head must go CSR");
            assert!(gov.plan().decision_flops() < model.decision.flops());
            let counters = counters_with(instrs);
            let op = gov.decide(0, &counters, &table);
            let features = model.feature_set.extract(&counters);
            assert_eq!(op, model.decide(&features, 0.1).min(table.len() - 1));
        }
    }

    #[test]
    fn clusters_calibrate_independently() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.decide(1, &counters_with(5_000.0), &table);
        gov.clusters[0].state.predicted_instructions = Some(1_000_000.0);
        gov.decide(0, &counters_with(10.0), &table);
        assert!(gov.effective_preset(0) < 0.1);
        assert_eq!(gov.effective_preset(1), 0.1);
    }
}
