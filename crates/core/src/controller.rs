//! The runtime SSMDVFS governor: per-epoch inference plus the
//! self-calibration loop of Fig. 1.
//!
//! Every 10 µs epoch, per cluster:
//!
//! 1. Compare the instruction count the Calibrator predicted for the epoch
//!    that just ended against the actual count. If the prediction exceeds
//!    reality, the cluster is running slower than the model expected, so the
//!    *effective* preset is tightened (guiding the Decision-maker toward a
//!    faster point); if reality meets the prediction, the effective preset
//!    relaxes back toward the user's original preset.
//! 2. Feed the epoch's counters plus the effective preset to the
//!    Decision-maker to pick the next epoch's operating point.
//! 3. Feed the counters, the *original* preset and the chosen point to the
//!    Calibrator to produce the next prediction.

use gpu_power::VfTable;
use gpu_sim::{AuditRecord, AuditTrail, CounterId, DvfsGovernor, EpochCounters};
use serde::{Deserialize, Serialize};
use tinynn::InferenceNet;

use crate::model::CombinedModel;

/// Tunables of the runtime controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsmdvfsConfig {
    /// The user's performance-loss preset (0.10 = allow 10 % slowdown).
    pub preset: f64,
    /// Whether the Calibrator feedback loop is active (the paper's
    /// with/without-Calibrator ablation).
    pub calibration: bool,
    /// Proportional gain applied to the relative prediction error when
    /// tightening the effective preset.
    pub gain: f64,
    /// Additive recovery applied when the cluster meets its prediction,
    /// relaxing the effective preset back toward `preset`.
    pub recovery: f64,
    /// Lower clamp for the effective preset (0 = "no loss allowed").
    pub min_preset: f64,
    /// Relative prediction-error deadband: shortfalls smaller than this are
    /// treated as calibration noise and do not tighten the preset.
    pub deadband: f64,
    /// Use plain argmax instead of ordinal decoding for the Decision-maker
    /// output (ablation switch; ordinal is the default).
    pub argmax_decode: bool,
}

impl SsmdvfsConfig {
    /// A controller allowing `preset` performance loss with calibration on.
    pub fn new(preset: f64) -> SsmdvfsConfig {
        SsmdvfsConfig {
            preset,
            calibration: true,
            gain: 1.0,
            recovery: 0.10,
            min_preset: 0.005,
            deadband: 0.05,
            argmax_decode: false,
        }
    }

    /// Disables the Calibrator feedback loop.
    pub fn without_calibration(mut self) -> SsmdvfsConfig {
        self.calibration = false;
        self
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusterState {
    effective_preset: f64,
    predicted_instructions: Option<f32>,
    /// Exponentially smoothed relative prediction error; single-epoch
    /// throughput variance (cache bursts, CTA boundaries) must not trigger
    /// calibration, persistent shortfalls must.
    err_ewma: f64,
}

/// The SSMDVFS DVFS governor.
///
/// # Examples
///
/// ```no_run
/// use gpu_sim::{GpuConfig, Simulation, Time};
/// use ssmdvfs::{CombinedModel, SsmdvfsConfig, SsmdvfsGovernor};
///
/// # fn demo(model: CombinedModel, sim: &mut Simulation) {
/// let mut governor = SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10));
/// let result = sim.run(&mut governor, Time::from_micros(2_000.0));
/// println!("EDP: {:.3e}", result.edp_report().edp());
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SsmdvfsGovernor {
    /// The trained model, shared immutably: cloning the governor (one per
    /// evaluated run in the bench sweeps) shares the weights instead of
    /// deep-copying every layer.
    model: std::sync::Arc<CombinedModel>,
    config: SsmdvfsConfig,
    clusters: Vec<ClusterState>,
    name: String,
    audit: Option<AuditTrail>,
    /// Compiled decision head: a dense scratch-buffered engine, or a CSR
    /// one when pruning left the head mostly zeros. Value-equal to
    /// `model.decision.forward_one` either way.
    decision_engine: InferenceNet,
    /// Compiled calibrator head (same contract as `decision_engine`).
    calibrator_engine: InferenceNet,
    /// Reusable per-epoch buffers: the decision happens every 10 µs epoch
    /// on every cluster, so the hot path must not allocate once warm.
    features: Vec<f32>,
    input: Vec<f32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
}

impl SsmdvfsGovernor {
    /// Creates a governor around a trained model, compiling both heads into
    /// inference engines (sparse CSR when the head is mostly zeros, dense
    /// otherwise).
    pub fn new(
        model: impl Into<std::sync::Arc<CombinedModel>>,
        config: SsmdvfsConfig,
    ) -> SsmdvfsGovernor {
        let model: std::sync::Arc<CombinedModel> = model.into();
        let name = if config.calibration {
            format!("ssmdvfs[{:.0}%]", config.preset * 100.0)
        } else {
            format!("ssmdvfs-nocal[{:.0}%]", config.preset * 100.0)
        };
        let decision_engine = InferenceNet::compile(&model.decision);
        let calibrator_engine = InferenceNet::compile(&model.calibrator);
        SsmdvfsGovernor {
            model,
            config,
            clusters: Vec::new(),
            name,
            audit: None,
            decision_engine,
            calibrator_engine,
            features: Vec::new(),
            input: Vec::new(),
            logits: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &SsmdvfsConfig {
        &self.config
    }

    /// The underlying model.
    pub fn model(&self) -> &CombinedModel {
        &self.model
    }

    /// The compiled decision-head engine (introspection: sparsity, FLOPs).
    pub fn decision_engine(&self) -> &InferenceNet {
        &self.decision_engine
    }

    /// The compiled calibrator-head engine.
    pub fn calibrator_engine(&self) -> &InferenceNet {
        &self.calibrator_engine
    }

    /// The effective preset currently applied to `cluster` (equals the
    /// original preset until calibration adjusts it).
    pub fn effective_preset(&self, cluster: usize) -> f64 {
        self.clusters.get(cluster).map_or(self.config.preset, |s| s.effective_preset)
    }

    fn state_mut(&mut self, cluster: usize) -> &mut ClusterState {
        if cluster >= self.clusters.len() {
            self.clusters.resize(
                cluster + 1,
                ClusterState {
                    effective_preset: self.config.preset,
                    predicted_instructions: None,
                    err_ewma: 0.0,
                },
            );
        }
        &mut self.clusters[cluster]
    }
}

impl DvfsGovernor for SsmdvfsGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, cluster: usize, counters: &EpochCounters, table: &VfTable) -> usize {
        // An empty table is reachable through deserialization (which
        // bypasses `VfTable::new`); the `len() - 1` decode clamps below
        // would underflow on it, so refuse up front with a clear message.
        assert!(
            !table.is_empty(),
            "SsmdvfsGovernor::decide needs a non-empty VfTable; \
             run VfTable::validate() on tables loaded from disk"
        );
        self.model.feature_set.extract_into(counters, &mut self.features);
        let preset = self.config.preset;
        // The prediction made *for* the epoch that just ended; captured
        // before this call's own prediction overwrites it, so the audit
        // trail pairs each prediction with the reality it was judged on.
        let prev_predicted = self.clusters.get(cluster).and_then(|s| s.predicted_instructions);
        let (gain, recovery, min_preset, deadband, calibration) = (
            self.config.gain,
            self.config.recovery,
            self.config.min_preset,
            self.config.deadband,
            self.config.calibration,
        );

        // Epochs dominated by empty-pipeline stalls (the cluster ran out of
        // work, e.g. at a kernel boundary) are excluded from calibration: an
        // instruction shortfall there signals missing work, not a slow clock.
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let starved = counters[CounterId::StallEmpty] / cycles > 0.2;

        let state = self.state_mut(cluster);
        // Self-calibration on the epoch that just ended.
        if calibration && !starved {
            if let Some(predicted) = state.predicted_instructions {
                let actual = counters.total_instructions() as f32;
                if predicted > 0.0 {
                    let rel_err = f64::from((predicted - actual) / predicted);
                    state.err_ewma = 0.7 * state.err_ewma + 0.3 * rel_err;
                    if state.err_ewma > deadband {
                        // Persistently slower than the preset expectation:
                        // tighten the effective preset.
                        state.effective_preset = (state.effective_preset
                            - gain * (state.err_ewma - deadband) * preset)
                            .max(min_preset);
                    } else {
                        // On or ahead of expectation: relax toward the
                        // original preset.
                        state.effective_preset =
                            (state.effective_preset + recovery * preset).min(preset);
                    }
                }
            }
        }
        let effective_preset = state.effective_preset;
        let effective = effective_preset as f32;

        // One forward pass through the compiled decision engine yields both
        // the decision and the logits the audit trail records. The engine
        // path mirrors `CombinedModel::decision_logits` exactly — assemble
        // `[features..., effective preset]`, normalize, infer — but through
        // reusable buffers, so a warm governor allocates nothing per epoch
        // (audit clones aside).
        self.input.clear();
        self.input.extend_from_slice(&self.features);
        self.input.push(effective);
        self.model.decision_norm.transform_one(&mut self.input);
        let out = self.decision_engine.infer(&self.input);
        self.logits.clear();
        self.logits.extend_from_slice(out);
        let op = if self.config.argmax_decode {
            tinynn::argmax(&self.logits).min(table.len() - 1)
        } else {
            self.probs.clear();
            self.probs.extend_from_slice(&self.logits);
            self.model.decode_ordinal_in_place(&mut self.probs).min(table.len() - 1)
        };
        // The Calibrator always sees the original preset; this mirrors
        // `CombinedModel::predict_instructions` through the compiled engine.
        self.input.clear();
        self.input.extend_from_slice(&self.features);
        self.input.push(preset as f32);
        self.input.push(op as f32 / (self.model.num_ops.max(2) - 1) as f32);
        self.model.calibrator_norm.transform_one(&mut self.input);
        let out = self.calibrator_engine.infer(&self.input);
        let predicted = (out[0] * self.model.instr_scale).max(0.0);
        self.state_mut(cluster).predicted_instructions = Some(predicted);

        if let Some(trail) = self.audit.as_mut() {
            let point = table.point(op);
            trail.record(AuditRecord {
                seq: 0, // stamped by the trail
                cluster,
                features: self.features.clone(),
                logits: self.logits.clone(),
                preset,
                effective_preset,
                predicted_instructions: prev_predicted,
                actual_instructions: counters.total_instructions(),
                next_predicted_instructions: Some(predicted),
                starved,
                op_index: op,
                freq_mhz: point.freq_mhz(),
                voltage_v: point.voltage_v(),
            });
        }
        op
    }

    fn reset(&mut self) {
        self.clusters.clear();
        // The trail is per-run: a reset starts a fresh one at the same
        // capacity, in place, without reallocating the ring.
        if let Some(trail) = self.audit.as_mut() {
            trail.clear();
        }
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.audit = Some(AuditTrail::new(self.name.clone(), capacity));
    }

    fn audit_trail(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use gpu_sim::CounterId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinynn::{Matrix, Mlp, Normalizer};

    fn identity_normalizer(n: usize) -> Normalizer {
        // Fit on rows with mean 0, std 1 per column.
        let mut lo = vec![0.0f32; n];
        let hi = vec![2.0f32; n];
        for v in &mut lo {
            *v = -2.0;
        }
        Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]))
    }

    fn dummy_model() -> CombinedModel {
        let fs = FeatureSet::refined();
        let mut rng = StdRng::seed_from_u64(9);
        CombinedModel {
            decision: Mlp::new(&[fs.len() + 1, 8, 6], &mut rng),
            calibrator: Mlp::new(&[fs.len() + 2, 8, 1], &mut rng),
            feature_set: fs.clone(),
            decision_norm: identity_normalizer(fs.len() + 1),
            calibrator_norm: identity_normalizer(fs.len() + 2),
            instr_scale: 1_000.0,
            num_ops: 6,
        }
    }

    fn counters_with(instrs: f64) -> EpochCounters {
        let mut c = EpochCounters::zeroed();
        c[CounterId::TotalInstrs] = instrs;
        c[CounterId::TotalCycles] = 10_000.0;
        c.recompute_derived();
        c
    }

    #[test]
    #[should_panic(expected = "non-empty VfTable")]
    fn empty_deserialized_table_is_rejected_not_underflowed() {
        // Deserialization bypasses `VfTable::new`, so an empty table can
        // reach `decide`; before the up-front check, `table.len() - 1`
        // underflowed usize and panicked with an inscrutable message.
        let empty: VfTable = serde_json::from_str(r#"{"points":[],"default_index":0}"#)
            .expect("an empty table deserializes fine — that is the bug");
        assert!(empty.validate().is_err(), "validate flags what decide refuses");
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &empty);
    }

    #[test]
    fn decisions_are_valid_indices() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        for cluster in 0..3 {
            let idx = gov.decide(cluster, &counters_with(5_000.0), &table);
            assert!(idx < table.len());
        }
    }

    #[test]
    fn calibration_tightens_preset_when_running_slow() {
        let table = VfTable::titan_x();
        let model = dummy_model();
        let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
        // First decision primes a prediction.
        gov.decide(0, &counters_with(8_000.0), &table);
        let predicted = gov.clusters[0].predicted_instructions.unwrap();
        assert!(predicted >= 0.0);
        // Report far fewer instructions than predicted: preset must shrink
        // (if the model predicted anything positive).
        if predicted > 0.0 {
            let before = gov.effective_preset(0);
            gov.decide(0, &counters_with(0.0), &table);
            assert!(gov.effective_preset(0) < before);
        }
    }

    #[test]
    fn calibration_recovers_when_meeting_predictions() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        // Force a tightened state, then exceed the prediction.
        gov.clusters[0].effective_preset = 0.02;
        gov.clusters[0].predicted_instructions = Some(100.0);
        gov.decide(0, &counters_with(1_000_000.0), &table);
        assert!(gov.effective_preset(0) > 0.02);
        assert!(gov.effective_preset(0) <= 0.1 + 1e-12);
    }

    #[test]
    fn no_calibration_keeps_preset_fixed() {
        let table = VfTable::titan_x();
        let mut gov =
            SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1).without_calibration());
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.clusters[0].predicted_instructions = Some(1_000_000.0);
        gov.decide(0, &counters_with(1.0), &table);
        assert_eq!(gov.effective_preset(0), 0.1);
        assert!(gov.name().contains("nocal"));
    }

    #[test]
    fn reset_clears_per_run_state() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        assert!(!gov.clusters.is_empty());
        gov.reset();
        assert!(gov.clusters.is_empty());
        assert_eq!(gov.effective_preset(0), 0.1);
    }

    #[test]
    fn audit_trail_pairs_predictions_with_reality() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        assert!(gov.audit_trail().is_none(), "auditing is opt-in");
        gov.enable_audit(16);
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.decide(0, &counters_with(4_000.0), &table);
        let trail = gov.audit_trail().unwrap();
        assert_eq!(trail.len(), 2);
        let recs: Vec<&AuditRecord> = trail.iter().collect();
        // The first epoch had no prior prediction to judge.
        assert_eq!(recs[0].predicted_instructions, None);
        // The second record's "predicted" is exactly what the first
        // decision forecast.
        assert_eq!(recs[1].predicted_instructions, recs[0].next_predicted_instructions);
        assert_eq!(recs[1].actual_instructions, 4_000.0);
        assert_eq!(recs[0].logits.len(), 6);
        assert!(!recs[0].features.is_empty());
        assert!(recs[0].freq_mhz > 0.0);
        // A reset starts a fresh per-run trail at the same capacity.
        gov.reset();
        let trail = gov.audit_trail().unwrap();
        assert!(trail.is_empty());
        assert_eq!(trail.capacity(), 16);
    }

    #[test]
    fn engine_path_matches_model_methods() {
        // The buffered engine path in `decide` must replicate the
        // allocating `CombinedModel` methods exactly: same logits, same
        // decoded op, same instruction prediction.
        let table = VfTable::titan_x();
        let model = dummy_model();
        let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
        gov.enable_audit(4);
        let counters = counters_with(5_000.0);
        let op = gov.decide(0, &counters, &table);
        let features = model.feature_set.extract(&counters);
        // First epoch: no prior prediction, so the effective preset is
        // still the configured preset.
        let logits = model.decision_logits(&features, 0.1);
        let rec: &AuditRecord = gov.audit_trail().unwrap().iter().next().unwrap();
        assert_eq!(rec.features, features);
        assert_eq!(rec.logits, logits);
        assert_eq!(op, model.decode_ordinal(&logits).min(table.len() - 1));
        assert_eq!(
            gov.clusters[0].predicted_instructions,
            Some(model.predict_instructions(&features, 0.1, op))
        );
    }

    #[test]
    fn pruned_model_compiles_to_sparse_engine_with_identical_decisions() {
        let table = VfTable::titan_x();
        let mut model = dummy_model();
        tinynn::prune_magnitude(&mut model.decision, 0.8);
        tinynn::prune_magnitude(&mut model.calibrator, 0.8);
        for instrs in [1_000.0, 5_000.0, 9_000.0] {
            let mut gov = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.1));
            assert!(gov.decision_engine().is_sparse(), "80 % pruned head must go CSR");
            assert!(gov.decision_engine().flops() < model.decision.flops());
            let counters = counters_with(instrs);
            let op = gov.decide(0, &counters, &table);
            let features = model.feature_set.extract(&counters);
            assert_eq!(op, model.decide(&features, 0.1).min(table.len() - 1));
        }
    }

    #[test]
    fn clusters_calibrate_independently() {
        let table = VfTable::titan_x();
        let mut gov = SsmdvfsGovernor::new(dummy_model(), SsmdvfsConfig::new(0.1));
        gov.decide(0, &counters_with(5_000.0), &table);
        gov.decide(1, &counters_with(5_000.0), &table);
        gov.clusters[0].predicted_instructions = Some(1_000_000.0);
        gov.decide(0, &counters_with(10.0), &table);
        assert!(gov.effective_preset(0) < 0.1);
        assert_eq!(gov.effective_preset(1), 0.1);
    }
}
