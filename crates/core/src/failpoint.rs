//! Deterministic fail-point-style fault injection (no external deps).
//!
//! A fail point is a named site in the pipeline (e.g. `"datagen.replay"`)
//! that can be armed to panic on specific work-unit keys, a bounded number
//! of times. Arming happens either programmatically ([`arm`], for tests) or
//! through the `SSMDVFS_FAILPOINTS` environment variable (for the CI smoke
//! test and manual fault drills):
//!
//! ```text
//! SSMDVFS_FAILPOINTS="datagen.replay=3,datagen.replay=7x2"
//! ```
//!
//! arms `datagen.replay` to panic once when it is hit with key 3 and twice
//! with key 7. Keys are whatever the site passes to [`hit`] — for the
//! datagen pool it is the global job index, which is deterministic for a
//! given suite, so an injected fault reproduces exactly.
//!
//! Disarmed sites cost two atomic loads per hit (registry init check plus
//! the armed flag), so the hooks stay in release builds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Fast path: skip the registry lock entirely while nothing is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<(String, usize), usize>> {
    static REGISTRY: OnceLock<Mutex<HashMap<(String, usize), usize>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("SSMDVFS_FAILPOINTS") {
            for (site, key, times) in parse_spec(&spec) {
                map.insert((site, key), times);
            }
        }
        if !map.is_empty() {
            ANY_ARMED.store(true, Ordering::Relaxed);
        }
        Mutex::new(map)
    })
}

/// Parses a `site=key[xN]` comma-separated spec, ignoring malformed terms
/// (fault injection must never take down a run by itself).
fn parse_spec(spec: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for term in spec.split(',') {
        let term = term.trim();
        if term.is_empty() {
            continue;
        }
        let Some((site, rest)) = term.split_once('=') else { continue };
        let (key_str, times_str) = match rest.split_once('x') {
            Some((k, n)) => (k, n),
            None => (rest, "1"),
        };
        let (Ok(key), Ok(times)) = (key_str.parse::<usize>(), times_str.parse::<usize>()) else {
            continue;
        };
        if times > 0 {
            out.push((site.to_string(), key, times));
        }
    }
    out
}

/// Arms `site` to panic the next `times` times it is hit with `key`.
pub fn arm(site: &str, key: usize, times: usize) {
    if times == 0 {
        return;
    }
    let mut map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.insert((site.to_string(), key), times);
    ANY_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms every fail point (tests call this in teardown).
pub fn disarm_all() {
    let mut map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    map.clear();
    ANY_ARMED.store(false, Ordering::Relaxed);
}

/// Whether any fail point is currently armed.
pub fn any_armed() -> bool {
    ANY_ARMED.load(Ordering::Relaxed)
}

/// The injection hook: panics iff `site` is armed for `key`, consuming one
/// of its remaining triggers. Call this at the top of a work unit.
pub fn hit(site: &str, key: usize) {
    // Force the registry (and thus the `SSMDVFS_FAILPOINTS` env spec) to
    // load on the first hit: processes that only arm through the
    // environment never call `arm`, so the flag alone cannot be trusted
    // before initialization. After the first call this is one atomic
    // acquire load.
    registry();
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = {
        let mut map = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get_mut(&(site.to_string(), key)) {
            Some(remaining) => {
                *remaining -= 1;
                if *remaining == 0 {
                    map.remove(&(site.to_string(), key));
                    if map.is_empty() {
                        ANY_ARMED.store(false, Ordering::Relaxed);
                    }
                }
                true
            }
            None => false,
        }
    };
    if fire {
        panic!("failpoint {site}#{key} triggered");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_accepts_counts_and_skips_garbage() {
        let parsed = parse_spec("a=1, b=2x3 ,junk, c=x, d=4x0, e=5x1");
        assert_eq!(
            parsed,
            vec![("a".to_string(), 1, 1), ("b".to_string(), 2, 3), ("e".to_string(), 5, 1)]
        );
        assert!(parse_spec("").is_empty());
    }
}
