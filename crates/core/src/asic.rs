//! Hardware cost model of the SSMDVFS inference module (Section V-D).
//!
//! The paper implements the compressed model as a 65 nm TSMC ASIC and scales
//! the results to 28 nm with DeepScaleTool, reporting 192 cycles per
//! inference (0.16 µs at 1165 MHz), 0.0080 mm² and 0.0025 W. We reproduce
//! those numbers analytically: the MAC schedule determines cycles, and
//! published per-operation energy/area constants at 65 nm — scaled with
//! [`TechScaler`] — determine area and power.

use gpu_power::TechScaler;
use serde::{Deserialize, Serialize};

use crate::model::CombinedModel;

/// Parameters of the inference ASIC at the synthesis node (65 nm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicConfig {
    /// FP32 MAC units operating in parallel.
    pub mac_units: usize,
    /// Pipeline fill/drain overhead per layer, in cycles.
    pub layer_overhead_cycles: u64,
    /// Energy per FP32 MAC at 65 nm, in picojoules.
    pub e_mac_pj: f64,
    /// Energy per weight fetched from local SRAM at 65 nm, in picojoules.
    pub e_sram_pj: f64,
    /// Leakage power of the module at 65 nm, in milliwatts.
    pub leakage_mw: f64,
    /// Area of one FP32 MAC at 65 nm, in mm².
    pub mac_area_mm2: f64,
    /// SRAM area per stored weight byte at 65 nm, in mm².
    pub sram_area_per_byte_mm2: f64,
    /// Fixed control/IO area at 65 nm, in mm².
    pub control_area_mm2: f64,
    /// Bytes of SRAM per stored weight (4 for FP32, 1 for INT8).
    pub bytes_per_weight: u64,
}

impl AsicConfig {
    /// Constants representative of a small FP32 MAC datapath in 65 nm TSMC.
    pub fn tsmc65() -> AsicConfig {
        AsicConfig {
            mac_units: 1,
            layer_overhead_cycles: 4,
            e_mac_pj: 6.0,
            e_sram_pj: 2.5,
            leakage_mw: 0.3,
            mac_area_mm2: 0.012,
            sram_area_per_byte_mm2: 1.2e-5,
            control_area_mm2: 0.004,
            bytes_per_weight: 4,
        }
    }

    /// An INT8 variant of the datapath (extension; the paper's module is
    /// FP32): multipliers are ~5x smaller and cheaper, weights store in a
    /// quarter of the SRAM.
    pub fn tsmc65_int8() -> AsicConfig {
        AsicConfig {
            e_mac_pj: 1.2,
            e_sram_pj: 0.8,
            mac_area_mm2: 0.0025,
            bytes_per_weight: 1,
            ..AsicConfig::tsmc65()
        }
    }
}

impl Default for AsicConfig {
    fn default() -> AsicConfig {
        AsicConfig::tsmc65()
    }
}

/// The synthesized-module report (the quantities of Section V-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicReport {
    /// Clock cycles per combined (decision + calibrator) inference.
    pub cycles_per_inference: u64,
    /// Inference latency in microseconds at the given clock.
    pub latency_us: f64,
    /// Fraction of one DVFS epoch spent on inference.
    pub epoch_fraction: f64,
    /// Module area at 65 nm, in mm².
    pub area_65nm_mm2: f64,
    /// Module area scaled to 28 nm, in mm².
    pub area_28nm_mm2: f64,
    /// Average power during inference at 28 nm, in watts.
    pub power_w: f64,
    /// Energy per inference at 28 nm, in joules.
    pub energy_per_inference_j: f64,
}

/// Estimates the inference module's cycles, area and power for a model.
///
/// `freq_mhz` is the module clock (the paper uses the GPU's default
/// 1165 MHz) and `epoch_us` the DVFS period (10 µs).
///
/// # Panics
///
/// Panics if `freq_mhz` or `epoch_us` is not positive.
///
/// # Examples
///
/// ```no_run
/// use ssmdvfs::{estimate_asic, AsicConfig, CombinedModel};
///
/// # fn demo(model: &CombinedModel) {
/// let report = estimate_asic(model, &AsicConfig::tsmc65(), 1165.0, 10.0);
/// println!("{} cycles, {:.4} mm² @28nm", report.cycles_per_inference, report.area_28nm_mm2);
/// # }
/// ```
pub fn estimate_asic(
    model: &CombinedModel,
    config: &AsicConfig,
    freq_mhz: f64,
    epoch_us: f64,
) -> AsicReport {
    assert!(freq_mhz > 0.0, "clock frequency must be positive");
    assert!(epoch_us > 0.0, "epoch length must be positive");

    // One MAC per non-zero weight; biases and activations ride in the
    // layer overhead.
    let macs = (model.sparse_flops() / 2).max(1);
    let layers = (model.decision.layers().len() + model.calibrator.layers().len()) as u64;
    let cycles = macs.div_ceil(config.mac_units as u64) + layers * config.layer_overhead_cycles;

    let latency_us = cycles as f64 / freq_mhz; // cycles / (MHz) = µs
    let epoch_fraction = latency_us / epoch_us;

    let weight_bytes = (model.decision.nonzero_weights() + model.calibrator.nonzero_weights())
        * config.bytes_per_weight;
    let area_65 = config.mac_area_mm2 * config.mac_units as f64
        + config.sram_area_per_byte_mm2 * weight_bytes as f64
        + config.control_area_mm2;

    let scaler = TechScaler::tsmc65_to_28();
    let area_28 = scaler.scale_area_mm2(area_65);

    // Energy at 65 nm, scaled to 28 nm.
    let e_dynamic_65_pj = macs as f64 * (config.e_mac_pj + config.e_sram_pj);
    let e_dynamic_28 = scaler.scale_energy(e_dynamic_65_pj) * 1e-12;
    let leakage_28_w = scaler.scale_energy(config.leakage_mw * 1e-3);
    let energy = e_dynamic_28 + leakage_28_w * latency_us * 1e-6;
    let power_w = energy / (latency_us * 1e-6);

    AsicReport {
        cycles_per_inference: cycles,
        latency_us,
        epoch_fraction,
        area_65nm_mm2: area_65,
        area_28nm_mm2: area_28,
        power_w,
        energy_per_inference_j: energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinynn::{Matrix, Mlp, Normalizer};

    fn model_with_sparse_flops() -> CombinedModel {
        let fs = FeatureSet::refined();
        let mut rng = StdRng::seed_from_u64(1);
        let mut decision = Mlp::new(&[fs.len() + 1, 12, 10, 6], &mut rng);
        let calibrator = Mlp::new(&[fs.len() + 2, 11, 1], &mut rng);
        // Sparsify the decision head to imitate the pruned model.
        tinynn::prune_magnitude(&mut decision, 0.5);
        let n1 = Normalizer::fit(&Matrix::zeros(2, fs.len() + 1));
        let n2 = Normalizer::fit(&Matrix::zeros(2, fs.len() + 2));
        CombinedModel {
            decision,
            calibrator,
            feature_set: fs,
            decision_norm: n1,
            calibrator_norm: n2,
            instr_scale: 1_000.0,
            num_ops: 6,
        }
    }

    #[test]
    fn report_is_in_the_papers_ballpark() {
        let model = model_with_sparse_flops();
        let r = estimate_asic(&model, &AsicConfig::tsmc65(), 1165.0, 10.0);
        // Paper: 192 cycles, 0.16 µs, 0.0080 mm², 0.0025 W. Same order of
        // magnitude is the bar here.
        assert!((50..1_000).contains(&r.cycles_per_inference), "{} cycles", r.cycles_per_inference);
        assert!(r.latency_us < 1.0);
        assert!(r.epoch_fraction < 0.1, "inference must be a small epoch fraction");
        assert!(r.area_28nm_mm2 < 0.05, "area {:.4} mm²", r.area_28nm_mm2);
        assert!(r.power_w < 0.05, "power {:.4} W", r.power_w);
    }

    #[test]
    fn int8_variant_is_smaller_and_cheaper() {
        let model = model_with_sparse_flops();
        let fp32 = estimate_asic(&model, &AsicConfig::tsmc65(), 1165.0, 10.0);
        let int8 = estimate_asic(&model, &AsicConfig::tsmc65_int8(), 1165.0, 10.0);
        assert!(int8.area_28nm_mm2 < fp32.area_28nm_mm2);
        assert!(int8.energy_per_inference_j < fp32.energy_per_inference_j);
        assert_eq!(int8.cycles_per_inference, fp32.cycles_per_inference);
    }

    #[test]
    fn more_mac_units_reduce_cycles() {
        let model = model_with_sparse_flops();
        let one = estimate_asic(&model, &AsicConfig::tsmc65(), 1165.0, 10.0);
        let four = estimate_asic(
            &model,
            &AsicConfig { mac_units: 4, ..AsicConfig::tsmc65() },
            1165.0,
            10.0,
        );
        assert!(four.cycles_per_inference < one.cycles_per_inference);
        assert!(four.area_65nm_mm2 > one.area_65nm_mm2);
    }

    #[test]
    fn scaling_shrinks_area() {
        let model = model_with_sparse_flops();
        let r = estimate_asic(&model, &AsicConfig::tsmc65(), 1165.0, 10.0);
        assert!(r.area_28nm_mm2 < r.area_65nm_mm2);
    }

    #[test]
    fn latency_tracks_frequency() {
        let model = model_with_sparse_flops();
        let fast = estimate_asic(&model, &AsicConfig::tsmc65(), 1165.0, 10.0);
        let slow = estimate_asic(&model, &AsicConfig::tsmc65(), 683.0, 10.0);
        assert!(slow.latency_us > fast.latency_us);
        assert_eq!(slow.cycles_per_inference, fast.cycles_per_inference);
    }
}
