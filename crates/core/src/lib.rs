//! SSMDVFS: a supervised and self-calibrated machine-learning framework for
//! microsecond-scale GPU voltage and frequency scaling.
//!
//! This crate is the paper's primary contribution, built on the workspace
//! substrates ([`gpu_sim`], [`gpu_power`], [`gpu_workloads`], [`tinynn`]).
//! It implements the full end-to-end pipeline of Fig. 2:
//!
//! 1. **Data generation** ([`generate`]) — breakpoints every ~100 µs, a
//!    10 µs feature-collection window, a 10 µs frequency-scaling window
//!    replayed at every operating point, and measured performance-loss
//!    labels.
//! 2. **Feature selection** ([`select_features`], [`FeatureSet`]) — RFE over the 47
//!    counters down to the Table I set (IPC, PPC, MH, MH\L, L1CRM).
//! 3. **Model training** ([`train_combined`], [`CombinedModel`]) — the
//!    combined Decision-maker (classifier over the six V/f points) and
//!    Calibrator (next-epoch instruction-count regressor).
//! 4. **Compression** ([`compress_and_finetune`]) — the layer-wise sweep and two-stage
//!    pruning of Fig. 3 / Table II.
//! 5. **Runtime control** ([`SsmdvfsGovernor`]) — per-epoch inference with
//!    the self-calibrating preset feedback loop of Fig. 1.
//! 6. **Hardware cost** ([`estimate_asic`]) — the Section V-D ASIC module
//!    estimate (cycles/area/power at 28 nm).
//!
//! # Examples
//!
//! End-to-end, on a scaled-down configuration:
//!
//! ```
//! use gpu_sim::{GpuConfig, Simulation, Time};
//! use ssmdvfs::{
//!     generate, train_combined, DataGenConfig, FeatureSet, ModelArch, SsmdvfsConfig,
//!     SsmdvfsGovernor,
//! };
//! use tinynn::TrainConfig;
//!
//! let cfg = GpuConfig::small_test();
//! let bench = gpu_workloads::by_name("sgemm").unwrap().scaled(0.05);
//! let dg = DataGenConfig::default();
//! let data = generate(&bench, &cfg, &dg);
//! let train_cfg = TrainConfig { epochs: 5, ..TrainConfig::default() };
//! let (model, _) = train_combined(
//!     &data,
//!     &FeatureSet::refined(),
//!     &ModelArch::paper_compressed(),
//!     cfg.vf_table.len(),
//!     &train_cfg,
//!     0.25,
//! );
//! let mut governor = SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10));
//! let mut sim = Simulation::new(cfg, bench.into_workload());
//! let result = sim.run(&mut governor, Time::from_micros(3_000.0));
//! assert!(result.completed);
//! ```

#![warn(missing_docs)]

mod asic;
pub mod checkpoint;
mod compress;
mod controller;
mod datagen;
mod error;
pub mod exec;
pub mod failpoint;
mod features;
mod model;
pub mod plan;
mod replay_cache;
mod rfe;
pub mod serve;
mod train;

pub use asic::{estimate_asic, AsicConfig, AsicReport};
pub use compress::{
    compress_and_finetune, compress_and_finetune_jobs, compress_and_finetune_prepared,
    compress_model, layerwise_sweep, layerwise_sweep_jobs, pruning_sweep, pruning_sweep_jobs,
    quantize_model, CompressionPoint, FinetuneSplits,
};
pub use controller::{SsmdvfsConfig, SsmdvfsGovernor};
pub use datagen::{
    generate, generate_suite, generate_suite_with, generate_with_jobs, generate_workload,
    generate_workload_jobs, DataGenConfig, DvfsDataset, LabelingMode, RawSample, SuiteOptions,
    SuiteOutcome, DECISION_PRESET_GRID,
};
pub use error::{Artifact, IoOp, SsmdvfsError};
pub use features::FeatureSet;
pub use model::{CombinedModel, ModelArch};
pub use plan::{ClusterSlot, DecisionPlan, PlanDecision};
pub use replay_cache::{fingerprint, ReplayCache};
pub use rfe::{
    candidate_counters, select_features, select_features_with, FeatureSelection, RfeOptions,
};
pub use serve::{
    Decision, DecisionClient, DecisionRequest, DecisionService, PendingDecision, ServeConfig,
    ServeStats,
};
pub use train::{
    evaluate, train_combined, train_combined_jobs, train_prepared, PreparedSplits, TrainSummary,
    INSTR_SCALE,
};
