//! Shared work-stealing execution pool for embarrassingly parallel jobs.
//!
//! Data generation replays hundreds of independent millisecond-scale
//! simulation jobs ([`crate::generate_workload`]), and the benchmark runner
//! fans governor comparisons out across benchmarks. Both funnel through
//! [`parallel_map_indexed`]: jobs are distributed round-robin into
//! per-worker deques, workers drain their own deque LIFO and steal FIFO
//! from the global injector or from peers when they run dry, and every
//! result is written into a pre-sized, disjoint output slot so no lock is
//! held around result collection. Output order always matches input order,
//! which is what makes parallel data generation byte-identical to the
//! sequential path.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Resolves a requested worker count: `0` means "one per available core".
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// Write-only view of the output vector handing each job its own slot.
///
/// Safety rests on index uniqueness: every job index is enqueued exactly
/// once, so no two threads ever write the same slot.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    /// # Safety
    ///
    /// `index` must be in bounds and claimed by exactly one caller.
    unsafe fn write(&self, index: usize, value: R) {
        unsafe { *self.ptr.add(index) = Some(value) };
    }
}

fn find_task<T>(local: &Worker<T>, injector: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal() {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in stealers {
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Maps `f` over `items` on up to `jobs` worker threads (`0` = one per
/// core), passing each item's input index alongside it. Results come back
/// in input order regardless of which worker ran which item.
///
/// Tasks never spawn sub-tasks, so once every deque and the injector are
/// observed empty a worker can safely retire.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn parallel_map_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let slots = SlotWriter { ptr: results.as_mut_ptr() };

    let injector: Injector<(usize, T)> = Injector::new();
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    for (i, item) in items.into_iter().enumerate() {
        locals[i % workers].push((i, item));
    }

    crossbeam::scope(|scope| {
        for local in locals {
            let stealers = &stealers;
            let injector = &injector;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                while let Some((i, item)) = find_task(&local, injector, stealers) {
                    let r = f(i, item);
                    // SAFETY: each index was enqueued exactly once.
                    unsafe { slots.write(i, r) };
                }
            });
        }
    })
    .expect("worker threads must not panic");

    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Borrowing convenience over [`parallel_map_indexed`] for callers that
/// only need `&T`.
pub fn parallel_map_ref<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(jobs, (0..items.len()).collect(), |_, i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_indexed(4, (0..257).collect::<Vec<u64>>(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_ref(8, &vec![1usize; 100], |&x| {
            counter.fetch_add(x, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sequential_fallbacks_match_parallel() {
        let items: Vec<usize> = (0..40).collect();
        let seq = parallel_map_indexed(1, items.clone(), |i, x| i + x);
        let par = parallel_map_indexed(0, items, |i, x| i + x);
        assert_eq!(seq, par);
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = parallel_map_indexed(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(4, vec![9u8], |i, x| x + i as u8);
        assert_eq!(one, vec![9]);
    }
}
