//! Shared work-stealing execution pool for embarrassingly parallel jobs.
//!
//! Data generation replays hundreds of independent millisecond-scale
//! simulation jobs ([`crate::generate_workload`]), and the benchmark runner
//! fans governor comparisons out across benchmarks. Both funnel through
//! [`parallel_map_indexed`]: jobs are distributed round-robin into
//! per-worker deques, workers drain their own deque LIFO and steal FIFO
//! from the global injector or from peers when they run dry, and every
//! result is written into a pre-sized, disjoint output slot so no lock is
//! held around result collection. Output order always matches input order,
//! which is what makes parallel data generation byte-identical to the
//! sequential path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Resolves a requested worker count: `0` means "one per available core".
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// Write-only view of the output vector handing each job its own slot.
///
/// Safety rests on index uniqueness: every job index is enqueued exactly
/// once, so no two threads ever write the same slot.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    /// # Safety
    ///
    /// `index` must be in bounds and claimed by exactly one caller.
    unsafe fn write(&self, index: usize, value: R) {
        unsafe { *self.ptr.add(index) = Some(value) };
    }
}

/// Finds the next task; the flag reports whether it was stolen (from the
/// injector or a peer) rather than popped from the worker's own deque.
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<(T, bool)> {
    if let Some(task) = local.pop() {
        return Some((task, false));
    }
    loop {
        match injector.steal() {
            Steal::Success(task) => return Some((task, true)),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in stealers {
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some((task, true)),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Maps `f` over `items` on up to `jobs` worker threads (`0` = one per
/// core), passing each item's input index alongside it. Results come back
/// in input order regardless of which worker ran which item.
///
/// Tasks never spawn sub-tasks, so once every deque and the injector are
/// observed empty a worker can safely retire.
///
/// # Panics
///
/// Propagates a panic from `f`: the first panicking worker's payload is
/// captured and resumed on the calling thread, so `panic!` messages and
/// downcastable payloads survive the pool intact. Remaining workers stop
/// picking up new tasks once a panic is observed.
pub fn parallel_map_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let slots = SlotWriter { ptr: results.as_mut_ptr() };

    let injector: Injector<(usize, T)> = Injector::new();
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    for (i, item) in items.into_iter().enumerate() {
        locals[i % workers].push((i, item));
    }

    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let panicked = AtomicBool::new(false);

    crossbeam::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let slots = &slots;
            let f = &f;
            let first_panic = &first_panic;
            let panicked = &panicked;
            scope.spawn(move |_| {
                let _span = obs::span!("exec", "exec.worker#{w}");
                let _prof = obs::prof::scope("exec.worker");
                let (mut executed, mut stolen) = (0u64, 0u64);
                while !panicked.load(Ordering::Relaxed) {
                    let Some(((i, item), was_stolen)) = find_task(&local, injector, stealers)
                    else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        // SAFETY: each index was enqueued exactly once.
                        Ok(r) => unsafe { slots.write(i, r) },
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            let mut slot = first_panic
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            break;
                        }
                    }
                    executed += 1;
                    stolen += u64::from(was_stolen);
                }
                obs::counter!("exec.tasks_executed").inc(executed);
                obs::counter!("exec.tasks_stolen").inc(stolen);
            });
        }
    })
    .expect("worker threads must not panic");

    if let Some(payload) =
        first_panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(payload);
    }

    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Borrowing convenience over [`parallel_map_indexed`] for callers that
/// only need `&T`.
pub fn parallel_map_ref<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(jobs, (0..items.len()).collect(), |_, i| f(&items[i]))
}

/// Retry/drop policy for [`parallel_map_quarantine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// How many times a panicking work unit is re-queued before it is
    /// dropped. `2` means up to three attempts in total.
    pub max_retries: usize,
}

impl Default for FaultPolicy {
    fn default() -> FaultPolicy {
        FaultPolicy { max_retries: 2 }
    }
}

/// One work unit that kept panicking past its retry budget and was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Input index of the dropped unit.
    pub index: usize,
    /// Total attempts made (initial run plus retries).
    pub attempts: usize,
    /// The panic message of the final attempt.
    pub message: String,
}

/// What [`parallel_map_quarantine`] survived: how many panics were retried
/// and which units were dropped after exhausting their budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Total panic-triggered re-queues across all units.
    pub retries: u64,
    /// Units dropped after `max_retries` re-queues, in input order.
    pub dropped: Vec<FaultRecord>,
}

impl FaultReport {
    /// `true` when every unit completed (possibly after retries).
    pub fn is_clean(&self) -> bool {
        self.dropped.is_empty()
    }

    /// `true` when no unit panicked at all.
    pub fn is_empty(&self) -> bool {
        self.retries == 0 && self.dropped.is_empty()
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} retries, {} dropped units", self.retries, self.dropped.len())?;
        for rec in &self.dropped {
            write!(f, "\n  unit #{} after {} attempts: {}", rec.index, rec.attempts, rec.message)?;
        }
        Ok(())
    }
}

/// Best-effort stringification of a panic payload for [`FaultRecord`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-tolerant variant of [`parallel_map_indexed`]: a panicking work
/// unit is quarantined and re-queued onto the pool for a fresh attempt (its
/// previous attempt's stack fully unwound) up to `policy.max_retries`
/// times, then dropped with a logged warning instead of aborting the sweep.
/// The caller gets `None` in the dropped unit's slot plus a [`FaultReport`]
/// naming every casualty — the sweep itself always completes.
///
/// The closure takes `&T` (not `T`) precisely so a unit survives its own
/// panic and can be retried.
pub fn parallel_map_quarantine<T, R, F>(
    jobs: usize,
    items: &[T],
    policy: FaultPolicy,
    f: F,
) -> (Vec<Option<R>>, FaultReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len().max(1));
    let retries = std::sync::atomic::AtomicU64::new(0);
    let dropped: Mutex<Vec<FaultRecord>> = Mutex::new(Vec::new());

    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    // Attempt one unit once, returning the panic payload on failure.
    let attempt = |i: usize| catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));

    if workers <= 1 || items.len() <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            let mut attempts = 0;
            loop {
                attempts += 1;
                match attempt(i) {
                    Ok(r) => {
                        *slot = Some(r);
                        break;
                    }
                    Err(payload) if attempts <= policy.max_retries => {
                        let _ = payload;
                        retries.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => {
                        dropped.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(
                            FaultRecord {
                                index: i,
                                attempts,
                                message: panic_message(payload.as_ref()),
                            },
                        );
                        break;
                    }
                }
            }
        }
    } else {
        // Tasks are (input index, attempt number). Retries go through the
        // global injector, so whichever worker runs dry first picks the
        // quarantined unit up for a clean re-run.
        let injector: Injector<(usize, usize)> = Injector::new();
        let locals: Vec<Worker<(usize, usize)>> =
            (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<(usize, usize)>> = locals.iter().map(Worker::stealer).collect();
        for i in 0..items.len() {
            locals[i % workers].push((i, 1));
        }
        let slots = SlotWriter { ptr: results.as_mut_ptr() };

        crossbeam::scope(|scope| {
            for local in locals {
                let stealers = &stealers;
                let injector = &injector;
                let slots = &slots;
                let attempt = &attempt;
                let retries = &retries;
                let dropped = &dropped;
                scope.spawn(move |_| {
                    while let Some(((i, attempts), _)) = find_task(&local, injector, stealers) {
                        match attempt(i) {
                            // SAFETY: an index is in flight on exactly one
                            // worker at a time — it is either freshly enqueued
                            // or re-pushed by the worker that just failed it.
                            Ok(r) => unsafe { slots.write(i, r) },
                            Err(payload) if attempts <= policy.max_retries => {
                                let _ = payload;
                                retries.fetch_add(1, Ordering::Relaxed);
                                // Re-queue before this worker looks for other
                                // work, so the retry cannot be orphaned.
                                injector.push((i, attempts + 1));
                            }
                            Err(payload) => dropped
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(FaultRecord {
                                    index: i,
                                    attempts,
                                    message: panic_message(payload.as_ref()),
                                }),
                        }
                    }
                });
            }
        })
        .expect("quarantine workers never propagate panics");
    }

    let mut dropped = dropped.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    dropped.sort_by_key(|rec| rec.index);
    let report = FaultReport { retries: retries.load(Ordering::Relaxed), dropped };
    obs::counter!("exec.quarantine_retries").inc(report.retries);
    obs::counter!("exec.quarantine_dropped").inc(report.dropped.len() as u64);
    for rec in &report.dropped {
        obs::warn!(
            "exec: dropped work unit #{} after {} attempts: {}",
            rec.index,
            rec.attempts,
            rec.message
        );
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_indexed(4, (0..257).collect::<Vec<u64>>(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_ref(8, &vec![1usize; 100], |&x| {
            counter.fetch_add(x, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sequential_fallbacks_match_parallel() {
        let items: Vec<usize> = (0..40).collect();
        let seq = parallel_map_indexed(1, items.clone(), |i, x| i + x);
        let par = parallel_map_indexed(0, items, |i, x| i + x);
        assert_eq!(seq, par);
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn worker_panic_payload_reaches_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, (0..64).collect::<Vec<u32>>(), |_, x| {
                if x == 17 {
                    panic!("job {x} exploded");
                }
                x
            })
        });
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("the original String payload must survive the pool");
        assert_eq!(msg, "job 17 exploded");
    }

    #[test]
    fn static_str_panic_payload_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(2, vec![0u8, 1], |_, _| panic!("boom"))
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = parallel_map_indexed(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(4, vec![9u8], |i, x| x + i as u8);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn quarantine_without_faults_matches_plain_map() {
        let items: Vec<u64> = (0..100).collect();
        let (out, report) =
            parallel_map_quarantine(4, &items, FaultPolicy::default(), |i, &x| i as u64 + x);
        assert!(report.is_empty(), "no panics: {report}");
        let expected: Vec<Option<u64>> = (0..100).map(|x| Some(2 * x)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn quarantine_retries_a_transient_panic_to_success() {
        let failures_left = AtomicUsize::new(2);
        let items: Vec<usize> = (0..64).collect();
        let (out, report) =
            parallel_map_quarantine(4, &items, FaultPolicy { max_retries: 2 }, |_, &x| {
                if x == 13
                    && failures_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok()
                {
                    panic!("transient fault");
                }
                x * 10
            });
        assert!(report.is_clean(), "unit recovered on retry: {report}");
        assert_eq!(report.retries, 2);
        assert_eq!(out[13], Some(130));
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn quarantine_drops_a_persistent_panicker_and_finishes() {
        let items: Vec<usize> = (0..64).collect();
        let (out, report) =
            parallel_map_quarantine(4, &items, FaultPolicy { max_retries: 1 }, |_, &x| {
                if x == 7 {
                    panic!("unit {x} always explodes");
                }
                x
            });
        assert_eq!(report.dropped.len(), 1);
        let rec = &report.dropped[0];
        assert_eq!(rec.index, 7);
        assert_eq!(rec.attempts, 2, "initial run plus one retry");
        assert!(rec.message.contains("always explodes"));
        assert_eq!(report.retries, 1);
        assert!(out[7].is_none(), "the dropped unit's slot stays empty");
        assert_eq!(out.iter().filter(|r| r.is_some()).count(), 63);
    }

    #[test]
    fn quarantine_sequential_path_matches_parallel() {
        let items: Vec<usize> = (0..20).collect();
        let fail = |_: usize, &x: &usize| {
            if x == 3 {
                panic!("nope");
            }
            x + 1
        };
        let (seq, seq_report) =
            parallel_map_quarantine(1, &items, FaultPolicy { max_retries: 1 }, fail);
        let (par, par_report) =
            parallel_map_quarantine(4, &items, FaultPolicy { max_retries: 1 }, fail);
        assert_eq!(seq, par);
        assert_eq!(seq_report.dropped, par_report.dropped);
    }
}
