//! Shared work-stealing execution pool for embarrassingly parallel jobs.
//!
//! Data generation replays hundreds of independent millisecond-scale
//! simulation jobs ([`crate::generate_workload`]), and the benchmark runner
//! fans governor comparisons out across benchmarks. Both funnel through
//! [`parallel_map_indexed`]: jobs are distributed round-robin into
//! per-worker deques, workers drain their own deque LIFO and steal FIFO
//! from the global injector or from peers when they run dry, and every
//! result is written into a pre-sized, disjoint output slot so no lock is
//! held around result collection. Output order always matches input order,
//! which is what makes parallel data generation byte-identical to the
//! sequential path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Resolves a requested worker count: `0` means "one per available core".
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// Write-only view of the output vector handing each job its own slot.
///
/// Safety rests on index uniqueness: every job index is enqueued exactly
/// once, so no two threads ever write the same slot.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

unsafe impl<R: Send> Sync for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    /// # Safety
    ///
    /// `index` must be in bounds and claimed by exactly one caller.
    unsafe fn write(&self, index: usize, value: R) {
        unsafe { *self.ptr.add(index) = Some(value) };
    }
}

/// Finds the next task; the flag reports whether it was stolen (from the
/// injector or a peer) rather than popped from the worker's own deque.
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<(T, bool)> {
    if let Some(task) = local.pop() {
        return Some((task, false));
    }
    loop {
        match injector.steal() {
            Steal::Success(task) => return Some((task, true)),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in stealers {
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some((task, true)),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// Maps `f` over `items` on up to `jobs` worker threads (`0` = one per
/// core), passing each item's input index alongside it. Results come back
/// in input order regardless of which worker ran which item.
///
/// Tasks never spawn sub-tasks, so once every deque and the injector are
/// observed empty a worker can safely retire.
///
/// # Panics
///
/// Propagates a panic from `f`: the first panicking worker's payload is
/// captured and resumed on the calling thread, so `panic!` messages and
/// downcastable payloads survive the pool intact. Remaining workers stop
/// picking up new tasks once a panic is observed.
pub fn parallel_map_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_jobs(jobs).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let slots = SlotWriter { ptr: results.as_mut_ptr() };

    let injector: Injector<(usize, T)> = Injector::new();
    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    for (i, item) in items.into_iter().enumerate() {
        locals[i % workers].push((i, item));
    }

    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let panicked = AtomicBool::new(false);

    crossbeam::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let slots = &slots;
            let f = &f;
            let first_panic = &first_panic;
            let panicked = &panicked;
            scope.spawn(move |_| {
                let _span = obs::span!("exec", "exec.worker#{w}");
                let (mut executed, mut stolen) = (0u64, 0u64);
                while !panicked.load(Ordering::Relaxed) {
                    let Some(((i, item), was_stolen)) = find_task(&local, injector, stealers)
                    else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        // SAFETY: each index was enqueued exactly once.
                        Ok(r) => unsafe { slots.write(i, r) },
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            let mut slot = first_panic
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            break;
                        }
                    }
                    executed += 1;
                    stolen += u64::from(was_stolen);
                }
                obs::counter!("exec.tasks_executed").inc(executed);
                obs::counter!("exec.tasks_stolen").inc(stolen);
            });
        }
    })
    .expect("worker threads must not panic");

    if let Some(payload) =
        first_panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(payload);
    }

    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Borrowing convenience over [`parallel_map_indexed`] for callers that
/// only need `&T`.
pub fn parallel_map_ref<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(jobs, (0..items.len()).collect(), |_, i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_indexed(4, (0..257).collect::<Vec<u64>>(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_ref(8, &vec![1usize; 100], |&x| {
            counter.fetch_add(x, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sequential_fallbacks_match_parallel() {
        let items: Vec<usize> = (0..40).collect();
        let seq = parallel_map_indexed(1, items.clone(), |i, x| i + x);
        let par = parallel_map_indexed(0, items, |i, x| i + x);
        assert_eq!(seq, par);
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn worker_panic_payload_reaches_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(4, (0..64).collect::<Vec<u32>>(), |_, x| {
                if x == 17 {
                    panic!("job {x} exploded");
                }
                x
            })
        });
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("the original String payload must survive the pool");
        assert_eq!(msg, "job 17 exploded");
    }

    #[test]
    fn static_str_panic_payload_survives() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_indexed(2, vec![0u8, 1], |_, _| panic!("boom"))
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = parallel_map_indexed(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(4, vec![9u8], |i, x| x + i as u8);
        assert_eq!(one, vec![9]);
    }
}
