//! Checkpoint journal for long data-generation sweeps.
//!
//! A suite sweep is thousands of independent (benchmark, breakpoint,
//! operating-point) replay jobs; losing the whole run to a crash in hour
//! three is not acceptable. Workers append each finished job to a JSONL
//! journal — one [`CheckpointEntry`] per line, flushed as it completes —
//! and `ssmdvfs datagen --resume <journal>` skips every journaled job,
//! replaying only the remainder. Because phase 1 (the reference timelines)
//! is deterministic and the final dataset is assembled in job order from a
//! mix of journaled and freshly-computed results, a resumed run's output is
//! byte-identical to an uninterrupted one.
//!
//! A process killed mid-write leaves at most one truncated final line;
//! [`load`] tolerates exactly that (the half-written job is redone), while
//! corruption anywhere earlier is a hard [`SsmdvfsError::Parse`].

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::datagen::RawSample;
use crate::error::{Artifact, SsmdvfsError};

/// One completed replay job: its identity within the sweep plus the samples
/// it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// Benchmark the job belongs to.
    pub benchmark: String,
    /// Breakpoint index within the benchmark.
    pub breakpoint: usize,
    /// Operating point replayed during the scaling window.
    pub op_index: usize,
    /// The job's samples (in cluster order, possibly empty).
    pub samples: Vec<RawSample>,
}

impl CheckpointEntry {
    /// The job identity used to match journal entries against a sweep's
    /// job list.
    pub fn key(&self) -> (String, usize, usize) {
        (self.benchmark.clone(), self.breakpoint, self.op_index)
    }
}

/// Completed jobs indexed by (benchmark, breakpoint, op_index). Later
/// entries for the same job win (they are re-runs of the same deterministic
/// computation, so the values are identical anyway).
pub type CompletedJobs = HashMap<(String, usize, usize), Vec<RawSample>>;

/// Collapses journal entries into a lookup map.
pub fn completed_jobs(entries: Vec<CheckpointEntry>) -> CompletedJobs {
    entries.into_iter().map(|e| (e.key(), e.samples)).collect()
}

/// An append-only JSONL journal shared by the worker pool. Every append is
/// one serialized [`CheckpointEntry`] line, flushed before returning, so a
/// SIGKILL can truncate at most the line being written.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl CheckpointJournal {
    /// Creates (truncating) a fresh journal at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<CheckpointJournal, SsmdvfsError> {
        let path = path.as_ref().to_path_buf();
        let file =
            File::create(&path).map_err(|e| SsmdvfsError::write(Artifact::Checkpoint, &path, e))?;
        Ok(CheckpointJournal { path, file: Mutex::new(file) })
    }

    /// Opens `path` for appending, creating it if absent — the resume path,
    /// which keeps extending the interrupted run's journal.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the file cannot be opened.
    pub fn append_to(path: impl AsRef<Path>) -> Result<CheckpointJournal, SsmdvfsError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| SsmdvfsError::write(Artifact::Checkpoint, &path, e))?;
        Ok(CheckpointJournal { path, file: Mutex::new(file) })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed job and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] on a write failure (the entry may then
    /// be partially written; a later [`load`] treats it as truncated).
    pub fn append(&self, entry: &CheckpointEntry) -> Result<(), SsmdvfsError> {
        let line = serde_json::to_string(entry)
            .map_err(|e| SsmdvfsError::parse(Artifact::Checkpoint, &self.path, e))?;
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.flush())
            .map_err(|e| SsmdvfsError::write(Artifact::Checkpoint, &self.path, e))
    }
}

/// Loads every completed job from a journal written by
/// [`CheckpointJournal`].
///
/// A truncated *final* line — the signature of a process killed mid-write —
/// is silently discarded (that job is simply redone on resume).
///
/// # Errors
///
/// Returns [`SsmdvfsError::Io`] if the journal is unreadable, and
/// [`SsmdvfsError::Parse`] if any line other than the last is malformed:
/// that is corruption, not interruption, and resuming from it would
/// silently drop work.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<CheckpointEntry>, SsmdvfsError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| SsmdvfsError::read(Artifact::Checkpoint, path, e))?;
    let lines: Vec<&str> = text.lines().collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (n, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CheckpointEntry>(line) {
            Ok(entry) => entries.push(entry),
            Err(_) if n + 1 == lines.len() => {
                obs::warn!(
                    "checkpoint: discarding truncated final line {} of '{}'",
                    n + 1,
                    path.display()
                );
            }
            Err(e) => {
                return Err(SsmdvfsError::parse(
                    Artifact::Checkpoint,
                    path,
                    format!("line {}: {e}", n + 1),
                ));
            }
        }
    }
    obs::counter!("checkpoint.loaded_entries").inc(entries.len() as u64);
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, breakpoint: usize, op: usize) -> CheckpointEntry {
        CheckpointEntry {
            benchmark: bench.to_string(),
            breakpoint,
            op_index: op,
            samples: Vec::new(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ssmdvfs-ckpt-test-{tag}-{}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn round_trips_entries() {
        let path = temp_path("roundtrip");
        let journal = CheckpointJournal::create(&path).unwrap();
        journal.append(&entry("sgemm", 0, 3)).unwrap();
        journal.append(&entry("sgemm", 1, 0)).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].key(), ("sgemm".to_string(), 0, 3));
        assert_eq!(loaded[1].key(), ("sgemm".to_string(), 1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerates_a_truncated_final_line_only() {
        let path = temp_path("truncated");
        let journal = CheckpointJournal::create(&path).unwrap();
        journal.append(&entry("bfs", 0, 0)).unwrap();
        drop(journal);
        // Simulate a SIGKILL mid-write: a half-serialized trailing line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"benchmark\":\"bfs\",\"breakp");
        std::fs::write(&path, &text).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1, "the complete line survives");

        // The same garbage anywhere earlier is corruption, not truncation.
        let corrupt = format!("{{not json}}\n{}", text.lines().next().unwrap());
        std::fs::write(&path, corrupt).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("malformed checkpoint"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_extends_an_existing_journal() {
        let path = temp_path("append");
        CheckpointJournal::create(&path).unwrap().append(&entry("nw", 0, 0)).unwrap();
        CheckpointJournal::append_to(&path).unwrap().append(&entry("nw", 0, 1)).unwrap();
        let jobs = completed_jobs(load(&path).unwrap());
        assert_eq!(jobs.len(), 2);
        assert!(jobs.contains_key(&("nw".to_string(), 0, 1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_a_typed_read_error() {
        let err = load("/nonexistent/dir/ck.jsonl").unwrap_err();
        assert!(err.to_string().contains("read checkpoint"), "got: {err}");
    }
}
