//! The combined Decision-maker / Calibrator network.
//!
//! The paper combines the two models into a single network because their
//! inputs overlap almost entirely: five fully connected layers feed the
//! Decision-maker's classification output, and four further layers (which
//! additionally see the chosen frequency) feed the Calibrator's regression
//! output. [`CombinedModel`] packages both heads together with the feature
//! set, the input normalizers and the instruction-count scale, so one value
//! carries everything the runtime controller needs.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use tinynn::{Matrix, Mlp, Normalizer};

use crate::error::{Artifact, SsmdvfsError};
use crate::features::FeatureSet;

/// Architecture of the two heads, expressed as hidden-layer widths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelArch {
    /// Hidden widths of the Decision-maker head.
    pub decision_hidden: Vec<usize>,
    /// Hidden widths of the Calibrator head.
    pub calibrator_hidden: Vec<usize>,
}

impl ModelArch {
    /// The paper's pre-compression architecture: five 20-neuron layers for
    /// the Decision-maker and four for the Calibrator.
    pub fn paper_full() -> ModelArch {
        ModelArch { decision_hidden: vec![20; 5], calibrator_hidden: vec![20; 4] }
    }

    /// The layer-wise-compressed architecture of Section IV-B: three
    /// fully connected layers (two hidden) for the Decision-maker and two
    /// (one hidden) for the Calibrator, 12 neurons each.
    pub fn paper_compressed() -> ModelArch {
        ModelArch { decision_hidden: vec![12, 12], calibrator_hidden: vec![12] }
    }

    /// A custom uniform architecture: `layers` hidden layers of `neurons`
    /// for the decision head and `layers - 1` (at least one) for the
    /// calibrator head — the shape family swept in Fig. 3.
    pub fn uniform(layers: usize, neurons: usize) -> ModelArch {
        ModelArch {
            decision_hidden: vec![neurons; layers.max(1)],
            calibrator_hidden: vec![neurons; layers.saturating_sub(1).max(1)],
        }
    }
}

/// The trained combined model: both heads plus all input plumbing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedModel {
    /// Decision-maker head: `[features..., preset] -> logits over operating
    /// points`.
    pub decision: Mlp,
    /// Calibrator head: `[features..., preset, op/(num_ops-1)] -> scaled
    /// instruction count`.
    pub calibrator: Mlp,
    /// Which counters feed the model.
    pub feature_set: FeatureSet,
    /// Normalizer for the decision input.
    pub decision_norm: Normalizer,
    /// Normalizer for the calibrator input.
    pub calibrator_norm: Normalizer,
    /// The Calibrator target was divided by this during training.
    pub instr_scale: f32,
    /// Number of operating points (decision classes).
    pub num_ops: usize,
}

impl CombinedModel {
    /// A deterministic, untrained model over the refined feature set:
    /// seeded random weights in the paper's compressed shape and
    /// normalizers fitted to plausible counter ranges. Serving benchmarks,
    /// fleet smokes and determinism tests need a governor without paying
    /// for a training run; the decisions are arbitrary but reproducible.
    /// Never a substitute for a trained model.
    ///
    /// # Panics
    ///
    /// Panics if `num_ops < 2`.
    pub fn synthetic(num_ops: usize, seed: u64) -> CombinedModel {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        assert!(num_ops >= 2, "a decision head needs at least two operating points");
        let feature_set = FeatureSet::refined();
        let f = feature_set.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let decision = Mlp::new(&[f + 1, 12, 12, num_ops], &mut rng);
        let calibrator = Mlp::new(&[f + 2, 12, 1], &mut rng);
        // Rough per-feature spans (cycled when the feature set grows) so
        // the normalizers neither explode nor flatten typical counters.
        let spans = [1.0f32, 10.0, 100.0, 10.0, 50.0];
        let mut hi: Vec<f32> = (0..f).map(|i| spans[i % spans.len()]).collect();
        hi.push(0.2); // preset column
        let lo = vec![0.0f32; f + 1];
        let decision_norm = Normalizer::fit(&Matrix::from_rows(&[&lo, &hi]));
        let mut hi_cal = hi.clone();
        hi_cal.push(1.0); // normalized operating-point column
        let lo_cal = vec![0.0f32; f + 2];
        let calibrator_norm = Normalizer::fit(&Matrix::from_rows(&[&lo_cal, &hi_cal]));
        CombinedModel {
            decision,
            calibrator,
            feature_set,
            decision_norm,
            calibrator_norm,
            instr_scale: 1_000.0,
            num_ops,
        }
    }

    /// Picks the operating-point index for the given raw features and
    /// performance-loss preset.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the model's feature set.
    pub fn decide(&self, features: &[f32], preset: f32) -> usize {
        assert_eq!(features.len(), self.feature_set.len(), "feature count mismatch");
        self.decode_ordinal(&self.decision_logits(features, preset))
    }

    /// Plain argmax decoding (ablation alternative to the ordinal decode in
    /// [`CombinedModel::decide`]).
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the model's feature set.
    pub fn decide_argmax(&self, features: &[f32], preset: f32) -> usize {
        tinynn::argmax(&self.decision_logits(features, preset))
    }

    /// Ordinal decode over precomputed logits. Callers that also want the
    /// raw logits (e.g. the decision audit trail) compute
    /// [`CombinedModel::decision_logits`] once and decode from it, instead
    /// of paying a second forward pass through [`CombinedModel::decide`].
    ///
    /// Ordinal decoding: the classes are ordered frequencies, so the
    /// probability-weighted mean class (rounded) is used instead of a
    /// plain argmax. A near-miss between adjacent points then lands on
    /// one of them, while argmax can flip to a distant point on a small
    /// logit perturbation — an expensive failure when the points differ
    /// by hundreds of MHz.
    pub fn decode_ordinal(&self, logits: &[f32]) -> usize {
        let mut probs = logits.to_vec();
        self.decode_ordinal_in_place(&mut probs)
    }

    /// [`CombinedModel::decode_ordinal`] that consumes its scratch buffer:
    /// `probs` enters holding the logits and leaves holding their softmax.
    /// The allocation-free form the per-epoch controller uses; identical
    /// arithmetic to [`CombinedModel::decode_ordinal`].
    pub fn decode_ordinal_in_place(&self, probs: &mut [f32]) -> usize {
        tinynn::softmax_in_place(probs);
        let mean: f32 = probs.iter().enumerate().map(|(i, p)| i as f32 * p).sum();
        (mean.round() as usize).min(self.num_ops - 1)
    }

    /// Full logits for inspection (e.g. confidence analysis).
    pub fn decision_logits(&self, features: &[f32], preset: f32) -> Vec<f32> {
        let mut input = features.to_vec();
        input.push(preset);
        self.decision_norm.transform_one(&mut input);
        self.decision.forward_one(&input)
    }

    /// Predicts the instruction count of the next epoch if the cluster runs
    /// at `op_index`, given the current features and the *original* preset
    /// (the paper's Calibrator always sees the original preset).
    ///
    /// # Panics
    ///
    /// Panics if `features` does not match the model's feature set.
    pub fn predict_instructions(&self, features: &[f32], preset: f32, op_index: usize) -> f32 {
        assert_eq!(features.len(), self.feature_set.len(), "feature count mismatch");
        let mut input = features.to_vec();
        input.push(preset);
        input.push(op_index as f32 / (self.num_ops.max(2) - 1) as f32);
        self.calibrator_norm.transform_one(&mut input);
        let out = self.calibrator.forward_one(&input);
        (out[0] * self.instr_scale).max(0.0)
    }

    /// Batch decision logits (rows of `x` are already assembled, raw
    /// `[features..., preset]` rows).
    pub fn decision_forward_raw(&self, x: &Matrix) -> Matrix {
        self.decision.forward(&self.decision_norm.transform(x))
    }

    /// Batch calibrator outputs (raw `[features..., preset, op]` rows),
    /// in scaled units.
    pub fn calibrator_forward_raw(&self, x: &Matrix) -> Matrix {
        self.calibrator.forward(&self.calibrator_norm.transform(x))
    }

    /// Total dense FLOPs of both heads.
    pub fn flops(&self) -> u64 {
        self.decision.flops() + self.calibrator.flops()
    }

    /// Total FLOPs counting only non-zero weights.
    pub fn sparse_flops(&self) -> u64 {
        self.decision.sparse_flops() + self.calibrator.sparse_flops()
    }

    /// Serializes the model to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] tagged with [`Artifact::Model`] on a
    /// write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SsmdvfsError> {
        let path = path.as_ref();
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| SsmdvfsError::parse(Artifact::Model, path, e))?;
        fs::write(path, json).map_err(|e| SsmdvfsError::write(Artifact::Model, path, e))
    }

    /// Loads a model serialized by [`CombinedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SsmdvfsError::Io`] if the file is unreadable and
    /// [`SsmdvfsError::Parse`] if it is not a valid model, both tagged with
    /// [`Artifact::Model`] so the CLI names the failing stage.
    pub fn load(path: impl AsRef<Path>) -> Result<CombinedModel, SsmdvfsError> {
        let path = path.as_ref();
        let json =
            fs::read_to_string(path).map_err(|e| SsmdvfsError::read(Artifact::Model, path, e))?;
        serde_json::from_str(&json).map_err(|e| SsmdvfsError::parse(Artifact::Model, path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dummy_model() -> CombinedModel {
        let fs = FeatureSet::refined();
        let mut rng = StdRng::seed_from_u64(5);
        let decision = Mlp::new(&[fs.len() + 1, 12, 6], &mut rng);
        let calibrator = Mlp::new(&[fs.len() + 2, 12, 1], &mut rng);
        let dn = Normalizer::fit(&Matrix::from_rows(&[
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 10.0, 100.0, 10.0, 50.0, 0.2],
        ]));
        let cn = Normalizer::fit(&Matrix::from_rows(&[
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 10.0, 100.0, 10.0, 50.0, 0.2, 1.0],
        ]));
        CombinedModel {
            decision,
            calibrator,
            feature_set: fs,
            decision_norm: dn,
            calibrator_norm: cn,
            instr_scale: 1_000.0,
            num_ops: 6,
        }
    }

    #[test]
    fn decide_returns_valid_index() {
        let m = dummy_model();
        let idx = m.decide(&[0.5, 5.0, 50.0, 5.0, 25.0], 0.1);
        assert!(idx < 6);
        let logits = m.decision_logits(&[0.5, 5.0, 50.0, 5.0, 25.0], 0.1);
        assert_eq!(logits.len(), 6);
    }

    #[test]
    fn ordinal_decode_matches_argmax_on_confident_logits() {
        // When one class dominates, ordinal decoding equals argmax.
        let mut m = dummy_model();
        // Rig the decision head: zero everything, bias class 2 high.
        for layer in m.decision.layers_mut() {
            layer.w.map_inplace(|_| 0.0);
            for b in &mut layer.b {
                *b = 0.0;
            }
        }
        let last = m.decision.layers_mut().last_mut().unwrap();
        last.b[2] = 50.0;
        let idx = m.decide(&[0.0, 0.0, 0.0, 0.0, 0.0], 0.1);
        assert_eq!(idx, 2);
    }

    #[test]
    fn predicted_instructions_are_non_negative_and_scaled() {
        let m = dummy_model();
        let p = m.predict_instructions(&[0.5, 5.0, 50.0, 5.0, 25.0], 0.1, 3);
        assert!(p >= 0.0);
        assert!(p.is_finite());
    }

    #[test]
    fn architectures_match_the_paper() {
        let full = ModelArch::paper_full();
        assert_eq!(full.decision_hidden, vec![20; 5]);
        assert_eq!(full.calibrator_hidden, vec![20; 4]);
        let small = ModelArch::paper_compressed();
        assert_eq!(small.decision_hidden, vec![12, 12]);
        assert_eq!(small.calibrator_hidden, vec![12]);
        let u = ModelArch::uniform(3, 16);
        assert_eq!(u.decision_hidden, vec![16, 16, 16]);
        assert_eq!(u.calibrator_hidden, vec![16, 16]);
    }

    #[test]
    fn flops_sum_both_heads() {
        let m = dummy_model();
        assert_eq!(m.flops(), m.decision.flops() + m.calibrator.flops());
        assert!(m.sparse_flops() <= m.flops());
    }

    #[test]
    fn save_load_roundtrip() {
        let m = dummy_model();
        let dir = std::env::temp_dir().join("ssmdvfs_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let loaded = CombinedModel::load(&path).unwrap();
        assert_eq!(m, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_rejected() {
        let m = dummy_model();
        m.decide(&[1.0, 2.0], 0.1);
    }
}
