//! Performance-counter → feature-vector mapping.
//!
//! The data-generation step collects all 47 counters; Table I's RFE stage
//! narrows the model inputs to five: **IPC** (instructions per core),
//! **PPC** (power per core), **MH** (memory hazards), **MH\L** (memory
//! hazards from other than load) and **L1CRM** (L1 cache read misses).
//! [`FeatureSet`] names an arbitrary subset of the counters so the feature
//! selection experiment can sweep candidates, and the refined set is
//! provided as [`FeatureSet::refined`].

use gpu_sim::{CounterId, EpochCounters};
use serde::{Deserialize, Serialize};

/// An ordered subset of the 47 performance counters used as model features.
///
/// # Examples
///
/// ```
/// use gpu_sim::EpochCounters;
/// use ssmdvfs::FeatureSet;
///
/// let full = FeatureSet::full();
/// assert_eq!(full.len(), 47);
/// let refined = FeatureSet::refined();
/// assert_eq!(refined.len(), 5);
/// let v = refined.extract(&EpochCounters::zeroed());
/// assert_eq!(v.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    counters: Vec<CounterId>,
}

impl FeatureSet {
    /// Creates a feature set from explicit counters.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or contains duplicates.
    pub fn new(counters: Vec<CounterId>) -> FeatureSet {
        assert!(!counters.is_empty(), "a feature set needs at least one counter");
        let mut seen = std::collections::HashSet::new();
        for c in &counters {
            assert!(seen.insert(*c), "duplicate counter {} in feature set", c.name());
        }
        FeatureSet { counters }
    }

    /// All 47 counters, in [`CounterId::ALL`] order.
    pub fn full() -> FeatureSet {
        FeatureSet { counters: CounterId::ALL.to_vec() }
    }

    /// The paper's Table I selection: IPC, PPC, MH, MH\L, L1CRM.
    pub fn refined() -> FeatureSet {
        FeatureSet {
            counters: vec![
                CounterId::Ipc,
                CounterId::PowerTotalW,
                CounterId::StallMemLoad,
                CounterId::StallMemOther,
                CounterId::L1ReadMiss,
            ],
        }
    }

    /// Creates a feature set from indices into [`CounterId::ALL`] (the
    /// representation RFE works in).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn from_indices(indices: &[usize]) -> FeatureSet {
        FeatureSet::new(indices.iter().map(|&i| CounterId::ALL[i]).collect())
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the set is empty (never true for a constructed
    /// set).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The counters in order.
    pub fn counters(&self) -> &[CounterId] {
        &self.counters
    }

    /// The counter names in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.counters.iter().map(|c| c.name()).collect()
    }

    /// Extracts the feature vector from one epoch's counters.
    pub fn extract(&self, counters: &EpochCounters) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.counters.len());
        self.extract_into(counters, &mut out);
        out
    }

    /// [`FeatureSet::extract`] into a reusable buffer — the allocation-free
    /// form the per-epoch controller hot path uses.
    pub fn extract_into(&self, counters: &EpochCounters, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.counters.iter().map(|&c| counters[c] as f32));
    }
}

impl Default for FeatureSet {
    fn default() -> FeatureSet {
        FeatureSet::refined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refined_matches_table_i() {
        let names = FeatureSet::refined().names();
        assert_eq!(
            names,
            vec!["ipc", "power_total_w", "stall_mem_load", "stall_mem_other", "l1_read_miss"]
        );
    }

    #[test]
    fn extract_reads_the_right_counters() {
        let mut c = EpochCounters::zeroed();
        c[CounterId::Ipc] = 1.5;
        c[CounterId::L1ReadMiss] = 42.0;
        let v = FeatureSet::refined().extract(&c);
        assert_eq!(v[0], 1.5);
        assert_eq!(v[4], 42.0);
    }

    #[test]
    fn from_indices_roundtrip() {
        let fs = FeatureSet::from_indices(&[0, 10, 46]);
        assert_eq!(fs.counters()[0], CounterId::ALL[0]);
        assert_eq!(fs.counters()[2], CounterId::ALL[46]);
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicates_rejected() {
        FeatureSet::new(vec![CounterId::Ipc, CounterId::Ipc]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn full_set_covers_every_counter_once() {
        let fs = FeatureSet::full();
        let mut names = fs.names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::COUNT);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn empty_set_rejected() {
        FeatureSet::new(Vec::new());
    }

    #[test]
    fn default_is_the_refined_set() {
        assert_eq!(FeatureSet::default(), FeatureSet::refined());
    }
}
