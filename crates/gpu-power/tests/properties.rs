//! Property-based tests for the power model.

use gpu_power::{Activity, Energy, OperatingPoint, PowerModel, VfTable};
use proptest::prelude::*;

fn arb_activity() -> impl Strategy<Value = Activity> {
    (
        0u64..100_000,
        0u64..100_000,
        0u64..10_000,
        0u64..20_000,
        0u64..20_000,
        0u64..20_000,
        0u64..5_000,
    )
        .prop_map(|(int_alu, fp_alu, sfu, load, store, l1, dram)| Activity {
            int_alu,
            fp_alu,
            sfu,
            load,
            store,
            shared: load / 2,
            branch: int_alu / 10,
            barrier: 0,
            l1_accesses: l1,
            l1_misses: l1 / 4,
            l2_accesses: l1 / 4,
            l2_misses: l1 / 16,
            dram_reads: dram,
            dram_writes: dram / 2,
            active_cycles: 5_000,
            total_cycles: 11_650,
        })
}

proptest! {
    /// Energy is finite and non-negative for any activity at any table point.
    #[test]
    fn energy_is_physical(activity in arb_activity(), idx in 0usize..6) {
        let model = PowerModel::titan_x();
        let op = VfTable::titan_x().point(idx);
        let b = model.epoch_energy(&activity, op, 10e-6);
        prop_assert!(b.total().is_physical());
        prop_assert!(b.dynamic().is_physical());
        prop_assert!(b.leakage.is_physical());
        prop_assert!(b.memory().is_physical());
    }

    /// At fixed work, switching energy is monotone non-decreasing in voltage.
    #[test]
    fn switching_energy_monotone_in_voltage(
        activity in arb_activity(),
        v_lo in 0.8f64..1.0,
        dv in 0.01f64..0.4,
    ) {
        let model = PowerModel::titan_x();
        let lo = model.epoch_energy(&activity, OperatingPoint::new(v_lo, 1000.0), 10e-6);
        let hi = model.epoch_energy(&activity, OperatingPoint::new(v_lo + dv, 1000.0), 10e-6);
        prop_assert!(hi.compute >= lo.compute);
        prop_assert!(hi.clock >= lo.clock);
        prop_assert!(hi.leakage >= lo.leakage);
    }

    /// Clock energy is monotone in frequency; leakage is frequency-blind.
    #[test]
    fn frequency_dependence(activity in arb_activity(), f_lo in 400.0f64..900.0, df in 10.0f64..600.0) {
        let model = PowerModel::titan_x();
        let lo = model.epoch_energy(&activity, OperatingPoint::new(1.0, f_lo), 10e-6);
        let hi = model.epoch_energy(&activity, OperatingPoint::new(1.0, f_lo + df), 10e-6);
        prop_assert!(hi.clock > lo.clock);
        prop_assert_eq!(hi.leakage, lo.leakage);
        // Instruction-tied energy is frequency-independent at fixed work.
        prop_assert_eq!(hi.compute, lo.compute);
    }

    /// Energy scales linearly with duplicated activity (switching part).
    #[test]
    fn switching_energy_is_additive(activity in arb_activity()) {
        let model = PowerModel::titan_x();
        let op = VfTable::titan_x().default_point();
        let one = model.epoch_energy(&activity, op, 10e-6);
        let double = model.epoch_energy(&(activity + activity), op, 10e-6);
        let ratio = double.compute.joules() / one.compute.joules().max(1e-30);
        if one.compute > Energy::ZERO {
            prop_assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
        }
    }
}
