//! The component-level power/energy model.
//!
//! Energy for one epoch is the sum of:
//!
//! * **switching energy** — a per-warp-instruction energy for each
//!   instruction class plus a common fetch/decode/register-file overhead,
//!   all scaled by `(V / V_nom)²`;
//! * **clock & pipeline overhead power** — `c_clk · V² · f`, paid for every
//!   cycle whether or not work issued (clock gating is imperfect);
//! * **leakage power** — `k_leak · V · e^(β (V − 1 V))`, independent of
//!   frequency: this is why racing to idle at high `f` is not always optimal
//!   and why lowering `V` (not just `f`) matters;
//! * **memory hierarchy energy** — per-access energies for L1/L2/DRAM plus a
//!   constant DRAM background power, none of which scale with core frequency.

use serde::{Deserialize, Serialize};

use crate::{Activity, Energy, OperatingPoint, Power};

/// Tunable constants of the power model. All per-operation energies are at
/// the nominal voltage [`PowerModelConfig::nominal_voltage_v`] and in
/// nanojoules per warp-instruction or per access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModelConfig {
    /// Voltage at which per-op energies are specified, in volts.
    pub nominal_voltage_v: f64,
    /// Integer ALU energy per warp-instruction (nJ).
    pub e_int_alu_nj: f64,
    /// FP32 energy per warp-instruction (nJ).
    pub e_fp_alu_nj: f64,
    /// SFU energy per warp-instruction (nJ).
    pub e_sfu_nj: f64,
    /// Load pipe energy per warp-instruction (nJ), excluding cache/DRAM.
    pub e_load_nj: f64,
    /// Store pipe energy per warp-instruction (nJ), excluding cache/DRAM.
    pub e_store_nj: f64,
    /// Shared-memory energy per warp-instruction (nJ).
    pub e_shared_nj: f64,
    /// Branch energy per warp-instruction (nJ).
    pub e_branch_nj: f64,
    /// Barrier energy per warp-instruction (nJ).
    pub e_barrier_nj: f64,
    /// Fetch/decode/register-file overhead per warp-instruction of any class (nJ).
    pub e_overhead_nj: f64,
    /// L1 access energy (nJ).
    pub e_l1_access_nj: f64,
    /// L2 access energy (nJ).
    pub e_l2_access_nj: f64,
    /// DRAM transaction energy per 128-byte line (nJ).
    pub e_dram_nj: f64,
    /// Clock-tree/pipeline coefficient `c_clk` in W / (V² · Hz).
    pub clock_coeff_w_per_v2hz: f64,
    /// Leakage coefficient `k_leak` in W / V.
    pub leakage_coeff_w_per_v: f64,
    /// Leakage voltage exponent `β` in 1/V.
    pub leakage_beta_per_v: f64,
    /// Per-cluster share of the DRAM background power (W).
    pub dram_background_w: f64,
}

impl PowerModelConfig {
    /// Constants calibrated so a 24-cluster GPU lands in the GTX Titan X
    /// power envelope (~150 W under load, 250 W TDP) with plausible
    /// dynamic/leakage/memory shares.
    pub fn titan_x() -> PowerModelConfig {
        PowerModelConfig {
            nominal_voltage_v: 1.155,
            e_int_alu_nj: 0.80,
            e_fp_alu_nj: 1.10,
            e_sfu_nj: 2.20,
            e_load_nj: 0.60,
            e_store_nj: 0.60,
            e_shared_nj: 0.90,
            e_branch_nj: 0.50,
            e_barrier_nj: 0.20,
            e_overhead_nj: 0.90,
            e_l1_access_nj: 0.15,
            e_l2_access_nj: 0.70,
            e_dram_nj: 15.0,
            clock_coeff_w_per_v2hz: 1.42e-9,
            leakage_coeff_w_per_v: 0.762,
            leakage_beta_per_v: 2.0,
            dram_background_w: 0.60,
        }
    }
}

impl Default for PowerModelConfig {
    fn default() -> PowerModelConfig {
        PowerModelConfig::titan_x()
    }
}

/// Per-component energy for one cluster over one epoch.
///
/// # Examples
///
/// ```
/// use gpu_power::{Activity, PowerModel, VfTable};
///
/// let model = PowerModel::titan_x();
/// let table = VfTable::titan_x();
/// let mut a = Activity::default();
/// a.fp_alu = 10_000;
/// a.total_cycles = 11_650;
/// let b = model.epoch_energy(&a, table.default_point(), 10e-6);
/// assert!(b.dynamic().joules() > 0.0);
/// assert!(b.leakage.joules() > 0.0);
/// assert_eq!(b.total(), b.dynamic() + b.leakage + b.memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Switching energy of the execution units (all instruction classes).
    pub compute: Energy,
    /// Fetch/decode/register-file overhead energy.
    pub overhead: Energy,
    /// Clock-tree and pipeline overhead energy.
    pub clock: Energy,
    /// Leakage energy.
    pub leakage: Energy,
    /// L1 cache access energy.
    pub l1: Energy,
    /// L2 cache access energy.
    pub l2: Energy,
    /// DRAM transaction energy.
    pub dram: Energy,
    /// DRAM background energy.
    pub dram_background: Energy,
}

impl EnergyBreakdown {
    /// Total energy across every component.
    pub fn total(&self) -> Energy {
        self.dynamic() + self.leakage + self.memory()
    }

    /// Core dynamic energy (compute + overhead + clock).
    pub fn dynamic(&self) -> Energy {
        self.compute + self.overhead + self.clock
    }

    /// Memory-hierarchy energy (L1 + L2 + DRAM dynamic + DRAM background).
    pub fn memory(&self) -> Energy {
        self.l1 + self.l2 + self.dram + self.dram_background
    }

    /// Average power over `duration_s` seconds.
    pub fn average_power(&self, duration_s: f64) -> Power {
        self.total() / duration_s
    }

    /// Sums two breakdowns component-wise.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.compute += other.compute;
        self.overhead += other.overhead;
        self.clock += other.clock;
        self.leakage += other.leakage;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.dram += other.dram;
        self.dram_background += other.dram_background;
    }
}

/// Converts per-epoch [`Activity`] into an [`EnergyBreakdown`] at a given
/// [`OperatingPoint`].
///
/// # Examples
///
/// ```
/// use gpu_power::{Activity, PowerModel, VfTable};
///
/// let model = PowerModel::titan_x();
/// let table = VfTable::titan_x();
/// let mut a = Activity::default();
/// a.int_alu = 1_000;
/// a.total_cycles = 6_830;
///
/// // The same work costs less switching energy at lower voltage.
/// let hi = model.epoch_energy(&a, table.max_point(), 10e-6);
/// let lo = model.epoch_energy(&a, table.min_point(), 10e-6);
/// assert!(lo.compute < hi.compute);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    config: PowerModelConfig,
}

impl PowerModel {
    /// Creates a power model from explicit constants.
    pub fn new(config: PowerModelConfig) -> PowerModel {
        PowerModel { config }
    }

    /// Creates the GTX-Titan-X-calibrated model used throughout the
    /// reproduction.
    pub fn titan_x() -> PowerModel {
        PowerModel::new(PowerModelConfig::titan_x())
    }

    /// The model constants.
    pub fn config(&self) -> &PowerModelConfig {
        &self.config
    }

    /// Energy consumed by one cluster over one epoch of `duration_s` seconds
    /// at operating point `op`, given the work in `activity`.
    pub fn epoch_energy(
        &self,
        activity: &Activity,
        op: OperatingPoint,
        duration_s: f64,
    ) -> EnergyBreakdown {
        obs::counter!("power.epoch_energy_evals").inc(1);
        let c = &self.config;
        let v = op.voltage_v();
        let v_scale = (v / c.nominal_voltage_v).powi(2);

        let nj = |count: u64, e_nj: f64| Energy::from_nanojoules(count as f64 * e_nj * v_scale);

        let compute = nj(activity.int_alu, c.e_int_alu_nj)
            + nj(activity.fp_alu, c.e_fp_alu_nj)
            + nj(activity.sfu, c.e_sfu_nj)
            + nj(activity.load, c.e_load_nj)
            + nj(activity.store, c.e_store_nj)
            + nj(activity.shared, c.e_shared_nj)
            + nj(activity.branch, c.e_branch_nj)
            + nj(activity.barrier, c.e_barrier_nj);
        let overhead = nj(activity.total_instructions(), c.e_overhead_nj);

        let clock_power = Power::from_watts(c.clock_coeff_w_per_v2hz * v * v * op.freq_hz());
        let clock = clock_power.over_seconds(duration_s);

        let leakage_power = Power::from_watts(
            c.leakage_coeff_w_per_v * v * (c.leakage_beta_per_v * (v - 1.0)).exp(),
        );
        let leakage = leakage_power.over_seconds(duration_s);

        // Cache/DRAM arrays run on their own voltage domain; their access
        // energy does not scale with core V/f.
        let l1 = Energy::from_nanojoules(activity.l1_accesses as f64 * c.e_l1_access_nj);
        let l2 = Energy::from_nanojoules(activity.l2_accesses as f64 * c.e_l2_access_nj);
        let dram = Energy::from_nanojoules(
            (activity.dram_reads + activity.dram_writes) as f64 * c.e_dram_nj,
        );
        let dram_background = Power::from_watts(c.dram_background_w).over_seconds(duration_s);

        EnergyBreakdown { compute, overhead, clock, leakage, l1, l2, dram, dram_background }
    }
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VfTable;

    const EPOCH_S: f64 = 10e-6;

    fn busy_activity(cycles: u64) -> Activity {
        Activity {
            int_alu: cycles / 3,
            fp_alu: cycles / 3,
            load: cycles / 10,
            store: cycles / 20,
            l1_accesses: cycles / 8,
            l1_misses: cycles / 40,
            l2_accesses: cycles / 40,
            l2_misses: cycles / 200,
            dram_reads: cycles / 200,
            active_cycles: cycles * 8 / 10,
            total_cycles: cycles,
            ..Activity::default()
        }
    }

    #[test]
    fn energy_is_positive_and_finite() {
        let model = PowerModel::titan_x();
        let table = VfTable::titan_x();
        for op in table.iter() {
            let cycles = op.cycles_in(EPOCH_S);
            let b = model.epoch_energy(&busy_activity(cycles), op, EPOCH_S);
            assert!(b.total().is_physical());
            assert!(b.total().joules() > 0.0);
        }
    }

    #[test]
    fn voltage_scaling_reduces_switching_energy_for_fixed_work() {
        let model = PowerModel::titan_x();
        let table = VfTable::titan_x();
        let work = busy_activity(10_000);
        let hi = model.epoch_energy(&work, table.max_point(), EPOCH_S);
        let lo = model.epoch_energy(&work, table.min_point(), EPOCH_S);
        assert!(lo.compute < hi.compute);
        assert!(lo.overhead < hi.overhead);
        assert!(lo.clock < hi.clock);
        assert!(lo.leakage < hi.leakage);
        // Memory energy is tied to traffic, not core V/f.
        assert_eq!(lo.l1, hi.l1);
        assert_eq!(lo.dram, hi.dram);
    }

    #[test]
    fn full_gpu_power_in_titan_x_envelope() {
        // 24 busy clusters at the default point should land well inside the
        // 250 W TDP but clearly above idle.
        let model = PowerModel::titan_x();
        let table = VfTable::titan_x();
        let op = table.default_point();
        let cycles = op.cycles_in(EPOCH_S);
        let b = model.epoch_energy(&busy_activity(cycles), op, EPOCH_S);
        let per_cluster = b.average_power(EPOCH_S).watts();
        let total = per_cluster * 24.0;
        assert!(
            (60.0..250.0).contains(&total),
            "modeled GPU power {total:.1} W outside plausible envelope"
        );
    }

    #[test]
    fn idle_cluster_still_burns_static_and_clock_power() {
        let model = PowerModel::titan_x();
        let table = VfTable::titan_x();
        let op = table.default_point();
        let idle = Activity { total_cycles: op.cycles_in(EPOCH_S), ..Activity::default() };
        let b = model.epoch_energy(&idle, op, EPOCH_S);
        assert_eq!(b.compute, Energy::ZERO);
        assert!(b.clock.joules() > 0.0);
        assert!(b.leakage.joules() > 0.0);
    }

    #[test]
    fn breakdown_accumulate_matches_sum() {
        let model = PowerModel::titan_x();
        let table = VfTable::titan_x();
        let a = busy_activity(5_000);
        let one = model.epoch_energy(&a, table.default_point(), EPOCH_S);
        let mut acc = EnergyBreakdown::default();
        acc.accumulate(&one);
        acc.accumulate(&one);
        let diff = (acc.total().joules() - 2.0 * one.total().joules()).abs();
        assert!(diff < 1e-15);
    }

    #[test]
    fn leakage_is_frequency_independent() {
        let model = PowerModel::titan_x();
        let a = Activity::default();
        let op_a = OperatingPoint::new(1.0, 683.0);
        let op_b = OperatingPoint::new(1.0, 975.0);
        let ea = model.epoch_energy(&a, op_a, EPOCH_S);
        let eb = model.epoch_energy(&a, op_b, EPOCH_S);
        assert_eq!(ea.leakage, eb.leakage);
        assert!(eb.clock > ea.clock);
    }
}
