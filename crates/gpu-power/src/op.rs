//! Voltage/frequency operating points and the DVFS table.
//!
//! The SSMDVFS paper evaluates on an Nvidia GTX-Titan-X-class GPU with six
//! operating points taken from Guerreiro et al. (HPCA 2018), ranging from the
//! default (1.155 V, 1165 MHz) down to (1.0 V, 683 MHz). [`VfTable::titan_x`]
//! reproduces that table.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PowerError;

/// A single voltage/frequency operating point.
///
/// # Examples
///
/// ```
/// use gpu_power::OperatingPoint;
///
/// let op = OperatingPoint::new(1.0, 683.0);
/// assert_eq!(op.voltage_v(), 1.0);
/// assert_eq!(op.freq_mhz(), 683.0);
/// assert!((op.cycle_time_ns() - 1.464).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    voltage_v: f64,
    freq_mhz: f64,
}

impl OperatingPoint {
    /// Creates an operating point from a core voltage in volts and a core
    /// frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive or non-finite.
    pub fn new(voltage_v: f64, freq_mhz: f64) -> OperatingPoint {
        assert!(
            voltage_v.is_finite() && voltage_v > 0.0,
            "voltage must be positive and finite, got {voltage_v}"
        );
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "frequency must be positive and finite, got {freq_mhz}"
        );
        OperatingPoint { voltage_v, freq_mhz }
    }

    /// Core voltage in volts.
    pub fn voltage_v(self) -> f64 {
        self.voltage_v
    }

    /// Core frequency in MHz.
    pub fn freq_mhz(self) -> f64 {
        self.freq_mhz
    }

    /// Core frequency in Hz.
    pub fn freq_hz(self) -> f64 {
        self.freq_mhz * 1e6
    }

    /// Duration of one core clock cycle in nanoseconds.
    pub fn cycle_time_ns(self) -> f64 {
        1e3 / self.freq_mhz
    }

    /// Duration of one core clock cycle in picoseconds.
    pub fn cycle_time_ps(self) -> f64 {
        1e6 / self.freq_mhz
    }

    /// Number of whole core cycles that fit in `duration_s` seconds.
    pub fn cycles_in(self, duration_s: f64) -> u64 {
        (duration_s * self.freq_hz()).floor() as u64
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3} V, {:.0} MHz)", self.voltage_v, self.freq_mhz)
    }
}

/// An ordered table of DVFS operating points, lowest frequency first.
///
/// The table is the action space of every DVFS governor in this workspace:
/// governors return an index into it.
///
/// # Examples
///
/// ```
/// use gpu_power::VfTable;
///
/// let table = VfTable::titan_x();
/// assert_eq!(table.len(), 6);
/// assert_eq!(table.default_index(), 5);
/// assert_eq!(table.default_point().freq_mhz(), 1165.0);
/// assert_eq!(table.point(0).freq_mhz(), 683.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    points: Vec<OperatingPoint>,
    default_index: usize,
}

impl VfTable {
    /// Creates a table from a list of points sorted by ascending frequency,
    /// with `default_index` naming the point a cluster boots at.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, not sorted by ascending frequency, or if
    /// `default_index` is out of range. Library code that must not abort
    /// uses [`VfTable::try_new`] instead.
    pub fn new(points: Vec<OperatingPoint>, default_index: usize) -> VfTable {
        match VfTable::try_new(points, default_index) {
            Ok(table) => table,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`VfTable::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`PowerError`] if the list is empty, not sorted by strictly
    /// ascending frequency, or if `default_index` is out of range.
    pub fn try_new(
        points: Vec<OperatingPoint>,
        default_index: usize,
    ) -> Result<VfTable, PowerError> {
        let table = VfTable { points, default_index };
        table.validate()?;
        Ok(table)
    }

    /// Checks the table invariants: non-empty, strictly ascending
    /// frequencies, in-range default index.
    ///
    /// Deserialization bypasses [`VfTable::new`], so consumers that accept
    /// tables from disk or over the wire (governors, the CLI) validate once
    /// up front instead of indexing blind.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`PowerError`].
    pub fn validate(&self) -> Result<(), PowerError> {
        if self.points.is_empty() {
            return Err(PowerError::EmptyVfTable);
        }
        if !self.points.windows(2).all(|w| w[0].freq_mhz() < w[1].freq_mhz()) {
            return Err(PowerError::UnsortedVfTable);
        }
        if self.default_index >= self.points.len() {
            return Err(PowerError::BadDefaultIndex {
                index: self.default_index,
                len: self.points.len(),
            });
        }
        Ok(())
    }

    /// The six GTX Titan X operating points used in the paper
    /// (Guerreiro et al., HPCA 2018), highest point being the default.
    pub fn titan_x() -> VfTable {
        let points = vec![
            OperatingPoint::new(1.000, 683.0),
            OperatingPoint::new(1.000, 780.0),
            OperatingPoint::new(1.000, 878.0),
            OperatingPoint::new(1.000, 975.0),
            OperatingPoint::new(1.100, 1100.0),
            OperatingPoint::new(1.155, 1165.0),
        ];
        let default_index = points.len() - 1;
        VfTable::new(points, default_index)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the table has no points (never true for a
    /// constructed table, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn point(&self, index: usize) -> OperatingPoint {
        self.points[index]
    }

    /// The operating point at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<OperatingPoint> {
        self.points.get(index).copied()
    }

    /// Index of the default (boot) operating point.
    pub fn default_index(&self) -> usize {
        self.default_index
    }

    /// The default (boot) operating point.
    pub fn default_point(&self) -> OperatingPoint {
        self.points[self.default_index]
    }

    /// The lowest-frequency point.
    pub fn min_point(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The highest-frequency point.
    pub fn max_point(&self) -> OperatingPoint {
        self.points[self.points.len() - 1]
    }

    /// Iterates over the points in ascending frequency order.
    pub fn iter(&self) -> impl Iterator<Item = OperatingPoint> + '_ {
        self.points.iter().copied()
    }

    /// Frequency of `index` relative to the default frequency, in (0, 1].
    pub fn relative_freq(&self, index: usize) -> f64 {
        self.points[index].freq_mhz() / self.default_point().freq_mhz()
    }

    /// Index of the slowest point whose frequency ratio (vs. the default)
    /// is at least `min_ratio`. Clamps to the fastest point if none qualify.
    pub fn slowest_at_least(&self, min_ratio: f64) -> usize {
        for (i, _) in self.points.iter().enumerate() {
            if self.relative_freq(i) >= min_ratio {
                return i;
            }
        }
        self.points.len() - 1
    }
}

impl Default for VfTable {
    fn default() -> VfTable {
        VfTable::titan_x()
    }
}

impl fmt::Display for VfTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VfTable[")?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i == self.default_index {
                write!(f, "*{p}")?;
            } else {
                write!(f, "{p}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_paper() {
        let t = VfTable::titan_x();
        assert_eq!(t.len(), 6);
        assert_eq!(t.min_point().freq_mhz(), 683.0);
        assert_eq!(t.min_point().voltage_v(), 1.0);
        assert_eq!(t.max_point().freq_mhz(), 1165.0);
        assert_eq!(t.max_point().voltage_v(), 1.155);
        assert_eq!(t.default_index(), 5);
    }

    #[test]
    fn cycle_time() {
        let op = OperatingPoint::new(1.0, 1000.0);
        assert!((op.cycle_time_ns() - 1.0).abs() < 1e-12);
        assert!((op.cycle_time_ps() - 1000.0).abs() < 1e-9);
        assert_eq!(op.cycles_in(1e-6), 1000);
    }

    #[test]
    fn relative_freq_ordering() {
        let t = VfTable::titan_x();
        let ratios: Vec<f64> = (0..t.len()).map(|i| t.relative_freq(i)).collect();
        assert!(ratios.windows(2).all(|w| w[0] < w[1]));
        assert!((ratios[5] - 1.0).abs() < 1e-12);
        assert!((ratios[0] - 683.0 / 1165.0).abs() < 1e-12);
    }

    #[test]
    fn slowest_at_least_picks_minimum_satisfying() {
        let t = VfTable::titan_x();
        // 90% of 1165 MHz is 1048.5 MHz; the slowest point at or above that
        // ratio is 1100 MHz (index 4).
        assert_eq!(t.slowest_at_least(0.90), 4);
        assert_eq!(t.slowest_at_least(0.0), 0);
        // Impossible ratios clamp to the fastest point.
        assert_eq!(t.slowest_at_least(1.5), 5);
    }

    #[test]
    #[should_panic(expected = "ascending frequency")]
    fn unsorted_table_rejected() {
        VfTable::new(vec![OperatingPoint::new(1.0, 800.0), OperatingPoint::new(1.0, 700.0)], 0);
    }

    #[test]
    #[should_panic(expected = "voltage must be positive")]
    fn bad_voltage_rejected() {
        OperatingPoint::new(0.0, 1000.0);
    }

    #[test]
    fn display_marks_default() {
        let s = format!("{}", VfTable::titan_x());
        assert!(s.contains("*(1.155 V, 1165 MHz)"));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(VfTable::try_new(vec![], 0), Err(PowerError::EmptyVfTable));
        assert_eq!(
            VfTable::try_new(
                vec![OperatingPoint::new(1.0, 800.0), OperatingPoint::new(1.0, 700.0)],
                0
            ),
            Err(PowerError::UnsortedVfTable)
        );
        assert_eq!(
            VfTable::try_new(vec![OperatingPoint::new(1.0, 800.0)], 3),
            Err(PowerError::BadDefaultIndex { index: 3, len: 1 })
        );
        assert!(VfTable::try_new(vec![OperatingPoint::new(1.0, 800.0)], 0).is_ok());
    }

    #[test]
    fn validate_catches_deserialized_empty_table() {
        // Deserialization bypasses `new`, so an empty table can reach a
        // consumer; `validate` is the up-front gate.
        let empty = VfTable { points: vec![], default_index: 0 };
        assert_eq!(empty.validate(), Err(PowerError::EmptyVfTable));
        assert!(VfTable::titan_x().validate().is_ok());
    }
}
