//! Typed errors for the power-model crate.
//!
//! Library code in this workspace reports contract violations as values
//! instead of panicking, so a long profiling sweep can degrade gracefully
//! (see `docs/robustness.md`). [`PowerError`] is the crate-local error type;
//! the `ssmdvfs` crate converts it into its workspace-wide hierarchy.

use std::fmt;

/// An invalid input to one of the power-model constructors or reports.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// An [`crate::EdpReport`] was built with a non-positive or non-finite
    /// execution time.
    NonPositiveTime(f64),
    /// A normalization was attempted against a baseline whose divisor
    /// (energy, EDP or time) is zero or non-finite, which would silently
    /// propagate `inf`/`NaN` into serialized reports.
    DegenerateBaseline {
        /// Which baseline quantity was degenerate (`"edp"`, `"time"`, …).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A [`crate::VfTable`] with no operating points.
    EmptyVfTable,
    /// A [`crate::VfTable`] whose points are not sorted by strictly
    /// ascending frequency.
    UnsortedVfTable,
    /// A [`crate::VfTable`] default index outside the table.
    BadDefaultIndex {
        /// The requested default index.
        index: usize,
        /// Number of points in the table.
        len: usize,
    },
    /// An operating-point index outside the table.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of points in the table.
        len: usize,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::NonPositiveTime(t) => {
                write!(f, "execution time must be positive and finite, got {t}")
            }
            PowerError::DegenerateBaseline { what, value } => {
                write!(f, "baseline {what} must be positive and finite, got {value}")
            }
            PowerError::EmptyVfTable => write!(f, "a VfTable needs at least one point"),
            PowerError::UnsortedVfTable => {
                write!(f, "operating points must be sorted by strictly ascending frequency")
            }
            PowerError::BadDefaultIndex { index, len } => {
                write!(f, "default index {index} out of range for {len} points")
            }
            PowerError::IndexOutOfRange { index, len } => {
                write!(f, "operating-point index {index} out of range for {len} points")
            }
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(PowerError::NonPositiveTime(0.0).to_string().contains("positive"));
        assert!(PowerError::EmptyVfTable.to_string().contains("at least one point"));
        assert!(PowerError::UnsortedVfTable.to_string().contains("ascending frequency"));
        let e = PowerError::DegenerateBaseline { what: "edp", value: 0.0 };
        assert!(e.to_string().contains("edp"));
        let e = PowerError::IndexOutOfRange { index: 9, len: 6 };
        assert!(e.to_string().contains('9'));
        let e = PowerError::BadDefaultIndex { index: 7, len: 6 };
        assert!(e.to_string().contains("default index 7"));
    }
}
