//! The per-epoch activity vector consumed by the power model.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Everything one cluster did during one DVFS epoch, as far as energy is
/// concerned.
///
/// The timing simulator fills one of these per cluster per epoch; the
/// [`PowerModel`](crate::PowerModel) converts it into an
/// [`EnergyBreakdown`](crate::EnergyBreakdown).
///
/// # Examples
///
/// ```
/// use gpu_power::Activity;
///
/// let mut a = Activity::default();
/// a.int_alu = 100;
/// a.l1_accesses = 20;
/// assert_eq!(a.total_instructions(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// Integer ALU warp-instructions executed.
    pub int_alu: u64,
    /// FP32 warp-instructions executed.
    pub fp_alu: u64,
    /// Special-function-unit warp-instructions executed.
    pub sfu: u64,
    /// Global/local memory load warp-instructions executed.
    pub load: u64,
    /// Global/local memory store warp-instructions executed.
    pub store: u64,
    /// Shared-memory warp-instructions executed.
    pub shared: u64,
    /// Branch / control warp-instructions executed.
    pub branch: u64,
    /// Barrier / synchronization warp-instructions executed.
    pub barrier: u64,
    /// L1 data cache accesses (reads + writes).
    pub l1_accesses: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// L2 accesses from this cluster's slice.
    pub l2_accesses: u64,
    /// L2 misses (DRAM fills) from this cluster's slice.
    pub l2_misses: u64,
    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
    /// Core cycles in which at least one instruction issued.
    pub active_cycles: u64,
    /// Total core cycles elapsed in the epoch at this cluster's frequency.
    pub total_cycles: u64,
}

impl Activity {
    /// Total warp-instructions of all classes executed during the epoch.
    pub fn total_instructions(&self) -> u64 {
        self.int_alu
            + self.fp_alu
            + self.sfu
            + self.load
            + self.store
            + self.shared
            + self.branch
            + self.barrier
    }

    /// Fraction of cycles in which the cluster issued work, in [0, 1].
    /// Returns 0 when no cycles elapsed.
    pub fn duty_factor(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.total_cycles as f64
        }
    }
}

impl Add for Activity {
    type Output = Activity;
    fn add(self, rhs: Activity) -> Activity {
        Activity {
            int_alu: self.int_alu + rhs.int_alu,
            fp_alu: self.fp_alu + rhs.fp_alu,
            sfu: self.sfu + rhs.sfu,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            shared: self.shared + rhs.shared,
            branch: self.branch + rhs.branch,
            barrier: self.barrier + rhs.barrier,
            l1_accesses: self.l1_accesses + rhs.l1_accesses,
            l1_misses: self.l1_misses + rhs.l1_misses,
            l2_accesses: self.l2_accesses + rhs.l2_accesses,
            l2_misses: self.l2_misses + rhs.l2_misses,
            dram_reads: self.dram_reads + rhs.dram_reads,
            dram_writes: self.dram_writes + rhs.dram_writes,
            active_cycles: self.active_cycles + rhs.active_cycles,
            total_cycles: self.total_cycles + rhs.total_cycles,
        }
    }
}

impl AddAssign for Activity {
    fn add_assign(&mut self, rhs: Activity) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Activity {
        Activity {
            int_alu: 1,
            fp_alu: 2,
            sfu: 3,
            load: 4,
            store: 5,
            shared: 6,
            branch: 7,
            barrier: 8,
            l1_accesses: 9,
            l1_misses: 10,
            l2_accesses: 11,
            l2_misses: 12,
            dram_reads: 13,
            dram_writes: 14,
            active_cycles: 15,
            total_cycles: 30,
        }
    }

    #[test]
    fn total_instructions_sums_all_classes() {
        assert_eq!(sample().total_instructions(), 36);
    }

    #[test]
    fn duty_factor() {
        assert_eq!(sample().duty_factor(), 0.5);
        assert_eq!(Activity::default().duty_factor(), 0.0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let two = sample() + sample();
        assert_eq!(two.total_instructions(), 72);
        assert_eq!(two.total_cycles, 60);
        let mut acc = sample();
        acc += sample();
        assert_eq!(acc, two);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn duty_factor_saturates_at_one() {
        let a = Activity { active_cycles: 10, total_cycles: 10, ..Activity::default() };
        assert_eq!(a.duty_factor(), 1.0);
    }

    #[test]
    fn default_is_all_zero() {
        let a = Activity::default();
        assert_eq!(a.total_instructions(), 0);
        assert_eq!(a.duty_factor(), 0.0);
    }
}
