//! Strongly typed energy and power quantities.
//!
//! Joules and watts are easy to mix up when a model juggles per-epoch energy,
//! per-epoch average power and instantaneous component power. The [`Energy`]
//! and [`Power`] newtypes keep the units straight at compile time while
//! remaining thin wrappers around `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An amount of energy in joules.
///
/// # Examples
///
/// ```
/// use gpu_power::{Energy, Power};
///
/// let e = Energy::from_joules(2.0) + Energy::from_joules(3.0);
/// assert_eq!(e.joules(), 5.0);
/// // Average power over 10 seconds.
/// let p: Power = e / 10.0;
/// assert_eq!(p.watts(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from a value in joules.
    pub fn from_joules(joules: f64) -> Energy {
        Energy(joules)
    }

    /// Creates an energy from a value in picojoules.
    pub fn from_picojoules(pj: f64) -> Energy {
        Energy(pj * 1e-12)
    }

    /// Creates an energy from a value in nanojoules.
    pub fn from_nanojoules(nj: f64) -> Energy {
        Energy(nj * 1e-9)
    }

    /// Returns the energy in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in millijoules.
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the energy in microjoules.
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns `true` if the value is finite and non-negative.
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e-3 {
            write!(f, "{:.6} J", self.0)
        } else if self.0.abs() >= 1e-6 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else {
            write!(f, "{:.3} µJ", self.0 * 1e6)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

/// Dividing energy by time (seconds) yields average power.
impl Div<f64> for Energy {
    type Output = Power;
    fn div(self, seconds: f64) -> Power {
        Power(self.0 / seconds)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

/// A power in watts.
///
/// # Examples
///
/// ```
/// use gpu_power::Power;
///
/// // 2 W applied for 5 seconds is 10 J.
/// let e = Power::from_watts(2.0).over_seconds(5.0);
/// assert_eq!(e.joules(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from a value in watts.
    pub fn from_watts(watts: f64) -> Power {
        Power(watts)
    }

    /// Creates a power from a value in milliwatts.
    pub fn from_milliwatts(mw: f64) -> Power {
        Power(mw * 1e-3)
    }

    /// Returns the power in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Returns the power in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Integrates this power over a duration in seconds, yielding energy.
    pub fn over_seconds(self, seconds: f64) -> Energy {
        Energy(self.0 * seconds)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.3} W", self.0)
        } else {
            write!(f, "{:.3} mW", self.0 * 1e3)
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_joules(1.5);
        let b = Energy::from_joules(0.5);
        assert_eq!((a + b).joules(), 2.0);
        assert_eq!((a - b).joules(), 1.0);
        assert_eq!((a * 2.0).joules(), 3.0);
    }

    #[test]
    fn unit_conversions() {
        assert!((Energy::from_picojoules(1e12).joules() - 1.0).abs() < 1e-12);
        assert!((Energy::from_nanojoules(1e9).joules() - 1.0).abs() < 1e-12);
        assert!((Power::from_milliwatts(1500.0).watts() - 1.5).abs() < 1e-12);
        assert!((Energy::from_joules(0.002).millijoules() - 2.0).abs() < 1e-12);
        assert!((Energy::from_joules(2e-6).microjoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_energy_roundtrip() {
        let p = Power::from_watts(3.0);
        let e = p.over_seconds(4.0);
        assert_eq!(e.joules(), 12.0);
        let back = e / 4.0;
        assert_eq!(back.watts(), 3.0);
    }

    #[test]
    fn sums() {
        let total: Energy = (0..4).map(|i| Energy::from_joules(i as f64)).sum();
        assert_eq!(total.joules(), 6.0);
        let total: Power = (0..4).map(|i| Power::from_watts(i as f64)).sum();
        assert_eq!(total.watts(), 6.0);
    }

    #[test]
    fn physical_check() {
        assert!(Energy::from_joules(1.0).is_physical());
        assert!(Energy::ZERO.is_physical());
        assert!(!Energy::from_joules(-1.0).is_physical());
        assert!(!Energy::from_joules(f64::NAN).is_physical());
    }

    #[test]
    fn display_scales() {
        assert!(format!("{}", Energy::from_joules(0.5)).contains('J'));
        assert!(format!("{}", Energy::from_joules(5e-4)).contains("mJ"));
        assert!(format!("{}", Energy::from_joules(5e-7)).contains("µJ"));
        assert!(format!("{}", Power::from_watts(0.5)).contains("mW"));
        assert!(format!("{}", Power::from_watts(2.0)).contains('W'));
    }
}
