//! Technology-node scaling in the style of DeepScaleTool.
//!
//! Section V-D of the paper synthesizes the SSMDVFS inference module at
//! 65 nm TSMC and scales area and power to 28 nm (the GPU's node) with
//! DeepScaleTool (Sarangi & Baas, ISCAS 2021). This module provides the same
//! kind of published-constant scaling so the [`asic`
//! model](https://docs.rs/ssmdvfs) can report 28 nm numbers.

use serde::{Deserialize, Serialize};

/// Scales area, capacitance-driven energy and voltage between process nodes
/// using tabulated per-node factors (relative to a 65 nm reference).
///
/// The factors follow the general-purpose scaling tables popularized by
/// DeepScaleTool: area shrinks roughly with the square of the drawn feature
/// ratio (with a density saturation at the newer end), and switching energy
/// shrinks with capacitance and V².
///
/// # Examples
///
/// ```
/// use gpu_power::TechScaler;
///
/// let scaler = TechScaler::new(65.0, 28.0)?;
/// // A 0.04 mm² block at 65 nm becomes much smaller at 28 nm.
/// let a28 = scaler.scale_area_mm2(0.04);
/// assert!(a28 < 0.04 && a28 > 0.0);
/// # Ok::<(), gpu_power::UnsupportedNodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechScaler {
    from_nm: f64,
    to_nm: f64,
    area_factor: f64,
    energy_factor: f64,
}

/// Error returned when a requested process node is not in the scaling table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedNodeError {
    node_nm: u32,
}

impl std::fmt::Display for UnsupportedNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "process node {} nm is not in the scaling table", self.node_nm)
    }
}

impl std::error::Error for UnsupportedNodeError {}

/// `(node_nm, relative_area, relative_switching_energy)` vs. the 65 nm
/// reference. Derived from published logic-density and energy-per-op
/// trends (DeepScaleTool's calibrated trajectory).
const NODE_TABLE: &[(f64, f64, f64)] = &[
    (90.0, 1.90, 1.75),
    (65.0, 1.00, 1.00),
    (45.0, 0.52, 0.62),
    (40.0, 0.42, 0.55),
    (32.0, 0.28, 0.42),
    (28.0, 0.22, 0.35),
    (22.0, 0.15, 0.28),
    (16.0, 0.10, 0.20),
    (14.0, 0.088, 0.18),
    (7.0, 0.035, 0.095),
];

fn lookup(node_nm: f64) -> Result<(f64, f64), UnsupportedNodeError> {
    NODE_TABLE
        .iter()
        .find(|(n, _, _)| (*n - node_nm).abs() < 1e-9)
        .map(|(_, a, e)| (*a, *e))
        .ok_or(UnsupportedNodeError { node_nm: node_nm as u32 })
}

impl TechScaler {
    /// Creates a scaler from `from_nm` to `to_nm`.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedNodeError`] if either node is not one of the
    /// tabulated nodes (90, 65, 45, 40, 32, 28, 22, 16, 14, 7 nm).
    pub fn new(from_nm: f64, to_nm: f64) -> Result<TechScaler, UnsupportedNodeError> {
        let (a_from, e_from) = lookup(from_nm)?;
        let (a_to, e_to) = lookup(to_nm)?;
        Ok(TechScaler { from_nm, to_nm, area_factor: a_to / a_from, energy_factor: e_to / e_from })
    }

    /// The scaler used in the paper: 65 nm synthesis results → 28 nm.
    pub fn tsmc65_to_28() -> TechScaler {
        TechScaler::new(65.0, 28.0).expect("65 nm and 28 nm are tabulated nodes")
    }

    /// Source node in nanometers.
    pub fn from_nm(&self) -> f64 {
        self.from_nm
    }

    /// Destination node in nanometers.
    pub fn to_nm(&self) -> f64 {
        self.to_nm
    }

    /// Multiplicative area factor applied when moving between the nodes.
    pub fn area_factor(&self) -> f64 {
        self.area_factor
    }

    /// Multiplicative switching-energy factor between the nodes.
    pub fn energy_factor(&self) -> f64 {
        self.energy_factor
    }

    /// Scales a silicon area in mm².
    pub fn scale_area_mm2(&self, area_mm2: f64) -> f64 {
        area_mm2 * self.area_factor
    }

    /// Scales a switching energy (or, at fixed frequency, dynamic power).
    pub fn scale_energy(&self, energy: f64) -> f64 {
        energy * self.energy_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scaling() {
        let s = TechScaler::new(65.0, 65.0).unwrap();
        assert_eq!(s.area_factor(), 1.0);
        assert_eq!(s.energy_factor(), 1.0);
    }

    #[test]
    fn paper_node_pair() {
        let s = TechScaler::tsmc65_to_28();
        assert!(s.area_factor() < 0.3, "28 nm should be ~4.5x denser than 65 nm");
        assert!(s.energy_factor() < 0.5);
        assert_eq!(s.from_nm(), 65.0);
        assert_eq!(s.to_nm(), 28.0);
    }

    #[test]
    fn scaling_down_then_up_roundtrips() {
        let down = TechScaler::new(65.0, 28.0).unwrap();
        let up = TechScaler::new(28.0, 65.0).unwrap();
        let a = down.scale_area_mm2(up.scale_area_mm2(1.0));
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let err = TechScaler::new(65.0, 3.0).unwrap_err();
        assert!(err.to_string().contains("3 nm"));
    }

    #[test]
    fn newer_nodes_are_smaller_and_cheaper() {
        let mut prev_area = f64::INFINITY;
        let mut prev_energy = f64::INFINITY;
        for (_, a, e) in NODE_TABLE {
            assert!(*a < prev_area);
            assert!(*e < prev_energy);
            prev_area = *a;
            prev_energy = *e;
        }
    }
}
