//! Component-level GPU power, energy and EDP modeling.
//!
//! This crate is the [McPAT] stand-in for the SSMDVFS reproduction. Its job is
//! the same as McPAT's in the paper: given the activity a processor cluster
//! performed during one DVFS epoch (instruction counts by class, cache and
//! DRAM traffic, active cycles) and the voltage/frequency operating point the
//! cluster ran at, produce the energy that epoch consumed, broken down by
//! component, so that controllers can optimize the energy-delay product (EDP).
//!
//! The model captures the first-order physics that make DVFS interesting:
//!
//! * switching energy per operation scales with `V²`,
//! * clock-tree and pipeline overhead power scales with `V²·f`,
//! * leakage power grows superlinearly with `V` and does not scale with `f`,
//! * memory (L2/DRAM) energy is tied to traffic, not to core frequency.
//!
//! # Examples
//!
//! ```
//! use gpu_power::{Activity, PowerModel, VfTable};
//!
//! let table = VfTable::titan_x();
//! let model = PowerModel::titan_x();
//! let mut activity = Activity::default();
//! activity.int_alu = 5_000;
//! activity.fp_alu = 3_000;
//! activity.active_cycles = 9_000;
//! activity.total_cycles = 11_650;
//!
//! // Energy over one 10 µs epoch at the default operating point.
//! let breakdown = model.epoch_energy(&activity, table.default_point(), 10e-6);
//! assert!(breakdown.total().joules() > 0.0);
//! ```
//!
//! [McPAT]: https://doi.org/10.1145/1669112.1669172

#![warn(missing_docs)]

mod activity;
mod edp;
mod energy;
mod error;
mod model;
mod op;
mod scaling;

pub use activity::Activity;
pub use edp::EdpReport;
pub use energy::{Energy, Power};
pub use error::PowerError;
pub use model::{EnergyBreakdown, PowerModel, PowerModelConfig};
pub use op::{OperatingPoint, VfTable};
pub use scaling::{TechScaler, UnsupportedNodeError};
