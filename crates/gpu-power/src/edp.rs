//! Energy-delay-product reporting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Energy;

/// The end-of-run energy/performance summary every experiment in the paper is
/// scored on.
///
/// The paper's primary metric is the energy-delay product (EDP = `E · T`);
/// latency (`T` normalized to the baseline run) is reported alongside it to
/// check that performance loss stayed under the preset.
///
/// # Examples
///
/// ```
/// use gpu_power::{EdpReport, Energy};
///
/// let baseline = EdpReport::new(Energy::from_joules(2.0), 1.0, 1_000_000);
/// let tuned = EdpReport::new(Energy::from_joules(1.5), 1.1, 1_000_000);
/// assert!(tuned.edp() < baseline.edp());
/// assert!((tuned.normalized_edp(&baseline) - 0.825).abs() < 1e-12);
/// assert!((tuned.normalized_latency(&baseline) - 1.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdpReport {
    energy: Energy,
    time_s: f64,
    instructions: u64,
}

impl EdpReport {
    /// Creates a report from total energy, total execution time in seconds,
    /// and total instructions executed.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is non-positive or non-finite.
    pub fn new(energy: Energy, time_s: f64, instructions: u64) -> EdpReport {
        assert!(
            time_s.is_finite() && time_s > 0.0,
            "execution time must be positive and finite, got {time_s}"
        );
        EdpReport { energy, time_s, instructions }
    }

    /// Total energy consumed.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Total execution time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Total instructions executed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy.joules() * self.time_s
    }

    /// Energy-delay-squared product in joule-seconds².
    pub fn ed2p(&self) -> f64 {
        self.energy.joules() * self.time_s * self.time_s
    }

    /// This run's EDP divided by the baseline run's EDP (1.0 = parity,
    /// lower is better).
    pub fn normalized_edp(&self, baseline: &EdpReport) -> f64 {
        self.edp() / baseline.edp()
    }

    /// This run's execution time divided by the baseline run's (1.0 =
    /// parity; 1.1 means 10 % performance loss).
    pub fn normalized_latency(&self, baseline: &EdpReport) -> f64 {
        self.time_s / baseline.time_s
    }

    /// Performance loss relative to the baseline, e.g. 0.1 for 10 % slower.
    /// Negative values mean this run was faster than the baseline.
    pub fn performance_loss(&self, baseline: &EdpReport) -> f64 {
        self.normalized_latency(baseline) - 1.0
    }
}

impl fmt::Display for EdpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E = {}, T = {:.3} µs, EDP = {:.3e} J·s, {} instrs",
            self.energy,
            self.time_s * 1e6,
            self.edp(),
            self.instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_and_ed2p() {
        let r = EdpReport::new(Energy::from_joules(3.0), 2.0, 10);
        assert_eq!(r.edp(), 6.0);
        assert_eq!(r.ed2p(), 12.0);
        assert_eq!(r.instructions(), 10);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = EdpReport::new(Energy::from_joules(4.0), 1.0, 100);
        let run = EdpReport::new(Energy::from_joules(3.0), 1.2, 100);
        assert!((run.normalized_edp(&base) - 0.9).abs() < 1e-12);
        assert!((run.performance_loss(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn faster_run_has_negative_loss() {
        let base = EdpReport::new(Energy::from_joules(4.0), 1.0, 100);
        let run = EdpReport::new(Energy::from_joules(4.0), 0.9, 100);
        assert!(run.performance_loss(&base) < 0.0);
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_time_rejected() {
        EdpReport::new(Energy::from_joules(1.0), 0.0, 1);
    }

    #[test]
    fn display_contains_metrics() {
        let r = EdpReport::new(Energy::from_joules(1.0), 3e-4, 42);
        let s = format!("{r}");
        assert!(s.contains("EDP"));
        assert!(s.contains("42 instrs"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn edp_is_order_sensitive_in_both_factors() {
        // Halving energy or halving time halves EDP; ED²P weights time more.
        let base = EdpReport::new(Energy::from_joules(2.0), 2.0, 1);
        let cheap = EdpReport::new(Energy::from_joules(1.0), 2.0, 1);
        let fast = EdpReport::new(Energy::from_joules(2.0), 1.0, 1);
        assert_eq!(cheap.edp(), base.edp() / 2.0);
        assert_eq!(fast.edp(), base.edp() / 2.0);
        assert_eq!(fast.ed2p(), base.ed2p() / 4.0);
    }

    #[test]
    fn self_normalization_is_identity() {
        let r = EdpReport::new(Energy::from_joules(3.0), 0.5, 10);
        assert_eq!(r.normalized_edp(&r), 1.0);
        assert_eq!(r.normalized_latency(&r), 1.0);
        assert_eq!(r.performance_loss(&r), 0.0);
    }
}
