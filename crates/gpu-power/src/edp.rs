//! Energy-delay-product reporting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Energy, PowerError};

/// The end-of-run energy/performance summary every experiment in the paper is
/// scored on.
///
/// The paper's primary metric is the energy-delay product (EDP = `E · T`);
/// latency (`T` normalized to the baseline run) is reported alongside it to
/// check that performance loss stayed under the preset.
///
/// # Examples
///
/// ```
/// use gpu_power::{EdpReport, Energy};
///
/// let baseline = EdpReport::new(Energy::from_joules(2.0), 1.0, 1_000_000);
/// let tuned = EdpReport::new(Energy::from_joules(1.5), 1.1, 1_000_000);
/// assert!(tuned.edp() < baseline.edp());
/// assert!((tuned.normalized_edp(&baseline) - 0.825).abs() < 1e-12);
/// assert!((tuned.normalized_latency(&baseline) - 1.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdpReport {
    energy: Energy,
    time_s: f64,
    instructions: u64,
}

impl EdpReport {
    /// Creates a report from total energy, total execution time in seconds,
    /// and total instructions executed.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is non-positive or non-finite. Library code that
    /// must not abort uses [`EdpReport::try_new`] instead.
    pub fn new(energy: Energy, time_s: f64, instructions: u64) -> EdpReport {
        match EdpReport::try_new(energy, time_s, instructions) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`EdpReport::new`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::NonPositiveTime`] if `time_s` is non-positive
    /// or non-finite.
    pub fn try_new(
        energy: Energy,
        time_s: f64,
        instructions: u64,
    ) -> Result<EdpReport, PowerError> {
        if !(time_s.is_finite() && time_s > 0.0) {
            return Err(PowerError::NonPositiveTime(time_s));
        }
        Ok(EdpReport { energy, time_s, instructions })
    }

    /// Total energy consumed.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Total execution time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Total instructions executed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy.joules() * self.time_s
    }

    /// Energy-delay-squared product in joule-seconds².
    pub fn ed2p(&self) -> f64 {
        self.energy.joules() * self.time_s * self.time_s
    }

    /// This run's EDP divided by the baseline run's EDP (1.0 = parity,
    /// lower is better).
    ///
    /// An idle baseline (zero energy, hence zero EDP) makes the ratio
    /// `inf`/`NaN`; report paths that serialize the value use
    /// [`EdpReport::try_normalized_edp`] so the degenerate case surfaces as
    /// a typed error instead of silently poisoning the output.
    pub fn normalized_edp(&self, baseline: &EdpReport) -> f64 {
        self.edp() / baseline.edp()
    }

    /// Fallible variant of [`EdpReport::normalized_edp`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::DegenerateBaseline`] if the baseline EDP is
    /// zero or non-finite (e.g. a run that consumed no modeled energy).
    pub fn try_normalized_edp(&self, baseline: &EdpReport) -> Result<f64, PowerError> {
        let base = baseline.edp();
        if !(base.is_finite() && base > 0.0) {
            return Err(PowerError::DegenerateBaseline { what: "edp", value: base });
        }
        Ok(self.edp() / base)
    }

    /// This run's execution time divided by the baseline run's (1.0 =
    /// parity; 1.1 means 10 % performance loss).
    pub fn normalized_latency(&self, baseline: &EdpReport) -> f64 {
        self.time_s / baseline.time_s
    }

    /// Fallible variant of [`EdpReport::normalized_latency`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::DegenerateBaseline`] if the baseline time is
    /// zero or non-finite (unreachable for reports built through
    /// [`EdpReport::try_new`], but deserialized reports bypass validation).
    pub fn try_normalized_latency(&self, baseline: &EdpReport) -> Result<f64, PowerError> {
        if !(baseline.time_s.is_finite() && baseline.time_s > 0.0) {
            return Err(PowerError::DegenerateBaseline { what: "time", value: baseline.time_s });
        }
        Ok(self.time_s / baseline.time_s)
    }

    /// Performance loss relative to the baseline, e.g. 0.1 for 10 % slower.
    /// Negative values mean this run was faster than the baseline.
    pub fn performance_loss(&self, baseline: &EdpReport) -> f64 {
        self.normalized_latency(baseline) - 1.0
    }

    /// Fallible variant of [`EdpReport::performance_loss`].
    ///
    /// # Errors
    ///
    /// As [`EdpReport::try_normalized_latency`].
    pub fn try_performance_loss(&self, baseline: &EdpReport) -> Result<f64, PowerError> {
        Ok(self.try_normalized_latency(baseline)? - 1.0)
    }
}

impl fmt::Display for EdpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E = {}, T = {:.3} µs, EDP = {:.3e} J·s, {} instrs",
            self.energy,
            self.time_s * 1e6,
            self.edp(),
            self.instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_and_ed2p() {
        let r = EdpReport::new(Energy::from_joules(3.0), 2.0, 10);
        assert_eq!(r.edp(), 6.0);
        assert_eq!(r.ed2p(), 12.0);
        assert_eq!(r.instructions(), 10);
    }

    #[test]
    fn normalization_against_baseline() {
        let base = EdpReport::new(Energy::from_joules(4.0), 1.0, 100);
        let run = EdpReport::new(Energy::from_joules(3.0), 1.2, 100);
        assert!((run.normalized_edp(&base) - 0.9).abs() < 1e-12);
        assert!((run.performance_loss(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn faster_run_has_negative_loss() {
        let base = EdpReport::new(Energy::from_joules(4.0), 1.0, 100);
        let run = EdpReport::new(Energy::from_joules(4.0), 0.9, 100);
        assert!(run.performance_loss(&base) < 0.0);
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_time_rejected() {
        EdpReport::new(Energy::from_joules(1.0), 0.0, 1);
    }

    #[test]
    fn display_contains_metrics() {
        let r = EdpReport::new(Energy::from_joules(1.0), 3e-4, 42);
        let s = format!("{r}");
        assert!(s.contains("EDP"));
        assert!(s.contains("42 instrs"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn edp_is_order_sensitive_in_both_factors() {
        // Halving energy or halving time halves EDP; ED²P weights time more.
        let base = EdpReport::new(Energy::from_joules(2.0), 2.0, 1);
        let cheap = EdpReport::new(Energy::from_joules(1.0), 2.0, 1);
        let fast = EdpReport::new(Energy::from_joules(2.0), 1.0, 1);
        assert_eq!(cheap.edp(), base.edp() / 2.0);
        assert_eq!(fast.edp(), base.edp() / 2.0);
        assert_eq!(fast.ed2p(), base.ed2p() / 4.0);
    }

    #[test]
    fn self_normalization_is_identity() {
        let r = EdpReport::new(Energy::from_joules(3.0), 0.5, 10);
        assert_eq!(r.normalized_edp(&r), 1.0);
        assert_eq!(r.normalized_latency(&r), 1.0);
        assert_eq!(r.performance_loss(&r), 0.0);
    }

    #[test]
    fn try_new_reports_typed_error() {
        assert_eq!(
            EdpReport::try_new(Energy::from_joules(1.0), 0.0, 1),
            Err(PowerError::NonPositiveTime(0.0))
        );
        assert!(EdpReport::try_new(Energy::from_joules(1.0), f64::NAN, 1).is_err());
        assert!(EdpReport::try_new(Energy::from_joules(1.0), 1.0, 1).is_ok());
    }

    #[test]
    fn zero_energy_baseline_is_a_typed_error_not_inf() {
        // A baseline that consumed no modeled energy has EDP 0; the plain
        // ratio silently serializes `inf`, the guarded path refuses.
        let base = EdpReport::new(Energy::from_joules(0.0), 1.0, 100);
        let run = EdpReport::new(Energy::from_joules(2.0), 1.0, 100);
        assert!(run.normalized_edp(&base).is_infinite(), "unguarded ratio is inf");
        let err = run.try_normalized_edp(&base).unwrap_err();
        assert_eq!(err, PowerError::DegenerateBaseline { what: "edp", value: 0.0 });
        // Latency normalization is fine for this baseline (time is positive).
        assert_eq!(run.try_normalized_latency(&base).unwrap(), 1.0);
        assert_eq!(run.try_performance_loss(&base).unwrap(), 0.0);
    }

    #[test]
    fn degenerate_baseline_time_is_caught() {
        // Deserialization bypasses `try_new`, so a zero-time baseline can
        // exist in memory; the guarded latency path must catch it.
        let bad = EdpReport { energy: Energy::from_joules(1.0), time_s: 0.0, instructions: 1 };
        let run = EdpReport::new(Energy::from_joules(1.0), 1.0, 1);
        assert!(run.try_normalized_latency(&bad).is_err());
        assert!(run.try_performance_loss(&bad).is_err());
    }
}
