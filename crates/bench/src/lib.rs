//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md`'s experiment index). This library holds
//! the plumbing they share: the offline pipeline (data generation →
//! training → compression) with on-disk artifact caching, the governor
//! comparison runner behind Fig. 4, and small table/CSV formatting helpers.

#![warn(missing_docs)]

pub mod pipeline;
pub mod report;
pub mod runner;

pub use pipeline::{artifacts_dir, build_or_load_dataset, train_or_load_model, PipelineConfig};
pub use report::{format_table, write_csv};
pub use runner::{
    compare_on_benchmark, parallel_map, try_compare_on_benchmark, ComparisonRow, GovernorKind,
};
