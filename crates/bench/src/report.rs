//! Plain-text table and CSV output helpers for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Formats a header plus rows as an aligned plain-text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// let t = ssmdvfs_bench::format_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "2".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("bb"));
/// ```
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match the header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (w, cell) in widths.iter().zip(cells) {
            let _ = write!(out, "{cell:<w$}  ");
        }
        let _ = writeln!(out);
    };
    write_row(&mut out, &header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Writes a header plus rows as a CSV file.
///
/// # Panics
///
/// Panics if the file cannot be written or a row's length differs from the
/// header's.
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match the header");
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    fs::write(path.as_ref(), out)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.as_ref().display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "long_header"],
            &[vec!["xxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same column start for the second field.
        let pos_header = lines[0].find("long_header").unwrap();
        let pos_row = lines[2].find('1').unwrap();
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ssmdvfs_report_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], &[vec!["1".into(), "2".into()]]);
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
