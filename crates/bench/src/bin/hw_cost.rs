//! **E6 — Section V-D: the ASIC implementation estimate.**
//!
//! Estimates cycles per inference, silicon area (65 nm synthesis scaled to
//! 28 nm) and power for the SSMDVFS inference module, for both the full and
//! the final compressed model. The paper reports 192 cycles (0.16 µs at
//! 1165 MHz, 1.65 % of one 10 µs epoch), 0.0080 mm² and 0.0025 W at 28 nm.

use ssmdvfs::{compress_and_finetune, estimate_asic, AsicConfig, ModelArch};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, train_or_load_model, write_csv,
    PipelineConfig,
};
use tinynn::TrainConfig;

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (layerwise, _) = train_or_load_model(
        &dataset,
        &ModelArch::paper_compressed(),
        &config,
        "main_compressed_arch",
    );
    let finetune = TrainConfig { epochs: 80, ..config.train.clone() };
    let compressed = compress_and_finetune(&layerwise, &dataset, 0.6, 0.9, &finetune);
    let (full, _) = train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");

    let freq_mhz = config.gpu.vf_table.default_point().freq_mhz();
    let epoch_us = config.gpu.epoch.as_micros();
    let asic = AsicConfig::tsmc65();

    println!("\n=== Section V-D — hardware implementation estimate ===\n");
    let int8 = AsicConfig::tsmc65_int8();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, model, cfg_variant) in [
        ("full", &full, &asic),
        ("compressed", &compressed, &asic),
        ("compressed-int8", &compressed, &int8),
    ] {
        let r = estimate_asic(model, cfg_variant, freq_mhz, epoch_us);
        rows.push(vec![
            name.to_string(),
            r.cycles_per_inference.to_string(),
            format!("{:.3}", r.latency_us),
            format!("{:.2}", r.epoch_fraction * 100.0),
            format!("{:.4}", r.area_28nm_mm2),
            format!("{:.4}", r.power_w),
        ]);
        csv.push(vec![
            name.to_string(),
            r.cycles_per_inference.to_string(),
            format!("{:.6}", r.latency_us),
            format!("{:.6}", r.epoch_fraction),
            format!("{:.6}", r.area_65nm_mm2),
            format!("{:.6}", r.area_28nm_mm2),
            format!("{:.6}", r.power_w),
            format!("{:.6e}", r.energy_per_inference_j),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["model", "cycles/inf", "latency_us", "epoch_%", "area_28nm_mm2", "power_w"],
            &rows
        )
    );
    println!(
        "paper (compressed): 192 cycles, 0.160 µs, 1.65% of a 10 µs epoch, 0.0080 mm², 0.0025 W"
    );
    println!("(the INT8 row is an extension beyond the paper's FP32 module)");
    write_csv(
        artifacts_dir().join("hw_cost.csv"),
        &[
            "model",
            "cycles",
            "latency_us",
            "epoch_fraction",
            "area_65nm_mm2",
            "area_28nm_mm2",
            "power_w",
            "energy_j",
        ],
        &csv,
    );
}
