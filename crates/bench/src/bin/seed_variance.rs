//! **Extension — seed robustness of the Fig. 4 ordering.**
//!
//! Reruns the SSMDVFS-vs-PCSTALL comparison under different workload seeds
//! (which reshuffle every warp's address and divergence streams) to check
//! that the reported ordering is not an artifact of one particular
//! instruction-stream realization.

use dvfs_baselines::{PcstallConfig, PcstallGovernor};
use gpu_sim::{Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::exec::parallel_map_ref;
use ssmdvfs::{ModelArch, SsmdvfsConfig, SsmdvfsGovernor};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, train_or_load_model, write_csv,
    PipelineConfig,
};

const SUBSET: [&str; 4] = ["sgemm", "lbm", "spmv", "gemm"];
const SEEDS: [u64; 3] = [0x55AA_1234, 0xBEEF, 0x1CEB00DA];

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (model, _) = train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");

    let mut rows = Vec::new();
    let mut ssm_all = Vec::new();
    let mut pc_all = Vec::new();
    for seed in SEEDS {
        let gpu = config.gpu.clone().with_seed(seed);
        // One worker per benchmark; each returns (ssmdvfs, pcstall) EDP
        // normalized to its own static-governor baseline.
        let scores = parallel_map_ref(0, &SUBSET, |name| {
            let bench = by_name(name).expect("benchmark exists");
            let mut base_sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut base_gov = StaticGovernor::default_point(&gpu.vf_table);
            let base = base_sim.run(&mut base_gov, Time::from_micros(3_000.0)).edp_report();
            let mut sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut governor = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.10));
            let ssm = sim
                .run(&mut governor, Time::from_micros(3_000.0))
                .edp_report()
                .normalized_edp(&base);
            let mut sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
            let pc = sim
                .run(&mut governor, Time::from_micros(3_000.0))
                .edp_report()
                .normalized_edp(&base);
            (ssm, pc)
        });
        let ssm_sum: f64 = scores.iter().map(|s| s.0).sum();
        let pc_sum: f64 = scores.iter().map(|s| s.1).sum();
        let n = SUBSET.len() as f64;
        eprintln!("[seeds] {seed:#x} done");
        ssm_all.push(ssm_sum / n);
        pc_all.push(pc_sum / n);
        rows.push(vec![
            format!("{seed:#x}"),
            format!("{:.4}", ssm_sum / n),
            format!("{:.4}", pc_sum / n),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let std = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!("\n=== Seed robustness (subset {SUBSET:?}, preset 10%) ===\n");
    println!("{}", format_table(&["workload_seed", "ssmdvfs_edp", "pcstall_edp"], &rows));
    println!(
        "ssmdvfs: {:.4} ± {:.4} | pcstall: {:.4} ± {:.4}",
        mean(&ssm_all),
        std(&ssm_all),
        mean(&pc_all),
        std(&pc_all)
    );
    write_csv(
        artifacts_dir().join("seed_variance.csv"),
        &["seed", "ssmdvfs_edp", "pcstall_edp"],
        &rows,
    );
}
