//! **Extension — quantifying §V-D's "minimal latency" claim at system
//! level.**
//!
//! The paper argues the inference module's 0.16 µs latency (1.65 % of a
//! 10 µs epoch) "imposes minimal latency on the GPU's overall operation".
//! This sweep makes that claim measurable: the simulator's per-epoch DVFS
//! overhead (IVR settle time plus, pessimistically, a decision latency
//! charged as a stall) is varied from 0 to 5 µs and the full-system EDP of
//! the SSMDVFS controller is re-measured. The claim holds if EDP is flat
//! through the sub-microsecond range and only degrades when the overhead
//! becomes a visible fraction of the epoch.

use gpu_sim::{Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::{ModelArch, SsmdvfsConfig, SsmdvfsGovernor};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, train_or_load_model, write_csv,
    PipelineConfig,
};

const SUBSET: [&str; 3] = ["sgemm", "lbm", "spmv"];
const OVERHEADS_NS: [f64; 6] = [0.0, 100.0, 160.0, 500.0, 1_000.0, 5_000.0];

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (model, _) = train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");

    let mut rows = Vec::new();
    for overhead_ns in OVERHEADS_NS {
        let mut gpu = config.gpu.clone();
        gpu.dvfs_transition = Time::from_nanos(overhead_ns);
        let mut edp_sum = 0.0;
        let mut lat_sum = 0.0;
        for name in SUBSET {
            let bench = by_name(name).expect("benchmark exists");
            // The baseline never switches points, so it is charged no
            // overhead — normalization stays comparable across rows.
            let mut base_sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut base_gov = StaticGovernor::default_point(&gpu.vf_table);
            let base = base_sim.run(&mut base_gov, Time::from_micros(3_000.0)).edp_report();
            let mut sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut governor = SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(0.10));
            let r = sim.run(&mut governor, Time::from_micros(3_000.0)).edp_report();
            edp_sum += r.normalized_edp(&base);
            lat_sum += r.normalized_latency(&base);
        }
        let n = SUBSET.len() as f64;
        eprintln!("[overhead] {overhead_ns} ns done");
        rows.push(vec![
            format!("{overhead_ns:.0}"),
            format!("{:.4}", edp_sum / n),
            format!("{:.4}", lat_sum / n),
        ]);
    }

    println!("\n=== DVFS overhead sweep (subset {SUBSET:?}, preset 10%) ===\n");
    println!("{}", format_table(&["overhead_ns", "mean_norm_edp", "mean_norm_latency"], &rows));
    println!(
        "paper §V-D: the 0.16 µs inference latency is 1.65% of an epoch and should be\n\
         invisible at system level — the EDP column should be flat until the overhead\n\
         approaches a microsecond."
    );
    write_csv(
        artifacts_dir().join("overhead_sweep.csv"),
        &["overhead_ns", "mean_norm_edp", "mean_norm_latency"],
        &rows,
    );
}
