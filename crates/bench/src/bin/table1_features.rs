//! **E1 — Table I: RFE feature selection.**
//!
//! Runs recursive feature elimination over the 40 non-power counters
//! (permutation-importance driven, retraining at each step), keeps four
//! indirect features plus the direct PPC power feature, and prints the
//! selected set next to the paper's (IPC, PPC, MH, MH\L, L1CRM) together
//! with the accuracy cost of the reduction.

use ssmdvfs::{select_features, FeatureSet};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, write_csv, PipelineConfig,
};
use tinynn::TrainConfig;

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    // RFE retrains ~36 times; a reduced epoch budget keeps it tractable
    // while still ranking features reliably.
    let rfe_config = TrainConfig { epochs: 30, patience: 8, ..config.train.clone() };
    let t0 = std::time::Instant::now();
    let selection = select_features(&dataset, config.gpu.vf_table.len(), 4, &rfe_config);
    eprintln!("[table1] RFE finished in {:.1?}", t0.elapsed());

    println!("\n=== Table I — metrics and performance counters ===\n");
    let paper = FeatureSet::refined();
    let rows = vec![
        vec!["paper (Table I)".to_string(), paper.names().join(", ")],
        vec!["this reproduction (RFE)".to_string(), selection.selected.names().join(", ")],
    ];
    println!("{}", format_table(&["source", "selected counters"], &rows));
    println!("full 41-feature accuracy:    {:.2}%", selection.full_accuracy * 100.0);
    println!(
        "selected 5-feature accuracy: {:.2}%  (paper reports a 0.48% accuracy drop)",
        selection.selected_accuracy * 100.0
    );
    println!(
        "accuracy change:             {:+.2}%",
        (selection.selected_accuracy - selection.full_accuracy) * 100.0
    );
    println!("\nelimination order (first eliminated first):");
    for (i, name) in selection.eliminated.iter().enumerate() {
        println!("  {:>2}. {name}", i + 1);
    }

    let csv: Vec<Vec<String>> = selection
        .eliminated
        .iter()
        .enumerate()
        .map(|(i, n)| vec![format!("{}", i + 1), n.clone(), "eliminated".into()])
        .chain(
            selection
                .selected
                .names()
                .iter()
                .map(|n| vec![String::new(), (*n).to_string(), "selected".into()]),
        )
        .collect();
    write_csv(
        artifacts_dir().join("table1_features.csv"),
        &["elimination_step", "counter", "status"],
        &csv,
    );
}
