//! **Extension — model diagnostics.**
//!
//! Loads the cached full model and prints the analysis a model debugger
//! wants before trusting a DVFS controller: the Decision-maker's confusion
//! matrix over the operating points, per-class recall, the mean *ordinal*
//! error (how many table steps a miss jumps, which plain accuracy hides),
//! and the Calibrator's relative-error distribution.

use ssmdvfs::ModelArch;
use ssmdvfs_bench::{build_or_load_dataset, format_table, train_or_load_model, PipelineConfig};
use tinynn::{confusion_matrix, mean_class_distance};

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (model, _) = train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");
    let num_ops = model.num_ops;

    // Decision head analysis over the full corpus.
    let dec = dataset.decision_data(&model.feature_set, num_ops);
    let logits = model.decision_forward_raw(&dec.x);
    let cm = confusion_matrix(&logits, &dec.y, num_ops);

    println!("\n=== Decision-maker confusion matrix (rows = truth, cols = predicted) ===\n");
    let mut rows = Vec::new();
    for (truth, row) in cm.iter().enumerate() {
        let support: usize = row.iter().sum();
        let recall = if support > 0 { row[truth] as f64 / support as f64 } else { 0.0 };
        let mut cells = vec![format!("op{truth}")];
        cells.extend(row.iter().map(ToString::to_string));
        cells.push(support.to_string());
        cells.push(format!("{:.1}%", recall * 100.0));
        rows.push(cells);
    }
    let mut header: Vec<String> = vec!["truth".into()];
    header.extend((0..num_ops).map(|i| format!("p{i}")));
    header.push("support".into());
    header.push("recall".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", format_table(&header_refs, &rows));

    let distance = mean_class_distance(&logits, &dec.y);
    let adjacent: usize = dec
        .y
        .iter()
        .enumerate()
        .filter(|(i, &l)| tinynn::argmax(logits.row(*i)).abs_diff(l) <= 1)
        .count();
    println!(
        "mean ordinal error: {distance:.3} table steps | within one step of the truth: {:.1}%",
        adjacent as f64 / dec.y.len() as f64 * 100.0
    );

    // Calibrator error distribution.
    let cal = dataset.calibrator_data(&model.feature_set, num_ops, model.instr_scale);
    let outputs = model.calibrator_forward_raw(&cal.x);
    let mut errors: Vec<f64> = cal
        .y
        .iter()
        .enumerate()
        .filter(|(_, &t)| t.abs() > 1e-6)
        .map(|(i, &t)| f64::from((outputs.row(i)[0] - t).abs() / t.abs()))
        .collect();
    errors.sort_by(f64::total_cmp);
    let pct = |p: f64| errors[((errors.len() - 1) as f64 * p) as usize] * 100.0;
    println!("\n=== Calibrator relative-error distribution ===\n");
    println!(
        "p50 {:.2}% | p90 {:.2}% | p99 {:.2}% | max {:.2}%  ({} samples)",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        errors.last().copied().unwrap_or(0.0) * 100.0,
        errors.len()
    );
    println!(
        "\n(the runtime violation detector fires on a smoothed shortfall above {:.0}%,\n\
         so p90 of the calibrator's noise should sit well below that threshold)",
        5.0
    );
}
