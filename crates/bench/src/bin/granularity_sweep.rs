//! **Extension — DVFS granularity: why per-cluster control?**
//!
//! The paper applies DVFS per cluster (24 independent clock domains). This
//! sweep holds the total SM count at 24 and varies how many SMs share one
//! domain — from the paper's 24×1 down to chip-wide 1×24 — measuring the
//! EDP and latency of the analytical controller at each granularity.
//! PCSTALL is used (its stall-fraction features are scale-invariant, so no
//! retraining is needed when counters aggregate over more SMs).
//!
//! Under our symmetric round-robin CTA distribution most clusters see
//! similar phases, so the expected effect is modest and concentrated in
//! kernel tails (uneven CTA completion) and irregular benchmarks
//! (per-cluster variance) — exactly where finer domains help.

use dvfs_baselines::{PcstallConfig, PcstallGovernor};
use gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::exec::parallel_map_ref;
use ssmdvfs_bench::{artifacts_dir, format_table, write_csv};

const SUBSET: [&str; 4] = ["sgemm", "lbm", "spmv", "kmeans"];
const SHAPES: [(usize, usize); 4] = [(24, 1), (6, 4), (2, 12), (1, 24)];

fn main() {
    let mut rows = Vec::new();
    for (clusters, sms) in SHAPES {
        let mut gpu = GpuConfig::titan_x();
        gpu.num_clusters = clusters;
        gpu.sms_per_cluster = sms;
        // One worker per benchmark at each shape.
        let scores = parallel_map_ref(0, &SUBSET, |name| {
            let bench = by_name(name).expect("benchmark exists");
            let mut base_sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut base_gov = StaticGovernor::default_point(&gpu.vf_table);
            let base = base_sim.run(&mut base_gov, Time::from_micros(3_000.0)).edp_report();
            let mut sim = Simulation::new(gpu.clone(), bench.workload().clone());
            let mut governor = PcstallGovernor::new(PcstallConfig::new(0.10));
            let r = sim.run(&mut governor, Time::from_micros(3_000.0)).edp_report();
            (r.normalized_edp(&base), r.normalized_latency(&base))
        });
        let edp_sum: f64 = scores.iter().map(|s| s.0).sum();
        let lat_sum: f64 = scores.iter().map(|s| s.1).sum();
        eprintln!("[granularity] {clusters}x{sms} done");
        let n = SUBSET.len() as f64;
        rows.push(vec![
            format!("{clusters}x{sms}"),
            format!("{:.4}", edp_sum / n),
            format!("{:.4}", lat_sum / n),
        ]);
    }
    println!("\n=== DVFS granularity sweep (24 SMs total, PCSTALL @10%, subset {SUBSET:?}) ===\n");
    println!("{}", format_table(&["clusters_x_sms", "mean_norm_edp", "mean_norm_latency"], &rows));
    write_csv(
        artifacts_dir().join("granularity_sweep.csv"),
        &["shape", "mean_norm_edp", "mean_norm_latency"],
        &rows,
    );
}
