//! **Extension — ablation study of the design decisions DESIGN.md calls
//! out.** Not a paper artifact; quantifies what each mechanism contributes.
//!
//! Ablations (each evaluated both offline — decision accuracy / calibrator
//! MAPE — and at full-system level on a four-benchmark subset at the 10 %
//! preset):
//!
//! 1. **Labeling**: minimum-frequency labels (deployed) vs the literal
//!    Fig. 2 raw labels.
//! 2. **Feature variants**: training on counters from every clock
//!    (deployed) vs default-clock windows only.
//! 3. **Feature set**: the paper's Table I five counters (deployed) vs all
//!    47 vs the power counter alone.
//! 4. **Decoding**: ordinal (deployed) vs plain argmax.
//! 5. **Governor field**: SSMDVFS vs PCSTALL vs Linux-style ondemand vs the
//!    one-step-lookahead oracle.
//! 6. **Preset sweep**: EDP/latency as the preset varies from 2 % to 30 %.

use dvfs_baselines::{
    run_oracle, OndemandConfig, OndemandGovernor, PcstallConfig, PcstallEdpGovernor,
    PcstallGovernor,
};
use gpu_sim::{CounterId, DvfsGovernor, GpuConfig, SimResult, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use ssmdvfs::exec::parallel_map_ref;
use ssmdvfs::{
    train_combined, CombinedModel, FeatureSet, LabelingMode, ModelArch, SsmdvfsConfig,
    SsmdvfsGovernor,
};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, write_csv, PipelineConfig,
};

const SUBSET: [&str; 4] = ["sgemm", "lbm", "spmv", "gemm"];
const PRESET: f64 = 0.10;

fn run_gov(cfg: &GpuConfig, name: &str, governor: &mut dyn DvfsGovernor) -> SimResult {
    let bench = by_name(name).expect("benchmark exists");
    let mut sim = Simulation::new(cfg.clone(), bench.into_workload());
    sim.run(governor, Time::from_micros(3_000.0))
}

/// Mean normalized EDP and latency of a governor over the subset; one
/// worker per benchmark.
fn system_score(
    cfg: &GpuConfig,
    baselines: &[SimResult],
    make: impl Fn() -> Box<dyn DvfsGovernor> + Sync,
) -> (f64, f64) {
    let indices: Vec<usize> = (0..SUBSET.len()).collect();
    let scores = parallel_map_ref(0, &indices, |&i| {
        let mut governor = make();
        let r = run_gov(cfg, SUBSET[i], governor.as_mut());
        let base = baselines[i].edp_report();
        (r.edp_report().normalized_edp(&base), r.edp_report().normalized_latency(&base))
    });
    let edp: f64 = scores.iter().map(|s| s.0).sum();
    let lat: f64 = scores.iter().map(|s| s.1).sum();
    (edp / SUBSET.len() as f64, lat / SUBSET.len() as f64)
}

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let num_ops = config.gpu.vf_table.len();
    let train = |ds: &ssmdvfs::DvfsDataset, fs: &FeatureSet| -> (CombinedModel, f64, f64) {
        let (m, s) = train_combined(ds, fs, &ModelArch::paper_full(), num_ops, &config.train, 0.25);
        (m, s.decision_accuracy, s.calibrator_mape)
    };

    eprintln!("[ablation] computing baselines");
    let baselines: Vec<SimResult> = parallel_map_ref(0, &SUBSET, |n| {
        let mut g = StaticGovernor::default_point(&config.gpu.vf_table);
        run_gov(&config.gpu, n, &mut g)
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, acc: f64, mape: f64, edp: f64, lat: f64| {
        rows.push(vec![
            name.to_string(),
            if acc.is_nan() { "-".into() } else { format!("{:.2}", acc * 100.0) },
            if mape.is_nan() { "-".into() } else { format!("{mape:.2}") },
            format!("{edp:.4}"),
            format!("{lat:.4}"),
        ]);
    };

    // --- Deployed configuration -----------------------------------------
    eprintln!("[ablation] deployed configuration");
    let (model, acc, mape) = train(&dataset, &FeatureSet::refined());
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(PRESET)))
    });
    push("deployed (min-freq, variants, Table I, ordinal)", acc, mape, edp, lat);

    // --- 1. Raw labeling --------------------------------------------------
    eprintln!("[ablation] raw labeling");
    let mut raw_ds = dataset.clone();
    raw_ds.labeling = LabelingMode::Raw;
    let (raw_model, raw_acc, raw_mape) = train(&raw_ds, &FeatureSet::refined());
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(SsmdvfsGovernor::new(raw_model.clone(), SsmdvfsConfig::new(PRESET)))
    });
    push("raw Fig.2 labels", raw_acc, raw_mape, edp, lat);

    // --- 2. No feature variants -------------------------------------------
    eprintln!("[ablation] no feature variants");
    let mut nv_ds = dataset.clone();
    nv_ds.feature_variants = false;
    let (nv_model, nv_acc, nv_mape) = train(&nv_ds, &FeatureSet::refined());
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(SsmdvfsGovernor::new(nv_model.clone(), SsmdvfsConfig::new(PRESET)))
    });
    push("default-clock features only", nv_acc, nv_mape, edp, lat);

    // --- 3. Feature sets ----------------------------------------------------
    eprintln!("[ablation] feature sets");
    let (full_model, full_acc, full_mape) = train(&dataset, &FeatureSet::full());
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(SsmdvfsGovernor::new(full_model.clone(), SsmdvfsConfig::new(PRESET)))
    });
    push("all 47 counters", full_acc, full_mape, edp, lat);
    let power_only = FeatureSet::new(vec![CounterId::PowerTotalW]);
    let (p_model, p_acc, p_mape) = train(&dataset, &power_only);
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(SsmdvfsGovernor::new(p_model.clone(), SsmdvfsConfig::new(PRESET)))
    });
    push("power counter only", p_acc, p_mape, edp, lat);

    // --- 4. Argmax decoding -------------------------------------------------
    eprintln!("[ablation] argmax decode");
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        let cfg = SsmdvfsConfig { argmax_decode: true, ..SsmdvfsConfig::new(PRESET) };
        Box::new(SsmdvfsGovernor::new(model.clone(), cfg))
    });
    push("argmax decode", acc, mape, edp, lat);

    // --- 5. Governor field ---------------------------------------------------
    eprintln!("[ablation] governor field");
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(PcstallGovernor::new(PcstallConfig::new(PRESET)))
    });
    push("pcstall", f64::NAN, f64::NAN, edp, lat);
    let (edp, lat) = system_score(&config.gpu, &baselines, || Box::new(PcstallEdpGovernor::new()));
    push("pcstall-edp (original objective)", f64::NAN, f64::NAN, edp, lat);
    let (edp, lat) = system_score(&config.gpu, &baselines, || {
        Box::new(OndemandGovernor::new(OndemandConfig::default()))
    });
    push("ondemand (Linux-style)", f64::NAN, f64::NAN, edp, lat);
    let indices: Vec<usize> = (0..SUBSET.len()).collect();
    let oracle_scores = parallel_map_ref(0, &indices, |&i| {
        let bench = by_name(SUBSET[i]).expect("benchmark exists");
        let r = run_oracle(&config.gpu, bench.into_workload(), PRESET, Time::from_micros(3_000.0));
        let base = baselines[i].edp_report();
        (r.edp_report().normalized_edp(&base), r.edp_report().normalized_latency(&base))
    });
    let oracle_edp: f64 = oracle_scores.iter().map(|s| s.0).sum();
    let oracle_lat: f64 = oracle_scores.iter().map(|s| s.1).sum();
    push(
        "oracle (one-step lookahead)",
        f64::NAN,
        f64::NAN,
        oracle_edp / SUBSET.len() as f64,
        oracle_lat / SUBSET.len() as f64,
    );

    println!("\n=== Ablation study (subset: {SUBSET:?}, preset {:.0}%) ===\n", PRESET * 100.0);
    println!(
        "{}",
        format_table(&["configuration", "accuracy_%", "mape_%", "mean_edp", "mean_latency"], &rows)
    );
    write_csv(
        artifacts_dir().join("ablation.csv"),
        &["configuration", "accuracy", "mape", "mean_edp", "mean_latency"],
        &rows,
    );

    // --- 6. Preset sweep -----------------------------------------------------
    eprintln!("[ablation] preset sweep");
    let mut sweep_rows = Vec::new();
    for preset in [0.02, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let (s_edp, s_lat) = system_score(&config.gpu, &baselines, || {
            Box::new(SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(preset)))
        });
        let (p_edp, p_lat) = system_score(&config.gpu, &baselines, || {
            Box::new(PcstallGovernor::new(PcstallConfig::new(preset)))
        });
        sweep_rows.push(vec![
            format!("{:.0}", preset * 100.0),
            format!("{s_edp:.4}"),
            format!("{s_lat:.4}"),
            format!("{p_edp:.4}"),
            format!("{p_lat:.4}"),
        ]);
    }
    println!("=== Preset sweep ===\n");
    println!(
        "{}",
        format_table(
            &["preset_%", "ssmdvfs_edp", "ssmdvfs_lat", "pcstall_edp", "pcstall_lat"],
            &sweep_rows
        )
    );
    write_csv(
        artifacts_dir().join("ablation_preset_sweep.csv"),
        &["preset", "ssmdvfs_edp", "ssmdvfs_lat", "pcstall_edp", "pcstall_lat"],
        &sweep_rows,
    );
}
