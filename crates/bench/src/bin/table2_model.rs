//! **E3 — Table II: the final model before and after compression.**
//!
//! Trains the paper's full architecture (five + four 20-neuron layers),
//! applies layer-wise compression (3 + 2 layers of 12) plus two-stage
//! pruning at the paper's chosen `(x1, x2) = (0.6, 0.9)`, and prints the
//! before/after structure, FLOPs, Decision-maker accuracy and Calibrator
//! MAPE — the contents of Table II.

use ssmdvfs::{compress_and_finetune, evaluate, CombinedModel, ModelArch};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, train_or_load_model, write_csv,
    PipelineConfig,
};
use tinynn::TrainConfig;

fn structure(model: &CombinedModel) -> String {
    let d: Vec<String> = model.decision.sizes().iter().map(ToString::to_string).collect();
    let c: Vec<String> = model.calibrator.sizes().iter().map(ToString::to_string).collect();
    format!("decision {} | calibrator {}", d.join("-"), c.join("-"))
}

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (full, full_summary) =
        train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");

    // Layer-wise compression step: retrain at the compressed architecture.
    let (layerwise, _) = train_or_load_model(
        &dataset,
        &ModelArch::paper_compressed(),
        &config,
        "main_compressed_arch",
    );
    // Then the paper's chosen pruning with fine-tuning.
    let finetune = TrainConfig { epochs: 80, ..config.train.clone() };
    let pruned = compress_and_finetune(&layerwise, &dataset, 0.6, 0.9, &finetune);

    let (full_acc, full_mape) = evaluate(&full, &dataset);
    let (pruned_acc, pruned_mape) = evaluate(&pruned, &dataset);
    let _ = full_summary;

    println!("\n=== Table II — final model information ===\n");
    let rows = vec![
        vec!["structure".to_string(), structure(&full), structure(&pruned)],
        vec!["FLOPs".to_string(), full.flops().to_string(), pruned.sparse_flops().to_string()],
        vec![
            "accuracy (%)".to_string(),
            format!("{:.2}", full_acc * 100.0),
            format!("{:.2}", pruned_acc * 100.0),
        ],
        vec!["MAPE (%)".to_string(), format!("{:.2}", full_mape), format!("{:.2}", pruned_mape)],
    ];
    println!(
        "{}",
        format_table(&["model information", "before compression", "after compression"], &rows)
    );
    println!(
        "FLOPs compressed by {:.2}% (paper: 94.74%, 6960 -> 366)",
        (1.0 - pruned.sparse_flops() as f64 / full.flops() as f64) * 100.0
    );
    println!(
        "accuracy change {:+.2}% (paper: -2.40%), MAPE change {:+.2}% (paper: +1.18%)",
        (pruned_acc - full_acc) * 100.0,
        pruned_mape - full_mape
    );

    write_csv(
        artifacts_dir().join("table2_model.csv"),
        &["metric", "before", "after"],
        &[
            vec!["flops".into(), full.flops().to_string(), pruned.sparse_flops().to_string()],
            vec!["accuracy".into(), format!("{full_acc:.6}"), format!("{pruned_acc:.6}")],
            vec!["mape".into(), format!("{full_mape:.6}"), format!("{pruned_mape:.6}")],
        ],
    );
    pruned
        .save(artifacts_dir().join("model_final_compressed.json"))
        .expect("final model must be writable");
}
