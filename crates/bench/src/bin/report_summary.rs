//! Gathers every experiment CSV in the artifact directory into one digest —
//! a quick way to review a full experiment campaign without opening each
//! file.
//!
//! ```sh
//! cargo run --release -p ssmdvfs-bench --bin report_summary
//! ```

use std::fs;
use std::path::Path;

use ssmdvfs_bench::{artifacts_dir, format_table};

fn show_csv(path: &Path, title: &str, max_rows: usize) -> bool {
    let Ok(content) = fs::read_to_string(path) else { return false };
    let mut lines = content.lines();
    let Some(header) = lines.next() else { return false };
    let header: Vec<&str> = header.split(',').collect();
    let rows: Vec<Vec<String>> =
        lines.take(max_rows).map(|l| l.split(',').map(str::to_string).collect()).collect();
    if rows.is_empty() {
        return false;
    }
    println!("## {title} ({})\n", path.file_name().unwrap_or_default().to_string_lossy());
    println!("{}", format_table(&header, &rows));
    true
}

fn main() {
    let dir = artifacts_dir();
    println!("# SSMDVFS experiment digest — {}\n", dir.display());
    let mut found = 0;
    let catalog: [(&str, &str, usize); 9] = [
        ("fig4_preset10.csv", "Fig. 4 @ 10% preset (per benchmark)", 90),
        ("fig4_preset20.csv", "Fig. 4 @ 20% preset (per benchmark)", 90),
        ("fig3_compression.csv", "Fig. 3 compression curves", 30),
        ("table1_features.csv", "Table I feature selection", 50),
        ("table2_model.csv", "Table II model before/after", 10),
        ("hw_cost.csv", "ASIC estimate (§V-D)", 10),
        ("ablation.csv", "Ablation study", 15),
        ("ablation_preset_sweep.csv", "Preset sweep", 10),
        ("granularity_sweep.csv", "DVFS granularity sweep", 10),
    ];
    for (file, title, rows) in catalog {
        if show_csv(&dir.join(file), title, rows) {
            found += 1;
        }
    }
    for (file, title) in [
        ("overhead_sweep.csv", "Decision-overhead sweep"),
        ("seed_variance.csv", "Seed robustness"),
    ] {
        if show_csv(&dir.join(file), title, 10) {
            found += 1;
        }
    }
    if found == 0 {
        println!("no artifacts found — run the experiment binaries first (see EXPERIMENTS.md)");
    } else {
        println!("({found} artifact files summarized)");
    }
}
