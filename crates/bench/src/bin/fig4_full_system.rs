//! **E4/E5 — Fig. 4 and the Section V-C headline numbers.**
//!
//! Runs the full-system comparison: normalized EDP and latency for the
//! static baseline, PCSTALL, F-LEMMA, SSMDVFS without the Calibrator,
//! full SSMDVFS, and the fully compressed SSMDVFS, over the evaluation
//! benchmark set at performance-loss presets of 10 % and 20 %.
//!
//! Prints the per-benchmark table (the bars of Fig. 4), writes
//! `fig4_<preset>.csv` into the artifact directory, and closes with the
//! paper's aggregate comparisons: mean EDP reduction vs the baseline, vs
//! PCSTALL and vs F-LEMMA, for both the uncompressed and compressed models.
//!
//! Set `SSMDVFS_ORACLE=1` to additionally run the one-step-lookahead
//! oracle (expensive; not part of the paper's figure).

use std::collections::BTreeMap;

use gpu_sim::Time;
use gpu_workloads::evaluation_set;
use ssmdvfs::{compress_and_finetune, ModelArch};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, compare_on_benchmark, format_table, train_or_load_model,
    write_csv, ComparisonRow, GovernorKind, PipelineConfig,
};
use tinynn::TrainConfig;

const PRESETS: [f64; 2] = [0.10, 0.20];

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let (model, summary) =
        train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");
    eprintln!(
        "[fig4] model: accuracy {:.2}%, MAPE {:.2}%",
        summary.decision_accuracy * 100.0,
        summary.calibrator_mape
    );
    // The paper's compression pipeline: layer-wise compression (retrain at
    // the 12-neuron architecture) and then two-stage pruning with a
    // sparsity-preserving fine-tune.
    let (layerwise, _) = train_or_load_model(
        &dataset,
        &ModelArch::paper_compressed(),
        &config,
        "main_compressed_arch",
    );
    let finetune = TrainConfig { epochs: 80, ..config.train.clone() };
    let compressed = compress_and_finetune(&layerwise, &dataset, 0.6, 0.9, &finetune);
    eprintln!(
        "[fig4] compressed model: {} sparse FLOPs (vs {} dense)",
        compressed.sparse_flops(),
        model.flops()
    );

    let mut governors = vec![
        GovernorKind::Baseline,
        GovernorKind::Pcstall,
        GovernorKind::Flemma,
        GovernorKind::SsmdvfsNoCal(model.clone()),
        GovernorKind::Ssmdvfs(model.clone()),
        GovernorKind::SsmdvfsCompressed(compressed),
    ];
    if std::env::var_os("SSMDVFS_ORACLE").is_some_and(|v| v != "0") {
        governors.push(GovernorKind::Oracle);
    }
    let horizon = Time::from_micros(3_000.0);

    let mut all_rows: Vec<ComparisonRow> = Vec::new();
    for preset in PRESETS {
        println!("\n=== Fig. 4 — performance-loss preset {:.0}% ===\n", preset * 100.0);
        let mut rows = Vec::new();
        for bench in evaluation_set() {
            let t0 = std::time::Instant::now();
            let cells = compare_on_benchmark(&config.gpu, &bench, &governors, preset, horizon);
            eprintln!("[fig4] {} @ {:.0}%: {:.1?}", bench.name(), preset * 100.0, t0.elapsed());
            all_rows.extend(cells.clone());
            for c in cells {
                rows.push(vec![
                    c.benchmark,
                    c.governor,
                    format!("{:.4}", c.normalized_edp),
                    format!("{:.4}", c.normalized_latency),
                ]);
            }
        }
        println!("{}", format_table(&["benchmark", "governor", "norm_edp", "norm_latency"], &rows));

        // Aggregate per governor at this preset.
        let mut per_gov: BTreeMap<String, Vec<&ComparisonRow>> = BTreeMap::new();
        for r in all_rows.iter().filter(|r| r.preset == preset) {
            per_gov.entry(r.governor.clone()).or_default().push(r);
        }
        let agg: Vec<Vec<String>> = per_gov
            .iter()
            .map(|(g, rows)| {
                vec![
                    g.clone(),
                    format!("{:.4}", mean(rows.iter().map(|r| r.normalized_edp))),
                    format!("{:.4}", mean(rows.iter().map(|r| r.normalized_latency))),
                    format!(
                        "{}",
                        rows.iter().filter(|r| r.normalized_latency > 1.0 + preset + 0.005).count()
                    ),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(&["governor", "mean_edp", "mean_latency", "preset_violations"], &agg)
        );

        let csv_rows: Vec<Vec<String>> = all_rows
            .iter()
            .filter(|r| r.preset == preset)
            .map(|r| {
                vec![
                    r.benchmark.clone(),
                    r.governor.clone(),
                    format!("{:.6}", r.normalized_edp),
                    format!("{:.6}", r.normalized_latency),
                    format!("{:.6e}", r.energy_j),
                    format!("{:.6e}", r.time_s),
                ]
            })
            .collect();
        write_csv(
            artifacts_dir().join(format!("fig4_preset{:.0}.csv", preset * 100.0)),
            &["benchmark", "governor", "norm_edp", "norm_latency", "energy_j", "time_s"],
            &csv_rows,
        );
    }

    // Headline numbers across both presets (Section V-C).
    println!("\n=== Section V-C headline comparison (mean over both presets) ===\n");
    let mean_of =
        |gov: &str| mean(all_rows.iter().filter(|r| r.governor == gov).map(|r| r.normalized_edp));
    let base = 1.0;
    let pcstall = mean_of("pcstall");
    let flemma = mean_of("flemma");
    let ssm = mean_of("ssmdvfs");
    let ssm_nocal = mean_of("ssmdvfs-nocal");
    let comp = mean_of("ssmdvfs-comp");
    let pct = |ours: f64, theirs: f64| (theirs - ours) / theirs * 100.0;
    println!(
        "uncompressed SSMDVFS: EDP {:+.2}% vs baseline | {:+.2}% vs PCSTALL | {:+.2}% vs F-LEMMA",
        -pct(ssm, base),
        -pct(ssm, pcstall),
        -pct(ssm, flemma)
    );
    println!("  (paper reports:      -7.85%               | -9.91%             | -29.19%)");
    println!(
        "compressed SSMDVFS:   EDP {:+.2}% vs baseline | {:+.2}% vs PCSTALL | {:+.2}% vs F-LEMMA",
        -pct(comp, base),
        -pct(comp, pcstall),
        -pct(comp, flemma)
    );
    println!("  (paper reports:      -11.09%              | -13.17%            | -36.80%)");
    println!(
        "calibrator ablation:  with {:.4} vs without {:.4} mean normalized EDP",
        ssm, ssm_nocal
    );
}
