//! **E2 — Fig. 3: FLOPs vs accuracy/MAPE for layer-wise compression and
//! pruning.**
//!
//! Sweeps the uniform architecture family (hidden-layer count × width) as
//! the *layer-wise* series, then sweeps two-stage pruning parameters
//! `(x1, x2)` over the full-size trained model as the *pruning* series.
//! Both series should show the paper's knee: quality is flat until FLOPs
//! fall below a critical threshold, then drops sharply — with the pruning
//! curve sitting above the layer-wise curve at equal FLOPs.

use ssmdvfs::{layerwise_sweep, pruning_sweep, FeatureSet, ModelArch};
use ssmdvfs_bench::{
    artifacts_dir, build_or_load_dataset, format_table, train_or_load_model, write_csv,
    PipelineConfig,
};
use tinynn::TrainConfig;

fn main() {
    let config = PipelineConfig::default();
    let dataset = build_or_load_dataset(&config, "main");
    let sweep_config = TrainConfig { epochs: 60, patience: 12, ..config.train.clone() };

    // Layer-wise series: shrink layers and widths from the paper's full
    // architecture down to a clearly-too-small model.
    let shapes: &[(usize, usize)] =
        &[(5, 20), (4, 20), (3, 20), (3, 16), (3, 12), (2, 12), (2, 8), (1, 8), (1, 4), (1, 2)];
    let t0 = std::time::Instant::now();
    let layerwise = layerwise_sweep(
        &dataset,
        &FeatureSet::refined(),
        shapes,
        config.gpu.vf_table.len(),
        &sweep_config,
    );
    eprintln!("[fig3] layer-wise sweep finished in {:.1?}", t0.elapsed());

    // Pruning series over the full model.
    let (model, _) = train_or_load_model(&dataset, &ModelArch::paper_full(), &config, "main_full");
    let params: &[(f32, f32)] = &[
        (0.2, 0.90),
        (0.4, 0.90),
        (0.5, 0.90),
        (0.6, 0.90),
        (0.7, 0.90),
        (0.8, 0.92),
        (0.9, 0.95),
        (0.95, 0.95),
    ];
    let t0 = std::time::Instant::now();
    let pruning = pruning_sweep(&model, &dataset, params, &sweep_config);
    eprintln!("[fig3] pruning sweep finished in {:.1?}", t0.elapsed());

    println!("\n=== Fig. 3 — FLOPs vs accuracy and MAPE ===\n");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (series, points) in [("layer-wise", &layerwise), ("pruning", &pruning)] {
        for p in points {
            rows.push(vec![
                series.to_string(),
                p.label.clone(),
                p.flops.to_string(),
                format!("{:.2}", p.accuracy * 100.0),
                format!("{:.2}", p.mape),
            ]);
            csv.push(vec![
                series.to_string(),
                p.label.clone(),
                p.flops.to_string(),
                format!("{:.6}", p.accuracy),
                format!("{:.6}", p.mape),
            ]);
        }
    }
    println!("{}", format_table(&["series", "config", "flops", "accuracy_%", "mape_%"], &rows));
    write_csv(
        artifacts_dir().join("fig3_compression.csv"),
        &["series", "config", "flops", "accuracy", "mape"],
        &csv,
    );

    // The knee check the paper calls out: the largest few configs should be
    // within a few points of each other; the smallest should be clearly
    // worse.
    let top = layerwise.first().expect("non-empty sweep");
    let bottom = layerwise.last().expect("non-empty sweep");
    println!(
        "layer-wise: {} FLOPs -> {:.1}% accuracy | {} FLOPs -> {:.1}% accuracy",
        top.flops,
        top.accuracy * 100.0,
        bottom.flops,
        bottom.accuracy * 100.0
    );
}
