//! Perf-regression baselines for the offline pipeline.
//!
//! Two sections, selected by flag:
//!
//! * default (or `--datagen`): sequential vs parallel
//!   `generate_workload_jobs` throughput and the per-breakpoint checkpoint
//!   cost (cheap `SimSnapshot` vs full `Simulation` clone), written to
//!   `BENCH_datagen.json`.
//! * `--train`: training-loop throughput (epochs/sec on the paper-full
//!   decision head, serial vs the 4-job sharded-gradient engine with a
//!   byte-identity check), RFE wall-clock at 1 vs 8 workers, and single-inference
//!   latency of the compressed 5×12 net (dense vs compiled engine vs
//!   quantized), written to `BENCH_train.json`.
//! * `--sim`: simulation-engine throughput — naive-tick vs cycle-skip
//!   cycles/sec on a memory-bound workload (byte-identical results, checked
//!   here too), `Arc`-shared snapshot cost, and replay-cache cold vs warm
//!   datagen wall-clock — written to `BENCH_sim.json`.
//! * `--serve`: decision-serving throughput — the sharded micro-batching
//!   service at `--max-batch 1` (single-request baseline) vs `32`, with
//!   p50/p99 decision latency, batch occupancy and a decision-stream
//!   identity check between the two modes — written to `BENCH_serve.json`.
//! * `--decide`: single-decision latency — ns/inference for the dense, CSR
//!   and INT8 kernels on the compressed decision head, ns/decision for the
//!   unfused reference path vs the compiled `DecisionPlan` (exact, INT8 and
//!   memo-hit variants), plus the memo hit rate and a decision-stream
//!   identity check on a phase-structured replay — written to
//!   `BENCH_decide.json`.
//!
//! All JSON files land in the artifact directory so CI can diff runs.
//! Pass `--smoke` (or set `SSMDVFS_SMOKE=1`) for a seconds-long run on
//! tiny inputs; the numbers are still recorded but not meaningful as a
//! baseline.

use std::time::Instant;

use gpu_sim::{CounterId, EngineMode, EpochCounters, GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use ssmdvfs::exec::effective_jobs;
use ssmdvfs::serve::{DecisionRequest, DecisionService, ServeConfig, ServeStats};
use ssmdvfs::{
    generate_suite_with, generate_workload_jobs, select_features_with, CombinedModel,
    DataGenConfig, DecisionPlan, DvfsDataset, RawSample, ReplayCache, RfeOptions, SsmdvfsConfig,
    SuiteOptions,
};
use ssmdvfs_bench::artifacts_dir;
use tinynn::{
    grad_shards, prune_magnitude, train_classifier_parallel_with, train_classifier_with,
    ClassificationData, InferScratch, InferenceNet, Int8Net, Matrix, Mlp, QuantizedMlp,
    TrainConfig, TrainPool, TrainScratch,
};

#[derive(Serialize)]
struct DatagenBaseline {
    smoke: bool,
    workers: usize,
    samples_per_run: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    sequential_samples_per_sec: f64,
    parallel_samples_per_sec: f64,
    speedup: f64,
    snapshot_cost_us: f64,
    full_clone_cost_us: f64,
    snapshot_vs_clone: f64,
}

#[derive(Serialize)]
struct TrainBaseline {
    smoke: bool,
    workers: usize,
    /// Samples in the epochs/sec training set.
    train_samples: usize,
    /// Epochs actually executed during the timed run.
    train_epochs: usize,
    epochs_per_sec: f64,
    /// Worker count of the parallel SGD measurement.
    train_jobs: usize,
    /// Epochs/sec with the minibatch gradient sharded over `train_jobs`
    /// workers.
    parallel_epochs_per_sec: f64,
    /// Parallel vs serial epochs/sec (≥ 1.3 expected at 4 jobs on a
    /// multi-core host; sub-1 on a 1-core container, where the gate is
    /// skipped).
    train_speedup: f64,
    /// Gradient shards per default-sized (64-row) minibatch.
    grad_shards_per_batch: usize,
    /// Whether the parallel run reproduced the serial models byte-for-byte
    /// (the determinism contract of the training engine).
    parallel_identical: bool,
    /// Samples in the RFE dataset.
    rfe_samples: usize,
    rfe_importance_repeats: usize,
    rfe_jobs: usize,
    rfe_serial_secs: f64,
    rfe_parallel_secs: f64,
    rfe_speedup: f64,
    /// ns per single-sample forward through the compressed 5×12 decision
    /// head: dense `Mlp`, compiled `InferenceNet` on the pruned net, and
    /// the int8 `QuantizedMlp`.
    infer_dense_ns: f64,
    infer_engine_ns: f64,
    infer_quantized_ns: f64,
    /// Whether the pruned engine compiled to the CSR sparse path.
    engine_sparse: bool,
}

#[derive(Serialize)]
struct SimBaseline {
    smoke: bool,
    workers: usize,
    /// Simulated core cycles per full run (identical in both modes — the
    /// engines are byte-equivalent, asserted below).
    total_cycles: f64,
    naive_secs: f64,
    skip_secs: f64,
    naive_cycles_per_sec: f64,
    skip_cycles_per_sec: f64,
    speedup: f64,
    /// Cycles the skip engine jumped over instead of ticking.
    skipped_cycles: u64,
    skipped_fraction: f64,
    snapshot_cost_us: f64,
    /// Datagen sweep wall-clock with an empty vs fully-populated replay
    /// cache (same process, same worker count).
    cache_cold_secs: f64,
    cache_warm_secs: f64,
    cache_speedup: f64,
    cache_warm_hits: u64,
}

/// Runs `bench` to completion under `mode`, `reps` times; returns the
/// mean wall-clock, simulated cycles per run, skipped cycles per run and
/// the serialized `SimResult` of the last run (for the equivalence check).
fn time_engine(
    cfg: &GpuConfig,
    bench: &gpu_workloads::Benchmark,
    mode: EngineMode,
    reps: usize,
) -> (f64, f64, u64, String) {
    let mut cycles = 0.0;
    let mut skipped = 0;
    let mut result_json = String::new();
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
        sim.set_engine(mode);
        let mut governor = StaticGovernor::new(cfg.vf_table.default_index());
        let result = sim.run(&mut governor, Time::from_micros(50_000.0));
        assert!(result.completed, "baseline workload must complete");
        cycles = sim
            .records()
            .iter()
            .flat_map(|r| r.clusters.iter())
            .map(|c| c.counters[CounterId::TotalCycles])
            .sum();
        skipped = sim.skipped_cycles();
        result_json = serde_json::to_string(&result).expect("result serializes");
    }
    (t0.elapsed().as_secs_f64() / reps as f64, cycles, skipped, result_json)
}

fn run_sim(smoke: bool) {
    let cfg = GpuConfig::small_test();
    let (scale, reps, checkpoint_iters) = if smoke { (0.05, 1, 50) } else { (0.4, 3, 500) };
    let bench = by_name("lbm").expect("lbm exists").scaled(scale);
    let workers = effective_jobs(0);
    eprintln!("[perf_baseline] sim engine on '{}' (smoke={smoke})", bench.name());

    let (naive_secs, naive_cycles, _, naive_json) =
        time_engine(&cfg, &bench, EngineMode::NaiveTick, reps);
    let (skip_secs, skip_cycles, skipped_cycles, skip_json) =
        time_engine(&cfg, &bench, EngineMode::CycleSkip, reps);
    assert_eq!(naive_json, skip_json, "engines must produce byte-identical SimResults");
    assert!((naive_cycles - skip_cycles).abs() < 0.5, "engines must simulate the same cycles");

    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    for _ in 0..300 {
        if sim.is_complete() {
            break;
        }
        sim.step_epoch(&ops);
    }
    let (snapshot_cost_us, _) = time_checkpoints(&sim, checkpoint_iters);

    eprintln!("[perf_baseline] replay cache cold vs warm datagen sweep");
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(if smoke { 300.0 } else { 2_000.0 }),
        ..DataGenConfig::default()
    };
    let cache = std::sync::Arc::new(ReplayCache::in_memory());
    let mut options = SuiteOptions::new(0);
    options.cache = Some(cache.clone());
    let benches = [bench.clone()];
    let t0 = Instant::now();
    let cold = generate_suite_with(&benches, &cfg, &dg, &options).expect("cold sweep runs");
    let cache_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = generate_suite_with(&benches, &cfg, &dg, &options).expect("warm sweep runs");
    let cache_warm_secs = t0.elapsed().as_secs_f64();
    let cache_warm_hits = cache.hits();
    assert!(cache_warm_hits > 0, "warm sweep must hit the cache");
    assert_eq!(
        serde_json::to_string(&cold.datasets).expect("serializes"),
        serde_json::to_string(&warm.datasets).expect("serializes"),
        "cache hits must reproduce the cold sweep byte-for-byte"
    );

    let baseline = SimBaseline {
        smoke,
        workers,
        total_cycles: skip_cycles,
        naive_secs,
        skip_secs,
        naive_cycles_per_sec: naive_cycles / naive_secs,
        skip_cycles_per_sec: skip_cycles / skip_secs,
        speedup: naive_secs / skip_secs,
        skipped_cycles,
        skipped_fraction: skipped_cycles as f64 / skip_cycles.max(1.0),
        snapshot_cost_us,
        cache_cold_secs,
        cache_warm_secs,
        cache_speedup: cache_cold_secs / cache_warm_secs,
        cache_warm_hits,
    };
    let path = artifacts_dir().join("BENCH_sim.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] {:.3e} cycles/s naive -> {:.3e} cycles/s skip ({:.2}x, {:.1}% skipped); snapshot {:.1} us; cache {:.2}s cold -> {:.2}s warm ({} hits) -> {}",
        baseline.naive_cycles_per_sec,
        baseline.skip_cycles_per_sec,
        baseline.speedup,
        baseline.skipped_fraction * 100.0,
        baseline.snapshot_cost_us,
        baseline.cache_cold_secs,
        baseline.cache_warm_secs,
        baseline.cache_warm_hits,
        path.display()
    );
}

fn time_generate(
    bench: &gpu_workloads::Benchmark,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    jobs: usize,
    runs: usize,
) -> (f64, usize) {
    let mut samples = 0;
    let t0 = Instant::now();
    for _ in 0..runs {
        samples =
            generate_workload_jobs(bench.name(), bench.workload().clone(), cfg, dg, jobs).len();
    }
    (t0.elapsed().as_secs_f64() / runs as f64, samples)
}

fn time_checkpoints(sim: &Simulation, iters: usize) -> (f64, f64) {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sim.snapshot());
    }
    let snapshot_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sim.clone());
    }
    let clone_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    (snapshot_us, clone_us)
}

fn run_datagen(smoke: bool) {
    let cfg = GpuConfig::small_test();
    let (scale, max_us, runs, checkpoint_iters) =
        if smoke { (0.05, 300.0, 1, 50) } else { (0.4, 2_000.0, 3, 500) };
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(max_us),
        ..DataGenConfig::default()
    };
    let bench = by_name("lbm").expect("lbm exists").scaled(scale);
    let workers = effective_jobs(0);

    eprintln!("[perf_baseline] datagen on '{}' (smoke={smoke}, workers={workers})", bench.name());
    let (sequential_secs, samples) = time_generate(&bench, &cfg, &dg, 1, runs);
    let (parallel_secs, par_samples) = time_generate(&bench, &cfg, &dg, 0, runs);
    assert_eq!(samples, par_samples, "parallel datagen changed the sample count");
    assert!(samples > 0, "datagen produced no samples");

    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let mut sim = Simulation::new(cfg, bench.workload().clone());
    for _ in 0..300 {
        if sim.is_complete() {
            break;
        }
        sim.step_epoch(&ops);
    }
    let (snapshot_cost_us, full_clone_cost_us) = time_checkpoints(&sim, checkpoint_iters);

    let baseline = DatagenBaseline {
        smoke,
        workers,
        samples_per_run: samples,
        sequential_secs,
        parallel_secs,
        sequential_samples_per_sec: samples as f64 / sequential_secs,
        parallel_samples_per_sec: samples as f64 / parallel_secs,
        speedup: sequential_secs / parallel_secs,
        snapshot_cost_us,
        full_clone_cost_us,
        snapshot_vs_clone: full_clone_cost_us / snapshot_cost_us,
    };
    let path = artifacts_dir().join("BENCH_datagen.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] {:.0} samples/s sequential, {:.0} samples/s parallel ({:.2}x on {} workers); snapshot {:.1} us vs clone {:.1} us ({:.1}x cheaper) -> {}",
        baseline.sequential_samples_per_sec,
        baseline.parallel_samples_per_sec,
        baseline.speedup,
        workers,
        snapshot_cost_us,
        full_clone_cost_us,
        baseline.snapshot_vs_clone,
        path.display()
    );
}

/// Synthetic counter samples with a learnable stall-fraction → frequency
/// rule, with signal spread over several counters so RFE has real work.
fn synthetic_dataset(n: usize) -> DvfsDataset {
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let stall = (i % 11) as f64 / 10.0;
        let mut c = EpochCounters::zeroed();
        c[CounterId::Ipc] = 2.0 - 1.5 * stall;
        c[CounterId::PowerTotalW] = 3.0 + 4.0 * (1.0 - stall);
        c[CounterId::StallMemLoad] = stall * 8_000.0;
        c[CounterId::StallMemOther] = stall * 900.0;
        c[CounterId::L1ReadMiss] = stall * 600.0;
        c[CounterId::DramQueueNs] = stall * 2_500.0;
        c[CounterId::MemTransactions] = stall * 1_200.0;
        samples.push(RawSample {
            benchmark: "syn".into(),
            cluster: i % 4,
            breakpoint: i / 4,
            counters: c.clone(),
            scaled_counters: c,
            op_index: i % 6,
            perf_loss: (1.0 - stall) * 0.1 * (5 - i % 6) as f64,
            instructions: 8_000,
        });
    }
    DvfsDataset { samples, ..DvfsDataset::default() }
}

/// Epochs/sec through the paper-full decision head on a 1200×6 random
/// classification set — the training-loop throughput number
/// docs/performance.md tracks. The raw-matrix setup (not `decision_data`,
/// which fans each context into variant × preset rows) matches the pre-PR
/// baseline measurement this number is compared against.
fn time_training(smoke: bool, jobs: usize) -> (usize, usize, f64, f64, bool) {
    let n = if smoke { 240 } else { 1_200 };
    let epochs = if smoke { 5 } else { 60 };
    let reps = if smoke { 1 } else { 5 };
    let mut rng = StdRng::seed_from_u64(1);
    let mut x = Matrix::zeros(n, 6);
    for v in x.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    let y: Vec<usize> = (0..n).map(|i| i % 6).collect();
    let data = ClassificationData::new(x, y, 6);
    let (train, val) = data.split(0.25, &mut rng);
    // patience = epochs disables early stopping so every timed epoch runs.
    let cfg = TrainConfig { epochs, patience: epochs, ..TrainConfig::default() };
    let mut scratch = TrainScratch::new();
    // Both runs train the same initial models, so the parallel pass can be
    // checked byte-for-byte against the serial one.
    let inits: Vec<Mlp> =
        (0..reps).map(|_| Mlp::new(&[6, 20, 20, 20, 20, 20, 6], &mut rng)).collect();
    // Warm-up sizes the scratch buffers; the timed runs are allocation-free.
    let mut mlp = inits[0].clone();
    train_classifier_with(&mut mlp, &train, &val, &cfg, None, &mut scratch);

    let mut ran = 0;
    let mut serial_models = Vec::with_capacity(reps);
    let t0 = Instant::now();
    for init in &inits {
        let mut mlp = init.clone();
        let report = train_classifier_with(&mut mlp, &train, &val, &cfg, None, &mut scratch);
        ran += report.train_loss.len();
        serial_models.push(mlp);
    }
    let serial_secs = t0.elapsed().as_secs_f64();

    let pool = TrainPool::new(jobs);
    // Parallel warm-up (first fan-out wakes the worker team).
    let mut mlp = inits[0].clone();
    train_classifier_parallel_with(&mut mlp, &train, &val, &cfg, None, &mut scratch, &pool);
    let mut identical = true;
    let t0 = Instant::now();
    for (init, serial) in inits.iter().zip(&serial_models) {
        let mut mlp = init.clone();
        train_classifier_parallel_with(&mut mlp, &train, &val, &cfg, None, &mut scratch, &pool);
        identical &= mlp == *serial;
    }
    let parallel_secs = t0.elapsed().as_secs_f64();
    (n, ran, ran as f64 / serial_secs, ran as f64 / parallel_secs, identical)
}

/// RFE wall-clock, serial vs `jobs` workers. Identical selection is a
/// tested invariant; this only reports the time.
fn time_rfe(smoke: bool, jobs: usize) -> (usize, usize, f64, f64) {
    let (n, epochs, keep, repeats) = if smoke { (96, 1, 36, 2) } else { (480, 8, 4, 8) };
    let dataset = synthetic_dataset(n);
    let cfg = TrainConfig { epochs, ..TrainConfig::default() };
    let opts = RfeOptions { jobs: 1, importance_repeats: repeats };
    let t0 = Instant::now();
    let serial = select_features_with(&dataset, 6, keep, &cfg, &opts);
    let serial_secs = t0.elapsed().as_secs_f64();
    let opts = RfeOptions { jobs, importance_repeats: repeats };
    let t0 = Instant::now();
    let parallel = select_features_with(&dataset, 6, keep, &cfg, &opts);
    let parallel_secs = t0.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "worker count changed the RFE selection");
    (n, repeats, serial_secs, parallel_secs)
}

fn time_inference(smoke: bool) -> (f64, f64, f64, bool) {
    let iters = if smoke { 20_000 } else { 2_000_000 };
    let mut rng = StdRng::seed_from_u64(7);
    // Compressed decision head: 5 features + preset in, 12/12 hidden.
    let mlp = Mlp::new(&[6, 12, 12, 6], &mut rng);
    let x = [0.4f32, -0.2, 1.1, 0.3, -0.8, 0.1];

    let mut scratch = InferScratch::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(mlp.forward_one_into(std::hint::black_box(&x), &mut scratch));
    }
    let dense_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;

    let mut pruned = mlp.clone();
    prune_magnitude(&mut pruned, 0.8);
    let mut engine = InferenceNet::compile(&pruned);
    let engine_sparse = engine.is_sparse();
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(engine.infer(std::hint::black_box(&x)));
    }
    let engine_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;

    let quant = QuantizedMlp::quantize(&mlp);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(quant.forward_one_into(std::hint::black_box(&x), &mut scratch));
    }
    let quant_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    (dense_ns, engine_ns, quant_ns, engine_sparse)
}

fn run_train(smoke: bool) {
    let workers = effective_jobs(0);
    let rfe_jobs = 8;
    let train_jobs = 4;
    eprintln!(
        "[perf_baseline] training loop at 1 vs {train_jobs} workers (smoke={smoke}, workers={workers})"
    );
    let (train_samples, train_epochs, epochs_per_sec, parallel_epochs_per_sec, parallel_identical) =
        time_training(smoke, train_jobs);
    eprintln!("[perf_baseline] rfe wall-clock at 1 vs {rfe_jobs} workers");
    let (rfe_samples, rfe_importance_repeats, rfe_serial_secs, rfe_parallel_secs) =
        time_rfe(smoke, rfe_jobs);
    eprintln!("[perf_baseline] single-inference latency of the compressed net");
    let (infer_dense_ns, infer_engine_ns, infer_quantized_ns, engine_sparse) =
        time_inference(smoke);

    let baseline = TrainBaseline {
        smoke,
        workers,
        train_samples,
        train_epochs,
        epochs_per_sec,
        train_jobs,
        parallel_epochs_per_sec,
        train_speedup: parallel_epochs_per_sec / epochs_per_sec,
        grad_shards_per_batch: grad_shards(TrainConfig::default().batch_size),
        parallel_identical,
        rfe_samples,
        rfe_importance_repeats,
        rfe_jobs,
        rfe_serial_secs,
        rfe_parallel_secs,
        rfe_speedup: rfe_serial_secs / rfe_parallel_secs,
        infer_dense_ns,
        infer_engine_ns,
        infer_quantized_ns,
        engine_sparse,
    };
    assert!(
        baseline.parallel_identical,
        "parallel SGD diverged from the serial models (determinism contract broken)"
    );
    let path = artifacts_dir().join("BENCH_train.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] {:.1} epochs/s serial vs {:.1} at {} jobs ({:.2}x, {} shards/batch, identical={}); RFE {:.2}s serial vs {:.2}s at {} workers ({:.2}x); inference {:.0} ns dense / {:.0} ns engine / {:.0} ns quantized -> {}",
        baseline.epochs_per_sec,
        baseline.parallel_epochs_per_sec,
        train_jobs,
        baseline.train_speedup,
        baseline.grad_shards_per_batch,
        baseline.parallel_identical,
        baseline.rfe_serial_secs,
        baseline.rfe_parallel_secs,
        rfe_jobs,
        baseline.rfe_speedup,
        baseline.infer_dense_ns,
        baseline.infer_engine_ns,
        baseline.infer_quantized_ns,
        path.display()
    );
}

#[derive(Serialize)]
struct ServeBaseline {
    smoke: bool,
    /// Concurrent client threads submitting decision requests.
    clients: usize,
    requests_per_client: usize,
    max_batch: usize,
    single_throughput_rps: f64,
    batched_throughput_rps: f64,
    /// Batched vs single-request throughput (the headline number).
    speedup: f64,
    single_p50_us: f64,
    single_p99_us: f64,
    batched_p50_us: f64,
    batched_p99_us: f64,
    /// Mean requests answered per batched forward pass at `max_batch`.
    mean_batch_occupancy: f64,
    deadline_misses: u64,
    /// Whether both modes produced byte-identical per-client decision
    /// streams (batching must never change a decision).
    decisions_identical: bool,
}

/// Deterministic synthetic epoch counters for client `c`'s request `i` —
/// identical across runs so the two serve modes see the same stream.
fn serve_counters(c: usize, i: usize) -> EpochCounters {
    let v = gpu_sim::mix_seed(0x5e21, (c as u64) << 32 | i as u64);
    let mut counters = EpochCounters::zeroed();
    counters[CounterId::TotalCycles] = 1_000.0;
    counters[CounterId::TotalInstrs] = 400.0 + (v % 800) as f64;
    counters[CounterId::IntAluInstrs] = 150.0 + (v % 101) as f64;
    counters[CounterId::LoadGlobalInstrs] = 40.0 + (v % 31) as f64;
    counters[CounterId::StallMemLoad] = 100.0 + (v % 211) as f64;
    counters[CounterId::StallEmpty] = (v % 97) as f64;
    counters[CounterId::L1ReadAccess] = 80.0 + (v % 17) as f64;
    counters[CounterId::L1ReadMiss] = (v % 41) as f64;
    counters.recompute_derived();
    counters
}

/// Hammers one service with `clients` threads × `requests` pipelined
/// submissions each; returns per-client decision streams, all latencies in
/// µs, wall-clock seconds and the service stats.
fn time_serve(
    model: &std::sync::Arc<CombinedModel>,
    table: &gpu_sim::VfTable,
    clients: usize,
    requests: usize,
    max_batch: usize,
) -> (Vec<Vec<usize>>, Vec<f64>, f64, ServeStats) {
    let service = DecisionService::start(
        std::sync::Arc::clone(model),
        SsmdvfsConfig::new(0.10),
        table.clone(),
        ServeConfig { shards: 1, max_batch, queue_depth: 256, deadline: None },
    );
    let t0 = Instant::now();
    let per_client: Vec<(Vec<usize>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = service.client();
                scope.spawn(move || {
                    let mut ops = Vec::with_capacity(requests);
                    let mut lats = Vec::with_capacity(requests);
                    let mut i = 0;
                    // Pipeline a window of submissions before collecting so
                    // the queue stays deep enough for the batcher to fill
                    // real batches.
                    while i < requests {
                        let window = 64.min(requests - i);
                        let pending: Vec<_> = (0..window)
                            .map(|k| {
                                client.submit(DecisionRequest {
                                    gpu: c,
                                    cluster: 0,
                                    counters: serve_counters(c, i + k),
                                })
                            })
                            .collect();
                        for p in pending {
                            let d = p.wait();
                            ops.push(d.op_index);
                            lats.push(d.latency.as_secs_f64() * 1e6);
                        }
                        i += window;
                    }
                    (ops, lats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("serve client panicked")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = service.shutdown();
    let mut streams = Vec::with_capacity(clients);
    let mut lats = Vec::with_capacity(clients * requests);
    for (ops, l) in per_client {
        streams.push(ops);
        lats.extend(l);
    }
    (streams, lats, elapsed, stats)
}

fn percentile_us(lats: &mut [f64], q: f64) -> f64 {
    if lats.is_empty() {
        return 0.0;
    }
    lats.sort_by(f64::total_cmp);
    lats[((lats.len() - 1) as f64 * q).round() as usize]
}

fn run_serve(smoke: bool) {
    let (clients, requests) = if smoke { (8, 256) } else { (32, 4_096) };
    let max_batch = 32;
    let table = GpuConfig::small_test().vf_table;
    let model = std::sync::Arc::new(CombinedModel::synthetic(table.len(), 7));
    eprintln!("[perf_baseline] serve: {clients} clients x {requests} requests, max-batch 1 vs {max_batch}");

    let (single_ops, mut single_lats, single_secs, _) =
        time_serve(&model, &table, clients, requests, 1);
    let (batched_ops, mut batched_lats, batched_secs, stats) =
        time_serve(&model, &table, clients, requests, max_batch);

    let total = (clients * requests) as f64;
    let baseline = ServeBaseline {
        smoke,
        clients,
        requests_per_client: requests,
        max_batch,
        single_throughput_rps: total / single_secs,
        batched_throughput_rps: total / batched_secs,
        speedup: single_secs / batched_secs,
        single_p50_us: percentile_us(&mut single_lats, 0.50),
        single_p99_us: percentile_us(&mut single_lats, 0.99),
        batched_p50_us: percentile_us(&mut batched_lats, 0.50),
        batched_p99_us: percentile_us(&mut batched_lats, 0.99),
        mean_batch_occupancy: stats.mean_batch(),
        deadline_misses: stats.deadline_misses,
        decisions_identical: single_ops == batched_ops,
    };
    assert!(
        baseline.decisions_identical,
        "batched decision streams diverged from the single-request baseline"
    );
    let path = artifacts_dir().join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] serve {:.0} req/s single vs {:.0} req/s batched ({:.2}x), p99 {:.1} µs, mean batch {:.1} -> {}",
        baseline.single_throughput_rps,
        baseline.batched_throughput_rps,
        baseline.speedup,
        baseline.batched_p99_us,
        baseline.mean_batch_occupancy,
        path.display()
    );
}

#[derive(Serialize)]
struct DecideBaseline {
    smoke: bool,
    /// Timed iterations per measurement (each taken as the best of several
    /// rounds to shed scheduler noise).
    iters: usize,
    /// ns per single forward through the compressed [6,12,12,6] decision
    /// head: the dense `Mlp`, the CSR engine on the 80 %-pruned net (the
    /// same measurement BENCH_train tracks) and the flat-arena INT8 kernel.
    kernel_dense_ns: f64,
    kernel_csr_ns: f64,
    kernel_int8_ns: f64,
    /// Whether the pruned head actually compiled to the CSR program.
    kernel_csr_sparse: bool,
    /// ns per complete governor decision (feature extraction, calibration,
    /// both heads, decode) through the unfused allocating model-method
    /// path — what every decision cost before the compiled plan.
    reference_decision_ns: f64,
    /// Same complete decision through the compiled `DecisionPlan` arena
    /// (exact f32 programs, memo disabled).
    plan_decision_ns: f64,
    /// The fused decision on the INT8 datapath
    /// (`DecisionPlan::decide_slot_quantized`).
    plan_quantized_ns: f64,
    /// The memo short-circuit: a bit-identical repeated epoch replayed
    /// without inference.
    plan_memo_hit_ns: f64,
    /// Epochs in the phase-structured replay below.
    replay_epochs: usize,
    memo_hits: u64,
    memo_misses: u64,
    /// Fraction of replay decisions answered by the memo.
    memo_hit_rate: f64,
    /// Whether plan-with-memo, plan-without-memo and the unfused reference
    /// produced byte-identical decision streams on the replay.
    decisions_identical: bool,
}

/// Best-of-`rounds` wrapper: each round times `iters` calls of `f` and the
/// minimum mean survives, shedding scheduler and frequency noise.
fn best_ns<F: FnMut()>(iters: usize, rounds: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// Phase-structured epoch counters: `epoch` walks through phases of
/// `phase_len` identical epochs — active compute phases interleaved with
/// starved (kernel-boundary) phases, the temporal locality the decision
/// memo exploits.
fn decide_counters(epoch: usize, phase_len: usize) -> EpochCounters {
    let phase = epoch / phase_len;
    let starved = phase % 3 == 2;
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalCycles] = 10_000.0;
    c[CounterId::TotalInstrs] = if starved { 150.0 } else { 3_000.0 + 450.0 * (phase % 7) as f64 };
    c[CounterId::StallEmpty] = if starved { 9_200.0 } else { 0.0 };
    c[CounterId::StallMemLoad] = 400.0 + 60.0 * (phase % 5) as f64;
    c[CounterId::PowerTotalW] = 4.0 + 0.3 * (phase % 4) as f64;
    c[CounterId::L1ReadMiss] = 25.0 + (phase % 9) as f64;
    c.recompute_derived();
    c
}

/// The unfused reference decision: allocating `CombinedModel` methods plus
/// a replica of the controller's calibration state machine — the exact
/// arithmetic (and cost) of the pre-plan governor hot path.
struct ReferenceDecider {
    state: (f64, Option<f32>, f64), // (effective_preset, predicted, err_ewma)
    config: SsmdvfsConfig,
}

impl ReferenceDecider {
    fn new(config: SsmdvfsConfig) -> ReferenceDecider {
        ReferenceDecider { state: (config.preset, None, 0.0), config }
    }

    fn decide(
        &mut self,
        model: &CombinedModel,
        counters: &EpochCounters,
        table_len: usize,
    ) -> usize {
        let (ref mut eff, ref mut pred, ref mut err) = self.state;
        let features = model.feature_set.extract(counters);
        let cycles = counters[CounterId::TotalCycles].max(1.0);
        let starved = counters[CounterId::StallEmpty] / cycles > 0.2;
        if self.config.calibration && !starved {
            if let Some(predicted) = *pred {
                let actual = counters.total_instructions() as f32;
                if predicted > 0.0 {
                    let rel_err = f64::from((predicted - actual) / predicted);
                    *err = 0.7 * *err + 0.3 * rel_err;
                    if *err > self.config.deadband {
                        *eff = (*eff
                            - self.config.gain
                                * (*err - self.config.deadband)
                                * self.config.preset)
                            .max(self.config.min_preset);
                    } else {
                        *eff = (*eff + self.config.recovery * self.config.preset)
                            .min(self.config.preset);
                    }
                }
            }
        }
        let logits = model.decision_logits(&features, *eff as f32);
        let op = model.decode_ordinal(&logits).min(table_len - 1);
        *pred = Some(model.predict_instructions(&features, self.config.preset as f32, op));
        op
    }
}

fn run_decide(smoke: bool) {
    let (iters, rounds, replay_epochs) =
        if smoke { (20_000, 3, 2_000) } else { (1_000_000, 5, 50_000) };
    let phase_len = 8;
    eprintln!("[perf_baseline] decide: kernel + fused-plan latency (smoke={smoke})");

    // --- Kernel micro-latencies on the compressed decision head. ---
    let mut rng = StdRng::seed_from_u64(7);
    let mlp = Mlp::new(&[6, 12, 12, 6], &mut rng);
    let x = [0.4f32, -0.2, 1.1, 0.3, -0.8, 0.1];
    let mut scratch = InferScratch::new();
    let kernel_dense_ns = best_ns(iters, rounds, || {
        std::hint::black_box(mlp.forward_one_into(std::hint::black_box(&x), &mut scratch));
    });
    let mut pruned = mlp.clone();
    prune_magnitude(&mut pruned, 0.8);
    let mut engine = InferenceNet::compile(&pruned);
    let kernel_csr_sparse = engine.is_sparse();
    let kernel_csr_ns = best_ns(iters, rounds, || {
        std::hint::black_box(engine.infer(std::hint::black_box(&x)));
    });
    let mut int8 = Int8Net::compile(&mlp);
    let kernel_int8_ns = best_ns(iters, rounds, || {
        std::hint::black_box(int8.infer(std::hint::black_box(&x)));
    });

    // --- Full-decision latencies: unfused reference vs compiled plan. ---
    let table = GpuConfig::small_test().vf_table;
    let model = CombinedModel::synthetic(table.len(), 7);
    let config = SsmdvfsConfig::new(0.10);
    let active = decide_counters(0, phase_len);
    let starved = decide_counters(2 * phase_len, phase_len);
    let decision_iters = iters / 2;

    let mut reference = ReferenceDecider::new(config.clone());
    let reference_decision_ns = best_ns(decision_iters, rounds, || {
        std::hint::black_box(reference.decide(&model, std::hint::black_box(&active), table.len()));
    });

    let mut plan = DecisionPlan::compile(&model, &config);
    plan.set_memo(false);
    let mut slot = plan.new_slot();
    let plan_decision_ns = best_ns(decision_iters, rounds, || {
        std::hint::black_box(plan.decide_slot(
            &mut slot,
            std::hint::black_box(&active),
            table.len(),
        ));
    });
    let mut quant_slot = plan.new_slot();
    let plan_quantized_ns = best_ns(decision_iters, rounds, || {
        std::hint::black_box(plan.decide_slot_quantized(
            &mut quant_slot,
            std::hint::black_box(&active),
            table.len(),
        ));
    });
    plan.set_memo(true);
    let mut memo_slot = plan.new_slot();
    plan.decide_slot(&mut memo_slot, &starved, table.len()); // warm the memo
    let plan_memo_hit_ns = best_ns(decision_iters, rounds, || {
        std::hint::black_box(plan.decide_slot(
            &mut memo_slot,
            std::hint::black_box(&starved),
            table.len(),
        ));
    });

    // --- Phase-structured replay: hit rate + three-way identity. ---
    let mut with_memo = DecisionPlan::compile(&model, &config);
    let mut without_memo = DecisionPlan::compile(&model, &config);
    without_memo.set_memo(false);
    let mut warm_slot = with_memo.new_slot();
    let mut cold_slot = without_memo.new_slot();
    let mut oracle = ReferenceDecider::new(config.clone());
    let mut memo_hits = 0u64;
    let mut decisions_identical = true;
    for epoch in 0..replay_epochs {
        let counters = decide_counters(epoch, phase_len);
        let w = with_memo.decide_slot(&mut warm_slot, &counters, table.len());
        let c = without_memo.decide_slot(&mut cold_slot, &counters, table.len());
        let r = oracle.decide(&model, &counters, table.len());
        memo_hits += w.memo_hit as u64;
        decisions_identical &= w.op == c.op && c.op == r;
    }
    let memo_misses = replay_epochs as u64 - memo_hits;
    let memo_hit_rate = memo_hits as f64 / replay_epochs as f64;

    let baseline = DecideBaseline {
        smoke,
        iters,
        kernel_dense_ns,
        kernel_csr_ns,
        kernel_int8_ns,
        kernel_csr_sparse,
        reference_decision_ns,
        plan_decision_ns,
        plan_quantized_ns,
        plan_memo_hit_ns,
        replay_epochs,
        memo_hits,
        memo_misses,
        memo_hit_rate,
        decisions_identical,
    };
    assert!(baseline.decisions_identical, "plan/memo/reference decision streams diverged");
    assert!(baseline.memo_hit_rate > 0.0, "phase-structured replay produced no memo hits");
    assert!(
        baseline.kernel_int8_ns < baseline.kernel_dense_ns,
        "INT8 kernel ({:.0} ns) must beat the dense kernel ({:.0} ns)",
        baseline.kernel_int8_ns,
        baseline.kernel_dense_ns
    );
    assert!(
        baseline.plan_decision_ns < baseline.reference_decision_ns,
        "compiled plan ({:.0} ns) must beat the unfused reference ({:.0} ns)",
        baseline.plan_decision_ns,
        baseline.reference_decision_ns
    );
    let path = artifacts_dir().join("BENCH_decide.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] kernels {:.0}/{:.0}/{:.0} ns dense/csr/int8; decision {:.0} ns reference -> {:.0} ns plan / {:.0} ns int8-plan / {:.0} ns memo-hit; hit rate {:.1}% over {} epochs, identical={} -> {}",
        baseline.kernel_dense_ns,
        baseline.kernel_csr_ns,
        baseline.kernel_int8_ns,
        baseline.reference_decision_ns,
        baseline.plan_decision_ns,
        baseline.plan_quantized_ns,
        baseline.plan_memo_hit_ns,
        baseline.memo_hit_rate * 100.0,
        baseline.replay_epochs,
        baseline.decisions_identical,
        path.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("SSMDVFS_SMOKE").is_some_and(|v| v != "0");
    let train = args.iter().any(|a| a == "--train");
    let sim = args.iter().any(|a| a == "--sim");
    let serve = args.iter().any(|a| a == "--serve");
    let decide = args.iter().any(|a| a == "--decide");
    let datagen = args.iter().any(|a| a == "--datagen") || (!train && !sim && !serve && !decide);
    if datagen {
        run_datagen(smoke);
    }
    if train {
        run_train(smoke);
    }
    if sim {
        run_sim(smoke);
    }
    if serve {
        run_serve(smoke);
    }
    if decide {
        run_decide(smoke);
    }
}
