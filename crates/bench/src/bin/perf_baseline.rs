//! Perf-regression baseline for the parallel data-generation engine.
//!
//! Measures sequential vs parallel `generate_workload_jobs` throughput and
//! the per-breakpoint checkpoint cost (cheap `SimSnapshot` vs full
//! `Simulation` clone), then writes `BENCH_datagen.json` into the artifact
//! directory so CI can diff runs. Pass `--smoke` (or set
//! `SSMDVFS_SMOKE=1`) for a seconds-long run on tiny inputs; the numbers
//! are still recorded but not meaningful as a baseline.

use std::time::Instant;

use gpu_sim::{GpuConfig, Simulation, Time};
use gpu_workloads::by_name;
use serde::Serialize;
use ssmdvfs::exec::effective_jobs;
use ssmdvfs::{generate_workload_jobs, DataGenConfig};
use ssmdvfs_bench::artifacts_dir;

#[derive(Serialize)]
struct DatagenBaseline {
    smoke: bool,
    workers: usize,
    samples_per_run: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    sequential_samples_per_sec: f64,
    parallel_samples_per_sec: f64,
    speedup: f64,
    snapshot_cost_us: f64,
    full_clone_cost_us: f64,
    snapshot_vs_clone: f64,
}

fn time_generate(
    bench: &gpu_workloads::Benchmark,
    cfg: &GpuConfig,
    dg: &DataGenConfig,
    jobs: usize,
    runs: usize,
) -> (f64, usize) {
    let mut samples = 0;
    let t0 = Instant::now();
    for _ in 0..runs {
        samples =
            generate_workload_jobs(bench.name(), bench.workload().clone(), cfg, dg, jobs).len();
    }
    (t0.elapsed().as_secs_f64() / runs as f64, samples)
}

fn time_checkpoints(sim: &Simulation, iters: usize) -> (f64, f64) {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sim.snapshot());
    }
    let snapshot_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(sim.clone());
    }
    let clone_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    (snapshot_us, clone_us)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("SSMDVFS_SMOKE").is_some_and(|v| v != "0");
    let cfg = GpuConfig::small_test();
    let (scale, max_us, runs, checkpoint_iters) =
        if smoke { (0.05, 300.0, 1, 50) } else { (0.4, 2_000.0, 3, 500) };
    let dg = DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(max_us),
        ..DataGenConfig::default()
    };
    let bench = by_name("lbm").expect("lbm exists").scaled(scale);
    let workers = effective_jobs(0);

    eprintln!("[perf_baseline] datagen on '{}' (smoke={smoke}, workers={workers})", bench.name());
    let (sequential_secs, samples) = time_generate(&bench, &cfg, &dg, 1, runs);
    let (parallel_secs, par_samples) = time_generate(&bench, &cfg, &dg, 0, runs);
    assert_eq!(samples, par_samples, "parallel datagen changed the sample count");
    assert!(samples > 0, "datagen produced no samples");

    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let mut sim = Simulation::new(cfg, bench.workload().clone());
    for _ in 0..300 {
        if sim.is_complete() {
            break;
        }
        sim.step_epoch(&ops);
    }
    let (snapshot_cost_us, full_clone_cost_us) = time_checkpoints(&sim, checkpoint_iters);

    let baseline = DatagenBaseline {
        smoke,
        workers,
        samples_per_run: samples,
        sequential_secs,
        parallel_secs,
        sequential_samples_per_sec: samples as f64 / sequential_secs,
        parallel_samples_per_sec: samples as f64 / parallel_secs,
        speedup: sequential_secs / parallel_secs,
        snapshot_cost_us,
        full_clone_cost_us,
        snapshot_vs_clone: full_clone_cost_us / snapshot_cost_us,
    };
    let path = artifacts_dir().join("BENCH_datagen.json");
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, &json).expect("baseline must be writable");
    println!("{json}");
    println!(
        "[perf_baseline] {:.0} samples/s sequential, {:.0} samples/s parallel ({:.2}x on {} workers); snapshot {:.1} us vs clone {:.1} us ({:.1}x cheaper) -> {}",
        baseline.sequential_samples_per_sec,
        baseline.parallel_samples_per_sec,
        baseline.speedup,
        workers,
        snapshot_cost_us,
        full_clone_cost_us,
        baseline.snapshot_vs_clone,
        path.display()
    );
}
