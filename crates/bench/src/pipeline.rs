//! The offline SSMDVFS pipeline with on-disk artifact caching.
//!
//! Data generation is the expensive step (~minutes of simulated replay), so
//! its output — and the models trained from it — are cached as JSON under
//! [`artifacts_dir`]. Experiment binaries share one pipeline invocation; a
//! stale cache can be cleared by deleting the directory or setting
//! `SSMDVFS_REFRESH=1`.

use std::fs;
use std::path::PathBuf;

use gpu_sim::GpuConfig;
use gpu_workloads::{training_set, Benchmark};
use ssmdvfs::checkpoint::{self, CheckpointJournal};
use ssmdvfs::{
    generate_suite_with, train_combined, CombinedModel, DataGenConfig, DvfsDataset, FeatureSet,
    ModelArch, ReplayCache, SuiteOptions, TrainSummary,
};
use tinynn::TrainConfig;

/// Parameters of the shared offline pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// GPU configuration used for data generation.
    pub gpu: GpuConfig,
    /// Data-generation parameters.
    pub datagen: DataGenConfig,
    /// Benchmark scale factor (1.0 = the paper-sized ~300 µs programs;
    /// smaller for smoke tests).
    pub scale: f64,
    /// Training hyperparameters.
    pub train: TrainConfig,
    /// Worker threads for data generation (`0` = one per core).
    pub jobs: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            gpu: GpuConfig::titan_x(),
            datagen: DataGenConfig::default(),
            scale: 1.0,
            train: TrainConfig { epochs: 500, patience: 60, lr: 1.5e-3, ..TrainConfig::default() },
            jobs: 0,
        }
    }
}

/// The directory experiment artifacts (datasets, models, CSV outputs) are
/// written to. Override with the `SSMDVFS_ARTIFACTS` environment variable.
pub fn artifacts_dir() -> PathBuf {
    let dir = std::env::var_os("SSMDVFS_ARTIFACTS")
        .map_or_else(|| PathBuf::from("target/ssmdvfs-artifacts"), PathBuf::from);
    fs::create_dir_all(&dir).expect("artifact directory must be creatable");
    dir
}

fn refresh_requested() -> bool {
    std::env::var_os("SSMDVFS_REFRESH").is_some_and(|v| v != "0")
}

/// Generates (or loads from cache) the training dataset over the paper's
/// training benchmarks.
///
/// Data generation journals each finished replay job to
/// `dataset_<tag>.ckpt.jsonl` next to the cache file; if a previous run was
/// killed mid-sweep, the next invocation resumes from that journal instead
/// of starting over (the output is byte-identical either way). The journal
/// is removed once the dataset cache is written.
///
/// # Panics
///
/// Panics if data generation produces no samples or the cache is
/// unreadable/unwritable.
pub fn build_or_load_dataset(config: &PipelineConfig, tag: &str) -> DvfsDataset {
    let _span = obs::span!("bench", "build_or_load_dataset:{tag}");
    let _prof = obs::prof::scope("bench.dataset");
    let path = artifacts_dir().join(format!("dataset_{tag}.json"));
    if !refresh_requested() {
        if let Ok(data) = DvfsDataset::load(&path) {
            obs::info!(
                "pipeline: loaded cached dataset ({} samples) from {}",
                data.len(),
                path.display()
            );
            return data;
        }
    }
    let benches: Vec<Benchmark> =
        training_set().into_iter().map(|b| b.scaled(config.scale)).collect();
    let t0 = std::time::Instant::now();
    // Auto-checkpoint: reuse a leftover journal from an interrupted run,
    // then keep journaling to it while this run sweeps.
    let ckpt_path = artifacts_dir().join(format!("dataset_{tag}.ckpt.jsonl"));
    let mut options = SuiteOptions::new(config.jobs);
    if ckpt_path.exists() {
        match checkpoint::load(&ckpt_path) {
            Ok(entries) => {
                obs::info!(
                    "pipeline: resuming datagen from {} journaled jobs in {}",
                    entries.len(),
                    ckpt_path.display()
                );
                options.completed = checkpoint::completed_jobs(entries);
            }
            Err(e) => obs::warn!("pipeline: ignoring unusable checkpoint: {e}"),
        }
    }
    options.journal = CheckpointJournal::append_to(&ckpt_path)
        .map_err(|e| obs::warn!("pipeline: datagen runs unjournaled: {e}"))
        .ok();
    // Cross-run replay cache: experiment binaries sharing (config, datagen,
    // workload) replays — ablation/granularity reruns, refreshed sweeps —
    // skip already-simulated (breakpoint, operating point) jobs.
    let cache_path = artifacts_dir().join("replay_cache.json");
    match ReplayCache::open(&cache_path) {
        Ok(cache) => options.cache = Some(std::sync::Arc::new(cache)),
        Err(e) => obs::warn!("pipeline: datagen runs uncached: {e}"),
    }
    // Every (benchmark, breakpoint, operating point) replay is one job on
    // the shared work-stealing pool; per-benchmark sample order is
    // byte-identical to a sequential run.
    let outcome = generate_suite_with(&benches, &config.gpu, &config.datagen, &options)
        .expect("checkpoint journal must stay writable");
    if let Some(cache) = &options.cache {
        if let Err(e) = cache.save() {
            obs::warn!("pipeline: replay cache not persisted: {e}");
        }
        obs::info!(
            "pipeline: replay cache: {} hits, {} misses, {} entries",
            cache.hits(),
            cache.misses(),
            cache.len()
        );
    }
    let mut dataset = DvfsDataset::default();
    for (bench, part) in benches.iter().zip(outcome.datasets) {
        obs::info!("pipeline: datagen {}: {} samples", bench.name(), part.len());
        dataset.extend(part);
    }
    obs::info!("pipeline: datagen total: {} samples in {:.1?}", dataset.len(), t0.elapsed());
    assert!(!dataset.is_empty(), "data generation produced no samples");
    dataset.save(&path).expect("dataset cache must be writable");
    // The dataset cache is durable now; the journal has served its purpose.
    fs::remove_file(&ckpt_path).ok();
    dataset
}

/// Trains (or loads from cache) a combined model of the given architecture
/// on the dataset.
///
/// # Panics
///
/// Panics if training fails or the cache is unreadable/unwritable.
pub fn train_or_load_model(
    dataset: &DvfsDataset,
    arch: &ModelArch,
    config: &PipelineConfig,
    tag: &str,
) -> (CombinedModel, TrainSummary) {
    let _span = obs::span!("bench", "train_or_load_model:{tag}");
    let _prof = obs::prof::scope("bench.model");
    let dir = artifacts_dir();
    let model_path = dir.join(format!("model_{tag}.json"));
    let summary_path = dir.join(format!("summary_{tag}.json"));
    if !refresh_requested() {
        if let (Ok(model), Ok(summary_json)) =
            (CombinedModel::load(&model_path), fs::read_to_string(&summary_path))
        {
            if let Ok(summary) = serde_json::from_str::<TrainSummary>(&summary_json) {
                obs::info!("pipeline: loaded cached model '{tag}'");
                return (model, summary);
            }
        }
    }
    let t0 = std::time::Instant::now();
    let (model, summary) = train_combined(
        dataset,
        &FeatureSet::refined(),
        arch,
        config.gpu.vf_table.len(),
        &config.train,
        0.25,
    );
    obs::info!(
        "pipeline: trained '{tag}' in {:.1?}: accuracy {:.2}%, MAPE {:.2}%",
        t0.elapsed(),
        summary.decision_accuracy * 100.0,
        summary.calibrator_mape
    );
    model.save(&model_path).expect("model cache must be writable");
    fs::write(&summary_path, serde_json::to_string_pretty(&summary).expect("summary serializes"))
        .expect("summary cache must be writable");
    (model, summary)
}
