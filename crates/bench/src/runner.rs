//! The governor-comparison runner behind Fig. 4.

use dvfs_baselines::{run_oracle, FlemmaConfig, FlemmaGovernor, PcstallConfig, PcstallGovernor};
use gpu_power::PowerError;
use gpu_sim::{DvfsGovernor, GpuConfig, SimResult, Simulation, StaticGovernor, Time};
use gpu_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use ssmdvfs::{CombinedModel, SsmdvfsConfig, SsmdvfsGovernor};

/// The contenders of the Fig. 4 comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum GovernorKind {
    /// Static default V/f point (the normalization baseline).
    Baseline,
    /// The analytical PCSTALL method.
    Pcstall,
    /// The hierarchical-RL F-LEMMA method.
    Flemma,
    /// SSMDVFS without the Calibrator loop.
    SsmdvfsNoCal(CombinedModel),
    /// Full SSMDVFS (Decision-maker + Calibrator).
    Ssmdvfs(CombinedModel),
    /// SSMDVFS with the fully compressed model.
    SsmdvfsCompressed(CombinedModel),
    /// One-step-lookahead oracle (extension; not in the paper).
    Oracle,
}

impl GovernorKind {
    /// The column label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            GovernorKind::Baseline => "baseline",
            GovernorKind::Pcstall => "pcstall",
            GovernorKind::Flemma => "flemma",
            GovernorKind::SsmdvfsNoCal(_) => "ssmdvfs-nocal",
            GovernorKind::Ssmdvfs(_) => "ssmdvfs",
            GovernorKind::SsmdvfsCompressed(_) => "ssmdvfs-comp",
            GovernorKind::Oracle => "oracle",
        }
    }
}

/// One (benchmark, governor) cell of the comparison: EDP and latency
/// normalized to the baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Governor label.
    pub governor: String,
    /// Performance-loss preset used.
    pub preset: f64,
    /// EDP normalized to the static-default baseline (lower is better).
    pub normalized_edp: f64,
    /// Latency normalized to the baseline (1.1 = 10 % slower).
    pub normalized_latency: f64,
    /// Absolute energy in joules.
    pub energy_j: f64,
    /// Absolute execution time in seconds.
    pub time_s: f64,
    /// Whether the run completed within the horizon.
    pub completed: bool,
}

fn run_one(
    cfg: &GpuConfig,
    bench: &Benchmark,
    kind: &GovernorKind,
    preset: f64,
    horizon: Time,
) -> SimResult {
    let _span = obs::span!("bench", "run_one:{}@{}", bench.name(), kind.label());
    let _prof = obs::prof::scope("bench.run_one");
    obs::counter!("bench.runs").inc(1);
    let workload = bench.workload().clone();
    match kind {
        GovernorKind::Oracle => run_oracle(cfg, workload, preset, horizon),
        _ => {
            let mut governor: Box<dyn DvfsGovernor> = match kind {
                GovernorKind::Baseline => Box::new(StaticGovernor::default_point(&cfg.vf_table)),
                GovernorKind::Pcstall => Box::new(PcstallGovernor::new(PcstallConfig::new(preset))),
                GovernorKind::Flemma => Box::new(FlemmaGovernor::new(FlemmaConfig::new(preset))),
                GovernorKind::SsmdvfsNoCal(model) => Box::new(SsmdvfsGovernor::new(
                    model.clone(),
                    SsmdvfsConfig::new(preset).without_calibration(),
                )),
                GovernorKind::Ssmdvfs(model) | GovernorKind::SsmdvfsCompressed(model) => {
                    Box::new(SsmdvfsGovernor::new(model.clone(), SsmdvfsConfig::new(preset)))
                }
                GovernorKind::Oracle => unreachable!("handled above"),
            };
            let mut sim = Simulation::new(cfg.clone(), workload);
            sim.run(governor.as_mut(), horizon)
        }
    }
}

/// Runs every governor on one benchmark and returns normalized rows. The
/// baseline always runs first and anchors the normalization.
///
/// # Panics
///
/// Panics if any run fails to produce a result (a configuration error) or
/// if the baseline is degenerate; report paths that must not abort use
/// [`try_compare_on_benchmark`].
pub fn compare_on_benchmark(
    cfg: &GpuConfig,
    bench: &Benchmark,
    governors: &[GovernorKind],
    preset: f64,
    horizon: Time,
) -> Vec<ComparisonRow> {
    match try_compare_on_benchmark(cfg, bench, governors, preset, horizon) {
        Ok(rows) => rows,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`compare_on_benchmark`].
///
/// # Errors
///
/// Returns [`PowerError::DegenerateBaseline`] if the baseline run's EDP or
/// time is zero/non-finite (e.g. a horizon so short nothing executed): the
/// normalized columns would otherwise serialize as `inf`/`NaN` and poison
/// every downstream report.
pub fn try_compare_on_benchmark(
    cfg: &GpuConfig,
    bench: &Benchmark,
    governors: &[GovernorKind],
    preset: f64,
    horizon: Time,
) -> Result<Vec<ComparisonRow>, PowerError> {
    let _span = obs::span!("bench", "compare:{}", bench.name());
    let _prof = obs::prof::scope("bench.compare");
    let baseline = run_one(cfg, bench, &GovernorKind::Baseline, preset, horizon);
    let base_report = baseline.edp_report();
    governors
        .iter()
        .map(|kind| {
            let result = if matches!(kind, GovernorKind::Baseline) {
                baseline.clone()
            } else {
                run_one(cfg, bench, kind, preset, horizon)
            };
            let report = result.edp_report();
            Ok(ComparisonRow {
                benchmark: bench.name().to_string(),
                governor: kind.label().to_string(),
                preset,
                normalized_edp: report.try_normalized_edp(&base_report)?,
                normalized_latency: report.try_normalized_latency(&base_report)?,
                energy_j: report.energy().joules(),
                time_s: report.time_s(),
                completed: result.completed,
            })
        })
        .collect()
}

/// Maps `f` over `items` using up to `available_parallelism` worker threads
/// (sequential on single-core machines). Order of results matches input
/// order.
///
/// Delegates to the shared work-stealing pool in [`ssmdvfs::exec`], which
/// writes each result into its own pre-sized output slot instead of taking
/// a lock around the whole result vector per item.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ssmdvfs::exec::parallel_map_indexed(0, items, |_, item| f(&item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_compare_matches_panicking_wrapper_on_healthy_runs() {
        let cfg = GpuConfig::small_test();
        let bench = gpu_workloads::by_name("sgemm").expect("sgemm exists").scaled(0.1);
        let governors = [GovernorKind::Baseline];
        let horizon = Time::from_micros(4_000.0);
        let fallible =
            try_compare_on_benchmark(&cfg, &bench, &governors, 0.10, horizon).expect("healthy run");
        let panicking = compare_on_benchmark(&cfg, &bench, &governors, 0.10, horizon);
        assert_eq!(fallible, panicking);
        assert!(fallible[0].normalized_edp.is_finite());
    }

    #[test]
    fn comparison_rows_are_normalized_against_baseline() {
        let cfg = GpuConfig::small_test();
        let bench = gpu_workloads::by_name("lbm").expect("lbm exists").scaled(0.15);
        let rows = compare_on_benchmark(
            &cfg,
            &bench,
            &[GovernorKind::Baseline, GovernorKind::Pcstall],
            0.10,
            Time::from_micros(4_000.0),
        );
        assert_eq!(rows.len(), 2);
        assert!((rows[0].normalized_edp - 1.0).abs() < 1e-9, "baseline normalizes to 1");
        assert!((rows[0].normalized_latency - 1.0).abs() < 1e-9);
        assert!(rows.iter().all(|r| r.completed));
        // PCSTALL on a memory-bound benchmark should not be worse than the
        // baseline by much, and typically better.
        assert!(rows[1].normalized_edp < 1.15);
    }
}
