//! Offline-pipeline cost: data-generation throughput (simulated µs per
//! wall-clock second) and the cost of one training epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{CounterId, EpochCounters, GpuConfig};
use gpu_workloads::by_name;
use ssmdvfs::{generate, DataGenConfig, DvfsDataset, FeatureSet, RawSample};
use tinynn::{
    train_classifier, train_classifier_parallel_with, ClassificationData, Mlp, Normalizer,
    TrainConfig, TrainPool, TrainScratch,
};

fn synthetic_dataset(n: usize) -> DvfsDataset {
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let stall = (i % 11) as f64 / 10.0;
        let mut c = EpochCounters::zeroed();
        c[CounterId::Ipc] = 2.0 - 1.5 * stall;
        c[CounterId::PowerTotalW] = 3.0 + 4.0 * (1.0 - stall);
        c[CounterId::StallMemLoad] = stall * 8_000.0;
        c[CounterId::L1ReadMiss] = stall * 600.0;
        samples.push(RawSample {
            benchmark: "syn".into(),
            cluster: i % 4,
            breakpoint: i / 4,
            counters: c.clone(),
            scaled_counters: c,
            op_index: i % 6,
            perf_loss: (1.0 - stall) * 0.1 * (5 - i % 6) as f64,
            instructions: 8_000,
        });
    }
    DvfsDataset { samples, ..DvfsDataset::default() }
}

fn bench_datagen(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let bench = by_name("lbm").expect("lbm exists").scaled(0.03);
    let mut group = c.benchmark_group("pipeline/datagen");
    group.sample_size(10);
    group.bench_function("lbm_tiny", |b| {
        b.iter(|| {
            let data = generate(&bench, &cfg, &DataGenConfig::default());
            assert!(!data.is_empty());
            data.len()
        });
    });
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let dataset = synthetic_dataset(1_200);
    let fs = FeatureSet::refined();
    let dec = dataset.decision_data(&fs, 6);
    let norm = Normalizer::fit(&dec.x);
    let dec = ClassificationData::new(norm.transform(&dec.x), dec.y, 6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let (train, val) = dec.split(0.25, &mut rng);
    let mut group = c.benchmark_group("pipeline/train");
    group.sample_size(10);
    group.bench_function("one_epoch_paper_full", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[6, 20, 20, 20, 20, 20, 6], &mut rng);
            let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
            train_classifier(&mut mlp, &train, &val, &cfg).best_metric
        });
    });
    // Same epoch through the persistent shard pool at 4 jobs. The result
    // is byte-identical to the serial case by construction; the delta is
    // pure engine overhead/speedup (sub-serial on a 1-core CI container).
    let pool = TrainPool::new(4);
    let mut scratch = TrainScratch::new();
    group.bench_function("one_epoch_paper_full_4jobs", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(&[6, 20, 20, 20, 20, 20, 6], &mut rng);
            let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
            train_classifier_parallel_with(&mut mlp, &train, &val, &cfg, None, &mut scratch, &pool)
                .best_metric
        });
    });
    group.finish();
}

criterion_group!(benches, bench_datagen, bench_training_epoch);
criterion_main!(benches);
