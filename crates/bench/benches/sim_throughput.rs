//! Simulator throughput: epoch stepping cost and full-run cost on the
//! scaled-down test GPU, for compute- and memory-bound workloads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::{GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;

fn bench_epoch_step(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let mut group = c.benchmark_group("sim/epoch_step");
    group.sample_size(20);
    for name in ["gemm", "lbm"] {
        let bench = by_name(name).expect("benchmark exists").scaled(0.1);
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
                    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
                    // Warm one epoch so caches are realistic.
                    sim.step_epoch(&ops);
                    (sim, ops)
                },
                |(mut sim, ops)| {
                    sim.step_epoch(&ops);
                    sim
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let mut group = c.benchmark_group("sim/full_run");
    group.sample_size(10);
    let bench = by_name("spmv").expect("spmv exists").scaled(0.05);
    group.bench_function("spmv_scaled", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
            let mut governor = StaticGovernor::default_point(&cfg.vf_table);
            let r = sim.run(&mut governor, Time::from_micros(20_000.0));
            assert!(r.completed);
            r.instructions
        });
    });
    group.finish();
}

criterion_group!(benches, bench_epoch_step, bench_full_run);
criterion_main!(benches);
