//! Simulation-engine microbenches: naive-tick vs cycle-skip epoch stepping
//! on a memory-bound workload (where whole-SM stalls make skipping pay),
//! and snapshot/restore cost now that the immutable state is `Arc`-shared.
//!
//! The companion binary `perf_baseline --sim` records the same comparison
//! end-to-end (full runs, cycles/sec) as `BENCH_sim.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::{EngineMode, GpuConfig, Simulation, StaticGovernor, Time};
use gpu_workloads::by_name;

fn engine_sim(cfg: &GpuConfig, mode: EngineMode) -> Simulation {
    let bench = by_name("lbm").expect("lbm exists").scaled(0.1);
    let mut sim = Simulation::new(cfg.clone(), bench.workload().clone());
    sim.set_engine(mode);
    sim
}

fn bench_engine_modes(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let mut group = c.benchmark_group("sim_core/epoch_step");
    group.sample_size(20);
    for (name, mode) in
        [("naive_tick", EngineMode::NaiveTick), ("cycle_skip", EngineMode::CycleSkip)]
    {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = engine_sim(&cfg, mode);
                    // Warm one epoch so caches are realistic.
                    sim.step_epoch(&ops);
                    sim
                },
                |mut sim| {
                    sim.step_epoch(&ops);
                    sim
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_engine_full_run(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let mut group = c.benchmark_group("sim_core/full_run");
    group.sample_size(10);
    for (name, mode) in
        [("naive_tick", EngineMode::NaiveTick), ("cycle_skip", EngineMode::CycleSkip)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = engine_sim(&cfg, mode);
                let mut governor = StaticGovernor::default_point(&cfg.vf_table);
                let r = sim.run(&mut governor, Time::from_micros(50_000.0));
                assert!(r.completed);
                r.instructions
            });
        });
    }
    group.finish();
}

fn bench_snapshot_restore(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    let mut sim = engine_sim(&cfg, EngineMode::CycleSkip);
    for _ in 0..20 {
        if sim.is_complete() {
            break;
        }
        sim.step_epoch(&ops);
    }
    let mut group = c.benchmark_group("sim_core/checkpoint");
    group.bench_function("snapshot", |b| b.iter(|| std::hint::black_box(sim.snapshot())));
    let snap = sim.snapshot();
    group.bench_function("restore", |b| b.iter(|| std::hint::black_box(snap.restore())));
    group.finish();
}

criterion_group!(benches, bench_engine_modes, bench_engine_full_run, bench_snapshot_restore);
criterion_main!(benches);
