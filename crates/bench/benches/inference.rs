//! Inference latency of the Decision-maker + Calibrator pair, uncompressed
//! vs compressed — the software-side counterpart of the paper's Section V-D
//! argument that one inference fits comfortably inside a 10 µs epoch.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdvfs::{CombinedModel, FeatureSet, ModelArch};
use tinynn::{prune_two_stage, Matrix, Mlp, Normalizer};

fn model_for(arch: &ModelArch) -> CombinedModel {
    let fs = FeatureSet::refined();
    let mut rng = StdRng::seed_from_u64(7);
    let mut dec_sizes = vec![fs.len() + 1];
    dec_sizes.extend(&arch.decision_hidden);
    dec_sizes.push(6);
    let mut cal_sizes = vec![fs.len() + 2];
    cal_sizes.extend(&arch.calibrator_hidden);
    cal_sizes.push(1);
    CombinedModel {
        decision: Mlp::new(&dec_sizes, &mut rng),
        calibrator: Mlp::new(&cal_sizes, &mut rng),
        feature_set: fs.clone(),
        decision_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 1)),
        calibrator_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 2)),
        instr_scale: 1000.0,
        num_ops: 6,
    }
}

fn bench_inference(c: &mut Criterion) {
    let features = [1.2f32, 5.5, 800.0, 50.0, 120.0];
    let full = model_for(&ModelArch::paper_full());
    let mut compressed = model_for(&ModelArch::paper_compressed());
    compressed.decision = prune_two_stage(&compressed.decision, 0.6, 0.9);
    compressed.calibrator = prune_two_stage(&compressed.calibrator, 0.6, 0.9);

    let mut group = c.benchmark_group("inference/decide_and_predict");
    for (name, model) in [("full_6400_flops", &full), ("compressed", &compressed)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let op = model.decide(&features, 0.1);
                model.predict_instructions(&features, 0.1, op)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
