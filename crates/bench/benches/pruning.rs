//! Compression-pipeline cost: magnitude pruning, neuron pruning and the
//! combined two-stage pass over the paper's full architecture.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::{prune_magnitude, prune_neurons, prune_two_stage, Mlp};

fn full_model() -> Mlp {
    let mut rng = StdRng::seed_from_u64(5);
    Mlp::new(&[6, 20, 20, 20, 20, 20, 6], &mut rng)
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.bench_function("magnitude_x1_0.6", |b| {
        b.iter_batched(
            full_model,
            |mut mlp| {
                prune_magnitude(&mut mlp, 0.6);
                mlp
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("neuron_x2_0.9", |b| {
        b.iter_batched(
            || {
                let mut mlp = full_model();
                prune_magnitude(&mut mlp, 0.6);
                mlp
            },
            |mlp| prune_neurons(&mlp, 0.9),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("two_stage", |b| {
        b.iter_batched(full_model, |mlp| prune_two_stage(&mlp, 0.6, 0.9), BatchSize::SmallInput);
    });
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
