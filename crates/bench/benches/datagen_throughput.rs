//! Data-generation throughput: sequential vs work-stealing parallel replay
//! fan-out, and the cost of a cheap `SimSnapshot` vs a full `Simulation`
//! clone (the per-breakpoint checkpoint the replays are restored from).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::{GpuConfig, Simulation, Time};
use gpu_workloads::by_name;
use ssmdvfs::{generate_workload_jobs, DataGenConfig};

fn datagen_config() -> DataGenConfig {
    DataGenConfig {
        breakpoint_interval_epochs: 5,
        max_time: Time::from_micros(300.0),
        ..DataGenConfig::default()
    }
}

fn bench_generate(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let dg = datagen_config();
    let bench = by_name("lbm").expect("lbm exists").scaled(0.05);
    let mut group = c.benchmark_group("datagen/generate");
    group.sample_size(10);
    for (id, jobs) in [("sequential", 1usize), ("parallel", 0usize)] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let samples =
                    generate_workload_jobs(bench.name(), bench.workload().clone(), &cfg, &dg, jobs);
                assert!(!samples.is_empty());
                samples.len()
            });
        });
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let cfg = GpuConfig::small_test();
    let bench = by_name("lbm").expect("lbm exists").scaled(0.05);
    let ops = vec![cfg.vf_table.default_index(); cfg.num_clusters];
    // A simulation with a few hundred epochs of history behind it, so the
    // full clone pays the O(history) cost a snapshot avoids.
    let mut sim = Simulation::new(cfg, bench.workload().clone());
    for _ in 0..300 {
        if sim.is_complete() {
            break;
        }
        sim.step_epoch(&ops);
    }
    let mut group = c.benchmark_group("datagen/checkpoint");
    group.sample_size(50);
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(sim.snapshot()));
    });
    group.bench_function("full_clone", |b| {
        b.iter_batched(|| (), |()| black_box(sim.clone()), BatchSize::SmallInput);
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_checkpoint);
criterion_main!(benches);
