//! Per-epoch decision cost of every governor — the software path a real
//! driver would execute every 10 µs.

use criterion::{criterion_group, criterion_main, Criterion};
use dvfs_baselines::{FlemmaConfig, FlemmaGovernor, PcstallConfig, PcstallGovernor};
use gpu_power::VfTable;
use gpu_sim::{CounterId, DvfsGovernor, EpochCounters, StaticGovernor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdvfs::{CombinedModel, FeatureSet, ModelArch, SsmdvfsConfig, SsmdvfsGovernor};
use tinynn::{Matrix, Mlp, Normalizer};

fn busy_counters() -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalInstrs] = 15_000.0;
    c[CounterId::IntAluInstrs] = 8_000.0;
    c[CounterId::FpAluInstrs] = 5_000.0;
    c[CounterId::LoadGlobalInstrs] = 2_000.0;
    c[CounterId::TotalCycles] = 11_650.0;
    c[CounterId::StallMemLoad] = 2_500.0;
    c[CounterId::L1ReadAccess] = 2_000.0;
    c[CounterId::L1ReadMiss] = 400.0;
    c[CounterId::PowerTotalW] = 6.5;
    c.recompute_derived();
    c
}

fn ssmdvfs_governor() -> SsmdvfsGovernor {
    let fs = FeatureSet::refined();
    let arch = ModelArch::paper_compressed();
    let mut rng = StdRng::seed_from_u64(3);
    let mut dec_sizes = vec![fs.len() + 1];
    dec_sizes.extend(&arch.decision_hidden);
    dec_sizes.push(6);
    let mut cal_sizes = vec![fs.len() + 2];
    cal_sizes.extend(&arch.calibrator_hidden);
    cal_sizes.push(1);
    let model = CombinedModel {
        decision: Mlp::new(&dec_sizes, &mut rng),
        calibrator: Mlp::new(&cal_sizes, &mut rng),
        feature_set: fs.clone(),
        decision_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 1)),
        calibrator_norm: Normalizer::fit(&Matrix::zeros(4, fs.len() + 2)),
        instr_scale: 1000.0,
        num_ops: 6,
    };
    SsmdvfsGovernor::new(model, SsmdvfsConfig::new(0.10))
}

fn bench_governors(c: &mut Criterion) {
    let table = VfTable::titan_x();
    let counters = busy_counters();
    let mut group = c.benchmark_group("governor/decide");

    let mut static_gov = StaticGovernor::default_point(&table);
    group.bench_function("static", |b| {
        b.iter(|| static_gov.decide(0, &counters, &table));
    });
    let mut pcstall = PcstallGovernor::new(PcstallConfig::new(0.10));
    group.bench_function("pcstall", |b| {
        b.iter(|| pcstall.decide(0, &counters, &table));
    });
    let mut flemma = FlemmaGovernor::new(FlemmaConfig::new(0.10));
    group.bench_function("flemma", |b| {
        b.iter(|| flemma.decide(0, &counters, &table));
    });
    let mut ssmdvfs = ssmdvfs_governor();
    group.bench_function("ssmdvfs_compressed", |b| {
        b.iter(|| ssmdvfs.decide(0, &counters, &table));
    });
    group.finish();
}

criterion_group!(benches, bench_governors);
criterion_main!(benches);
