//! Math-core microbenches: naive vs cache-blocked matmul, and the three
//! single-sample forward paths of the compressed decision head (dense
//! `Mlp`, compiled `InferenceNet`, int8 `QuantizedMlp`).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinynn::{prune_magnitude, InferScratch, InferenceNet, Matrix, Mlp, QuantizedMlp};

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0);
    }
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    // A minibatch through a 20-wide hidden layer: the shape the training
    // loop hits thousands of times per run.
    let a = random_matrix(64, 20, &mut rng);
    let b = random_matrix(20, 20, &mut rng);
    let bt = b.transpose();
    let mut out = Matrix::zeros(64, 20);
    let mut group = c.benchmark_group("math/matmul_64x20x20");
    group.bench_function("naive", |bch| bch.iter(|| a.matmul_naive(&b)));
    group.bench_function("blocked", |bch| bch.iter(|| a.matmul(&b)));
    group.bench_function("blocked_transposed_into", |bch| {
        bch.iter(|| a.matmul_transposed_into(&bt, &mut out))
    });
    group.finish();

    // A full-dataset validation pass through the widest candidate layer.
    let a = random_matrix(480, 41, &mut rng);
    let b = random_matrix(41, 20, &mut rng);
    let mut group = c.benchmark_group("math/matmul_480x41x20");
    group.bench_function("naive", |bch| bch.iter(|| a.matmul_naive(&b)));
    group.bench_function("blocked", |bch| bch.iter(|| a.matmul(&b)));
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mlp = Mlp::new(&[6, 12, 12, 6], &mut rng);
    let mut pruned = mlp.clone();
    prune_magnitude(&mut pruned, 0.8);
    let mut engine = InferenceNet::compile(&pruned);
    assert!(engine.is_sparse(), "an 80%-pruned net should compile sparse");
    let quant = QuantizedMlp::quantize(&mlp);
    let x = [0.4f32, -0.2, 1.1, 0.3, -0.8, 0.1];
    let mut scratch = InferScratch::new();

    let mut group = c.benchmark_group("math/forward_one_5x12");
    group.bench_function("dense", |bch| bch.iter(|| mlp.forward_one_into(&x, &mut scratch)[0]));
    group.bench_function("engine_sparse", |bch| bch.iter(|| engine.infer(&x)[0]));
    group.bench_function("quantized", |bch| {
        bch.iter(|| quant.forward_one_into(&x, &mut scratch)[0])
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_forward);
criterion_main!(benches);
