//! Single-decision latency of the compiled fast path — the criterion
//! counterpart of `perf_baseline --decide`.
//!
//! Compares the unfused reference (allocating `CombinedModel` methods, the
//! pre-plan governor arithmetic) against the fused [`DecisionPlan`] in its
//! exact-f32, quantized-INT8, and memo-hit configurations. The paper's
//! microsecond-scale epoch budget leaves roughly 1 µs for the whole control
//! step; every variant here must sit far inside that.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{CounterId, EpochCounters, GpuConfig};
use ssmdvfs::plan::DecisionPlan;
use ssmdvfs::{CombinedModel, SsmdvfsConfig};

fn counters(instrs: f64, stall_frac: f64) -> EpochCounters {
    let mut c = EpochCounters::zeroed();
    c[CounterId::TotalInstrs] = instrs;
    c[CounterId::TotalCycles] = 10_000.0;
    c[CounterId::StallEmpty] = stall_frac * 10_000.0;
    c[CounterId::StallMemLoad] = 120.0;
    c[CounterId::PowerTotalW] = 3.4;
    c[CounterId::L1ReadMiss] = (instrs * 0.07).floor();
    c.recompute_derived();
    c
}

fn bench_decision_path(c: &mut Criterion) {
    let table = GpuConfig::small_test().vf_table;
    let model = CombinedModel::synthetic(table.len(), 7);
    let config = SsmdvfsConfig::new(0.1);
    let active = counters(9_000.0, 0.05);
    let starved = counters(400.0, 0.9);

    let mut group = c.benchmark_group("decision_path");

    // Unfused reference: the allocating model methods, as the governor ran
    // them before the plan existed.
    group.bench_function("reference_unfused", |b| {
        let features = model.feature_set.extract(&active);
        b.iter(|| {
            let logits = model.decision_logits(&features, 0.1);
            let op = model.decode_ordinal(&logits).min(table.len() - 1);
            model.predict_instructions(&features, 0.1, op)
        });
    });

    // Fused exact plan, memo disabled: alternate two distinct epochs so
    // every iteration does the full feature → heads → decode pipeline.
    group.bench_function("plan_exact", |b| {
        let mut plan = DecisionPlan::compile(&model, &config);
        plan.set_memo(false);
        let mut slot = plan.new_slot();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let c = if flip { &active } else { &starved };
            plan.decide_slot(&mut slot, c, table.len()).op
        });
    });

    // Fused quantized plan: INT8 head kernels, same fused surroundings.
    group.bench_function("plan_quantized", |b| {
        let mut plan = DecisionPlan::compile(&model, &config);
        let mut slot = plan.new_slot();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let c = if flip { &active } else { &starved };
            plan.decide_slot_quantized(&mut slot, c, table.len()).op
        });
    });

    // Memo hit: the same starved epoch repeated, the phase-locality case.
    group.bench_function("plan_memo_hit", |b| {
        let mut plan = DecisionPlan::compile(&model, &config);
        let mut slot = plan.new_slot();
        plan.decide_slot(&mut slot, &starved, table.len());
        b.iter(|| plan.decide_slot(&mut slot, &starved, table.len()).op);
    });

    group.finish();
}

criterion_group!(benches, bench_decision_path);
criterion_main!(benches);
