//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::{
    cross_entropy, prune_magnitude, prune_neurons, softmax, ForwardCache, InferScratch,
    InferenceNet, Matrix, Mlp, Normalizer, ZeroMask,
};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// A seeded random matrix for tests whose dimensions are themselves
/// generated (the vendored proptest has no `prop_flat_map` for
/// dimension-dependent collections).
fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    use rand::Rng;
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

proptest! {
    /// Softmax is a probability distribution for any finite logits.
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..10)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// The cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn cross_entropy_grad_rows_sum_to_zero(
        logits in arb_matrix(4, 3),
        labels in prop::collection::vec(0usize..3, 4),
    ) {
        let (_, grad) = cross_entropy(&logits, &labels);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    /// Transpose is an involution and matmul_transposed matches the
    /// explicit transpose.
    #[test]
    fn transpose_involution(m in arb_matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let other = Matrix::zeros(2, 5);
        let a = m.matmul_transposed(&other);
        let b = m.matmul(&other.transpose());
        prop_assert_eq!(a, b);
    }

    /// Matrix multiplication is associative (within float tolerance).
    #[test]
    fn matmul_associative(a in arb_matrix(2, 3), b in arb_matrix(3, 2), c in arb_matrix(2, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs()));
        }
    }

    /// Pruning never increases the number of non-zero weights or FLOPs, for
    /// any fraction.
    #[test]
    fn pruning_is_monotone(seed in any::<u64>(), frac in 0.0f32..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 8, 3], &mut rng);
        let before = mlp.nonzero_weights();
        prune_magnitude(&mut mlp, frac);
        prop_assert!(mlp.nonzero_weights() <= before);
        let (compact, _) = prune_neurons(&mlp, 0.9);
        prop_assert!(compact.sparse_flops() <= mlp.sparse_flops());
        prop_assert_eq!(compact.input_size(), 4);
        prop_assert_eq!(compact.output_size(), 3);
    }

    /// A zero mask re-applied after arbitrary weight perturbation restores
    /// exactly the masked sparsity pattern.
    #[test]
    fn zero_mask_restores_sparsity(seed in any::<u64>(), frac in 0.1f32..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 6, 2], &mut rng);
        prune_magnitude(&mut mlp, frac);
        let mask = ZeroMask::from_zeros(&mlp);
        let sparse_before = mlp.nonzero_weights();
        // Perturb everything.
        for layer in mlp.layers_mut() {
            layer.w.map_inplace(|v| v + 1.0);
        }
        mask.apply(&mut mlp);
        prop_assert_eq!(mlp.nonzero_weights(), sparse_before);
    }

    /// Normalizing then reading a single row matches the batch transform.
    #[test]
    fn normalizer_single_matches_batch(m in arb_matrix(5, 3), row in 0usize..5) {
        let norm = Normalizer::fit(&m);
        let z = norm.transform(&m);
        let mut one: Vec<f32> = m.row(row).to_vec();
        norm.transform_one(&mut one);
        for (a, b) in one.iter().zip(z.row(row)) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Forward passes are deterministic and finite for bounded inputs.
    #[test]
    fn forward_is_finite(seed in any::<u64>(), x in prop::collection::vec(-100.0f32..100.0, 4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[4, 8, 8, 2], &mut rng);
        let out1 = mlp.forward_one(&x);
        let out2 = mlp.forward_one(&x);
        prop_assert_eq!(out1.clone(), out2);
        prop_assert!(out1.iter().all(|v| v.is_finite()));
    }

    /// The blocked matmul kernels are bit-identical to their naive
    /// references on arbitrary shapes — including shapes that straddle the
    /// internal tile boundaries. Blocking only reorders *independent* dot
    /// products; each output element still accumulates over `k` in
    /// ascending order, so no float result may change.
    #[test]
    fn blocked_matmul_is_bit_identical_to_naive(
        m in 1usize..9,
        k in 1usize..80,
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        prop_assert_eq!(a.matmul(&b), a.matmul_naive(&b));
        let bt = b.transpose();
        prop_assert_eq!(a.matmul_transposed(&bt), a.matmul_transposed_naive(&bt));
    }

    /// `forward_into` (warm, reused cache) and `forward_one_into` (warm
    /// scratch) are bit-identical to the allocating batch forward pass on
    /// random inputs and hidden sizes.
    #[test]
    fn forward_into_is_bit_identical_to_forward(
        seed in any::<u64>(),
        hidden in 1usize..16,
        x_data in prop::collection::vec(-50.0f32..50.0, 3 * 5),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[5, hidden, 3], &mut rng);
        let x = Matrix::from_vec(3, 5, x_data);
        let batch = mlp.forward(&x);

        // Warm the cache with a different batch shape first: reuse must not
        // leak stale state into the next shape.
        let mut cache = ForwardCache::empty();
        mlp.forward_into(&Matrix::zeros(7, 5), &mut cache);
        mlp.forward_into(&x, &mut cache);
        prop_assert_eq!(cache.activations.last().expect("output present"), &batch);

        let mut scratch = InferScratch::new();
        for r in 0..x.rows() {
            let one = mlp.forward_one_into(x.row(r), &mut scratch);
            prop_assert_eq!(one, batch.row(r), "row {}", r);
        }
    }

    /// The serving micro-batch path is bit-identical to N sequential
    /// single-request inferences, at any batch size (including 0) and on
    /// both engines (dense and, after pruning, CSR). The serve layer
    /// relies on this: batching requests must never change a decision.
    #[test]
    fn infer_batch_is_bit_identical_to_sequential_singles(
        seed in any::<u64>(),
        hidden in 1usize..16,
        batch in 0usize..13,
        frac in 0.0f32..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[5, hidden, 4], &mut rng);
        prune_magnitude(&mut mlp, frac);
        let x = random_matrix(batch, 5, &mut rng);

        let mut net = InferenceNet::compile(&mlp);
        let mut out = Matrix::zeros(0, 0);
        // Warm with a different batch size first: cache reuse across
        // shapes must not leak stale activations into the next batch.
        net.infer_batch_into(&random_matrix(batch + 3, 5, &mut rng), &mut out);
        net.infer_batch_into(&x, &mut out);
        prop_assert_eq!((out.rows(), out.cols()), (batch, 4));

        let mut single = InferenceNet::compile(&mlp);
        for r in 0..batch {
            let want = single.infer(x.row(r));
            let got = out.row(r);
            prop_assert_eq!(got, want, "row {} (sparse: {})", r, net.is_sparse());
        }
    }
}
