//! Property tests for the data-parallel training engine: the trained model
//! must be byte-identical to sequential SGD at any worker count, for any
//! model shape, batch size or dataset — the determinism contract of
//! `train_classifier_parallel_with` / `train_regressor_parallel_with`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use tinynn::{
    grad_shards, shard_span, train_classifier_parallel_with, train_classifier_with,
    train_regressor_parallel_with, train_regressor_with, ClassificationData, Matrix, Mlp,
    RegressionData, TrainConfig, TrainPool, TrainScratch,
};

/// A seeded random classification set (the vendored proptest has no
/// `prop_flat_map` for dimension-dependent collections, so dimensions are
/// drawn as inputs and the data derived from a seed).
fn random_classification(
    n: usize,
    features: usize,
    classes: usize,
    seed: u64,
) -> ClassificationData {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * features).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    ClassificationData::new(Matrix::from_vec(n, features, data), y, classes)
}

fn random_regression(n: usize, features: usize, seed: u64) -> RegressionData {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * features).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let y: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
    RegressionData::new(Matrix::from_vec(n, features, data), y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded parallel classifier training reproduces sequential SGD
    /// byte-for-byte across random shapes, batch sizes and worker counts.
    #[test]
    fn parallel_classifier_is_byte_identical(
        seed in any::<u64>(),
        samples in 20usize..90,
        features in 2usize..6,
        classes in 2usize..5,
        hidden in 4usize..14,
        batch_size in 1usize..40,
        balance in any::<bool>(),
    ) {
        let train = random_classification(samples, features, classes, seed);
        let val = random_classification(samples / 2 + 4, features, classes, seed ^ 0x9E37);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size,
            patience: 3,
            seed: seed ^ 0xABCD,
            class_balance: balance,
            ..TrainConfig::default()
        };
        let init = Mlp::new(&[features, hidden, classes], &mut StdRng::seed_from_u64(seed ^ 7));
        let mut serial = init.clone();
        let serial_report =
            train_classifier_with(&mut serial, &train, &val, &cfg, None, &mut TrainScratch::new());
        for jobs in [1usize, 2, 4, 7] {
            let pool = TrainPool::new(jobs);
            let mut parallel = init.clone();
            let report = train_classifier_parallel_with(
                &mut parallel,
                &train,
                &val,
                &cfg,
                None,
                &mut TrainScratch::new(),
                &pool,
            );
            prop_assert_eq!(&serial, &parallel, "classifier diverged at {} workers", jobs);
            prop_assert_eq!(&serial_report, &report, "report diverged at {} workers", jobs);
        }
    }

    /// Same contract for the regressor head.
    #[test]
    fn parallel_regressor_is_byte_identical(
        seed in any::<u64>(),
        samples in 20usize..80,
        features in 2usize..6,
        hidden in 4usize..14,
        batch_size in 1usize..40,
    ) {
        let train = random_regression(samples, features, seed);
        let val = random_regression(samples / 2 + 4, features, seed ^ 0x9E37);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size,
            patience: 3,
            seed: seed ^ 0xABCD,
            ..TrainConfig::default()
        };
        let init = Mlp::new(&[features, hidden, 1], &mut StdRng::seed_from_u64(seed ^ 7));
        let mut serial = init.clone();
        let serial_report =
            train_regressor_with(&mut serial, &train, &val, &cfg, None, &mut TrainScratch::new());
        for jobs in [2usize, 4, 7] {
            let pool = TrainPool::new(jobs);
            let mut parallel = init.clone();
            let report = train_regressor_parallel_with(
                &mut parallel,
                &train,
                &val,
                &cfg,
                None,
                &mut TrainScratch::new(),
                &pool,
            );
            prop_assert_eq!(&serial, &parallel, "regressor diverged at {} workers", jobs);
            prop_assert_eq!(&serial_report, &report, "report diverged at {} workers", jobs);
        }
    }

    /// Shard spans partition any row count: contiguous, non-empty, in
    /// order, covering every row exactly once — and the shard count only
    /// depends on the row count.
    #[test]
    fn shard_spans_partition_rows(rows in 1usize..4_000) {
        let shards = grad_shards(rows);
        prop_assert!(shards >= 1);
        prop_assert!(shards <= 16);
        prop_assert!(shards <= rows);
        let mut next = 0usize;
        for s in 0..shards {
            let (lo, hi) = shard_span(rows, shards, s);
            prop_assert_eq!(lo, next);
            prop_assert!(hi > lo);
            next = hi;
        }
        prop_assert_eq!(next, rows);
    }
}
