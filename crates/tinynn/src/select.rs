//! Feature selection: permutation importance and recursive feature
//! elimination (RFE).
//!
//! Section IV-A of the paper refines 47 performance counters down to 5 using
//! RFE, "measuring the impact on model accuracy when a specific feature's
//! values are shuffled". [`permutation_importance`] implements exactly that
//! measurement; [`recursive_feature_elimination`] drives the elimination
//! loop generically so the caller controls training.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// SplitMix64: a full-avalanche 64-bit mixer (Steele et al., "Fast
/// Splittable Pseudorandom Number Generators"). Used to derive decorrelated
/// per-task seeds from a base seed plus a task index — adjacent inputs
/// (e.g. RFE round numbers, column indices) yield statistically independent
/// outputs, unlike the XOR-of-a-counter scheme this replaced.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The permutation-importance seed for one `(column, repeat)` task:
/// `splitmix64` over the base seed and both indices, so every task draws an
/// independent shuffle stream regardless of evaluation order.
fn task_seed(seed: u64, col: usize, repeat: usize) -> u64 {
    splitmix64(seed ^ splitmix64(((col as u64) << 32) | repeat as u64))
}

/// Permutation importance of every feature: the drop in `score` (higher =
/// better) when that feature's column is shuffled, averaged over `repeats`
/// shuffles.
///
/// # Panics
///
/// Panics if `repeats` is zero or `x` is empty.
///
/// # Examples
///
/// ```
/// use tinynn::{permutation_importance, Matrix};
///
/// // A "model" that only uses feature 0.
/// let x = Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 3.0], &[3.0, 7.0], &[4.0, 1.0]]);
/// let score = |m: &Matrix| {
///     // Reward monotone agreement with the true order of feature 0.
///     -(0..m.rows()).map(|r| (m[(r, 0)] - (r as f32 + 1.0)).abs() as f64).sum::<f64>()
/// };
/// let imp = permutation_importance(&x, score, 8, 42);
/// assert!(imp[0] > imp[1], "feature 0 must matter more: {imp:?}");
/// ```
pub fn permutation_importance<F>(x: &Matrix, score: F, repeats: usize, seed: u64) -> Vec<f64>
where
    F: Fn(&Matrix) -> f64,
{
    assert!(repeats > 0, "at least one shuffle repeat is required");
    assert!(x.rows() > 1, "permutation importance needs at least two rows");
    let baseline = score(x);
    (0..x.cols()).map(|col| column_importance(x, &score, baseline, col, repeats, seed)).collect()
}

/// Permutation importance of a single column against a precomputed
/// `baseline` score — the unit of work [`permutation_importance`] runs per
/// column. Each `(column, repeat)` shuffle draws from its own
/// [`splitmix64`]-derived seed, so the result depends only on the inputs,
/// never on which other columns were evaluated or in what order. That makes
/// a parallel fan-out over columns byte-identical to the serial loop at any
/// worker count (the property `ssmdvfs::rfe` is built on).
///
/// # Panics
///
/// Panics if `repeats` is zero, `col` is out of range, or `x` has fewer
/// than two rows.
pub fn column_importance<F>(
    x: &Matrix,
    score: F,
    baseline: f64,
    col: usize,
    repeats: usize,
    seed: u64,
) -> f64
where
    F: Fn(&Matrix) -> f64,
{
    assert!(repeats > 0, "at least one shuffle repeat is required");
    assert!(x.rows() > 1, "permutation importance needs at least two rows");
    assert!(col < x.cols(), "column {col} out of range ({} cols)", x.cols());
    let original: Vec<f32> = (0..x.rows()).map(|r| x[(r, col)]).collect();
    let mut shuffled = x.clone();
    let mut values = original.clone();
    let mut drop = 0.0;
    for repeat in 0..repeats {
        // Every repeat shuffles the *original* column values with its own
        // derived seed.
        let mut rng = StdRng::seed_from_u64(task_seed(seed, col, repeat));
        values.copy_from_slice(&original);
        values.shuffle(&mut rng);
        for (r, &v) in values.iter().enumerate() {
            shuffled[(r, col)] = v;
        }
        drop += baseline - score(&shuffled);
    }
    drop / repeats as f64
}

/// One elimination step of RFE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfeStep {
    /// The (original-index) feature eliminated at this step.
    pub eliminated: usize,
    /// Features still active after the elimination, by original index.
    pub remaining: Vec<usize>,
    /// The model score achieved with the remaining features.
    pub score: f64,
}

/// Recursive feature elimination: repeatedly drops the least-important
/// feature until `keep` remain.
///
/// `fit_score(active)` must train a fresh model on the given
/// (original-index) features and return `(score, importance)`, where
/// `importance[i]` corresponds to `active[i]` (e.g. from
/// [`permutation_importance`]).
///
/// Returns the elimination trace (first step first) and the surviving
/// feature indices.
///
/// # Panics
///
/// Panics if `keep` is zero or not less than `num_features`, or if
/// `fit_score` returns an importance vector of the wrong length.
pub fn recursive_feature_elimination<F>(
    num_features: usize,
    keep: usize,
    mut fit_score: F,
) -> (Vec<RfeStep>, Vec<usize>)
where
    F: FnMut(&[usize]) -> (f64, Vec<f64>),
{
    assert!(keep > 0, "must keep at least one feature");
    assert!(keep < num_features, "keep must be less than the feature count");
    let mut active: Vec<usize> = (0..num_features).collect();
    let mut trace = Vec::new();
    while active.len() > keep {
        let (score, importance) = fit_score(&active);
        assert_eq!(
            importance.len(),
            active.len(),
            "importance vector must match the active feature count"
        );
        let weakest = importance
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("active set is non-empty");
        let eliminated = active.remove(weakest);
        trace.push(RfeStep { eliminated, remaining: active.clone(), score });
    }
    (trace, active)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffling_an_unused_feature_changes_nothing() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 6.0], &[3.0, 7.0], &[4.0, 8.0]]);
        // Score only reads feature 0.
        let score = |m: &Matrix| (0..m.rows()).map(|r| m[(r, 0)] as f64).sum::<f64>();
        let imp = permutation_importance(&x, score, 4, 1);
        assert!(imp[0].abs() < 1e-9, "sum is shuffle-invariant for the used column");
        assert!(imp[1].abs() < 1e-9);
    }

    #[test]
    fn informative_feature_dominates() {
        // Build a dataset where y = x0, feature 1 is noise; "model" is the
        // identity predictor on feature 0 scored by negative squared error.
        let x = Matrix::from_rows(&[
            &[0.0, 3.0],
            &[1.0, -2.0],
            &[2.0, 8.0],
            &[3.0, 0.5],
            &[4.0, -1.0],
            &[5.0, 2.0],
        ]);
        let y = [0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0];
        let score = |m: &Matrix| {
            -(0..m.rows())
                .map(|r| {
                    let e = (m[(r, 0)] - y[r]) as f64;
                    e * e
                })
                .sum::<f64>()
        };
        let imp = permutation_importance(&x, score, 8, 7);
        assert!(imp[0] > 1.0);
        assert!(imp[1].abs() < 1e-9);
    }

    #[test]
    fn splitmix64_decorrelates_adjacent_inputs() {
        // Known vector from the SplitMix64 reference implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        // Adjacent inputs (the old `seed ^ round` failure mode) must differ
        // in roughly half their bits.
        for base in [0u64, 42, 0xDEC1] {
            let d = (splitmix64(base) ^ splitmix64(base + 1)).count_ones();
            assert!((16..=48).contains(&d), "weak avalanche: {d} bits for base {base}");
        }
    }

    #[test]
    fn column_importance_is_independent_of_evaluation_order() {
        let x = Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 3.0], &[3.0, 7.0], &[4.0, 1.0]]);
        let score = |m: &Matrix| {
            (0..m.rows()).map(|r| (m[(r, 0)] * 2.0 + m[(r, 1)]) as f64).product::<f64>()
        };
        let baseline = score(&x);
        let serial = permutation_importance(&x, score, 5, 77);
        // Evaluating columns in reverse (or any) order reproduces the same
        // values bit for bit — the property the parallel RFE fan-out needs.
        for col in (0..x.cols()).rev() {
            let got = column_importance(&x, score, baseline, col, 5, 77);
            assert_eq!(got.to_bits(), serial[col].to_bits(), "column {col}");
        }
    }

    #[test]
    fn rfe_eliminates_noise_features_first() {
        // Importance oracle: features 0 and 2 matter, 1 and 3 are noise.
        let true_importance = [10.0, 0.1, 5.0, 0.2];
        let (trace, survivors) = recursive_feature_elimination(4, 2, |active| {
            let imp: Vec<f64> = active.iter().map(|&f| true_importance[f]).collect();
            (1.0, imp)
        });
        assert_eq!(survivors, vec![0, 2]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].eliminated, 1);
        assert_eq!(trace[1].eliminated, 3);
        assert_eq!(trace[1].remaining, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "keep must be less")]
    fn rfe_rejects_keeping_everything() {
        recursive_feature_elimination(3, 3, |_| (0.0, vec![0.0; 3]));
    }
}
