//! Minibatch training loops for classifiers and regressors.
//!
//! The epoch loops are allocation-free after warm-up: every buffer a batch
//! needs — the shuffled index buffer, the gathered minibatch, the forward
//! cache, the loss gradient, the backprop deltas and the per-layer
//! gradients — lives in a reusable [`TrainScratch`]. Callers that retrain
//! many models (RFE, ablations) pass one scratch to the `*_with` variants
//! and amortize even the warm-up across runs.
//!
//! # Data-parallel gradients, deterministic by construction
//!
//! Every minibatch is split into [`grad_shards`] row shards — the shard
//! count is a pure function of the batch size, never of the worker count.
//! Each shard gathers its row range, runs its own forward pass, computes
//! unnormalized per-row loss gradients and backpropagates them into raw
//! per-shard gradient sums ([`Mlp::backward_batch_shard_into`]); the shard
//! sums are then folded in **fixed ascending shard order**
//! ([`Gradients::accumulate_into`]) and divided by the full batch size
//! once. This sharded computation *is* the canonical algorithm: the serial
//! entry points run it inline on a one-worker [`TrainPool`], and the
//! `*_parallel_with` variants run the identical shards on a persistent
//! worker team — so a trained model is byte-identical at any `jobs`
//! (proptest-enforced), the same determinism contract as every other
//! parallel stage in this repository.
//!
//! Validation passes shard the same way; since the forward kernels compute
//! each output row only from its own input row (ascending-`k`
//! accumulation), the gathered validation output is bit-identical to a
//! monolithic forward pass.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::{ClassificationData, RegressionData};
use crate::loss::{
    cross_entropy_shard_into, cross_entropy_weighted_shard_into, mean_class_weight, mse_shard_into,
};
use crate::matrix::Matrix;
use crate::metrics::{accuracy, mape};
use crate::mlp::{ForwardCache, Gradients, Mlp};
use crate::optim::{Adam, Optimizer};
use crate::par::TrainPool;
use crate::prune::ZeroMask;

/// Target rows per gradient shard. Small enough that the default batch of
/// 64 fans out over 8 shards; large enough that a shard's matmuls amortize
/// the per-shard dispatch.
const SHARD_ROWS: usize = 8;
/// Shard-count ceiling, so huge batches (and validation passes) produce a
/// bounded fan-out.
const MAX_SHARDS: usize = 16;

/// Number of gradient shards a batch of `rows` rows splits into: a pure
/// function of the batch size (never of the worker count), which is what
/// makes the sharded gradient — and therefore the trained model —
/// identical at any `jobs`.
pub fn grad_shards(rows: usize) -> usize {
    rows.div_ceil(SHARD_ROWS).clamp(1, MAX_SHARDS)
}

/// Half-open row range `[lo, hi)` of shard `s` when `rows` rows are split
/// into `shards` contiguous shards: the first `rows % shards` shards take
/// one extra row, so every row lands in exactly one shard.
pub fn shard_span(rows: usize, shards: usize, s: usize) -> (usize, usize) {
    let base = rows / shards;
    let extra = rows % shards;
    let lo = s * base + s.min(extra);
    (lo, lo + base + usize::from(s < extra))
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum passes over the training data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Weight classes inversely to their frequency during classification
    /// training (clamped to [0.25, 8]); counters label imbalance.
    pub class_balance: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 3e-3,
            patience: 25,
            seed: 0xDEC1,
            class_balance: false,
        }
    }
}

/// Per-epoch history and final metrics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation metric per epoch (accuracy for classifiers — higher
    /// better; MAPE for regressors — lower better).
    pub val_metric: Vec<f64>,
    /// Best validation metric seen.
    pub best_metric: f64,
    /// Epoch index of the best metric.
    pub best_epoch: usize,
}

/// One shard's private compute buffers: forward cache, loss/backprop
/// deltas, raw gradient sums and gathered labels. Each shard owns a slot,
/// so workers never share a buffer and a slot warmed by one batch serves
/// every later batch (and every later retrain) without allocating.
#[derive(Debug, Clone)]
struct ShardScratch {
    cache: ForwardCache,
    delta: Matrix,
    delta_tmp: Matrix,
    grads: Gradients,
    y_cls: Vec<usize>,
    y_reg: Vec<f32>,
    /// Raw (unnormalized) `f64` loss sum of this shard's rows.
    loss: f64,
}

impl ShardScratch {
    fn new() -> ShardScratch {
        ShardScratch {
            cache: ForwardCache::empty(),
            delta: Matrix::zeros(0, 0),
            delta_tmp: Matrix::zeros(0, 0),
            grads: Gradients::empty(),
            y_cls: Vec::new(),
            y_reg: Vec::new(),
            loss: 0.0,
        }
    }
}

/// Reusable buffers for the training loops: once warm, an epoch performs
/// zero heap allocations. One scratch can serve many trainings (and many
/// model shapes — buffers are resized in place), which is how the RFE and
/// ablation pipelines amortize warm-up across dozens of retrains. The
/// per-shard slot pool inside doubles as the per-worker scratch of the
/// data-parallel path: a slot belongs to whichever worker claimed its
/// shard, for exactly one batch.
#[derive(Debug, Clone)]
pub struct TrainScratch {
    /// Minibatch order: reset to identity and shuffled in place each epoch
    /// (batches are slices of this buffer, never fresh `Vec`s).
    indices: Vec<usize>,
    /// The reduced whole-batch gradient (shard sums folded in fixed order).
    grads: Gradients,
    /// Gathered validation outputs (shard outputs copied back in order).
    val_out: Matrix,
    /// Per-shard slot pool; grown to the shard count on first use.
    shards: Vec<ShardScratch>,
}

impl TrainScratch {
    /// An empty scratch; every buffer grows on first use.
    pub fn new() -> TrainScratch {
        TrainScratch {
            indices: Vec::new(),
            grads: Gradients::empty(),
            val_out: Matrix::zeros(0, 0),
            shards: Vec::new(),
        }
    }
}

impl Default for TrainScratch {
    fn default() -> TrainScratch {
        TrainScratch::new()
    }
}

/// Raw-pointer view of the shard slot pool handed to the worker closure.
/// Mirrors the disjoint-slot pattern of `ssmdvfs::exec`: every shard index
/// is claimed by exactly one worker, so the per-slot `&mut` handed out by
/// [`ShardSlots::slot_ptr`] never aliases. The pool's completion handshake
/// (mutex-protected shard counter) orders all slot writes before the
/// caller's reduction reads.
struct ShardSlots {
    slots: *mut ShardScratch,
    #[cfg(debug_assertions)]
    len: usize,
}

// SAFETY: workers only touch disjoint slots (see above), and ShardScratch
// itself is Send.
unsafe impl Send for ShardSlots {}
unsafe impl Sync for ShardSlots {}

impl ShardSlots {
    fn new(slots: &mut [ShardScratch]) -> ShardSlots {
        ShardSlots {
            slots: slots.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: slots.len(),
        }
    }

    /// Pointer to slot `s`.
    ///
    /// # Safety
    ///
    /// `s` must be in bounds and dereferenced by at most one worker at a
    /// time (guaranteed by the pool's claim counter).
    unsafe fn slot_ptr(&self, s: usize) -> *mut ShardScratch {
        #[cfg(debug_assertions)]
        debug_assert!(s < self.len, "shard index out of bounds");
        self.slots.add(s)
    }
}

/// Grows the slot pool to at least `n` slots.
fn ensure_slots(shards: &mut Vec<ShardScratch>, n: usize) {
    if shards.len() < n {
        shards.resize_with(n, ShardScratch::new);
    }
}

/// Folds the shard gradient sums in ascending shard order and divides by
/// the full batch size — the fixed-order reduction that makes the batch
/// gradient independent of shard scheduling.
fn reduce_shards(shards: &[ShardScratch], grads: &mut Gradients, rows: usize) {
    grads.assign_from(&shards[0].grads);
    for s in &shards[1..] {
        s.grads.accumulate_into(grads);
    }
    grads.div_scalar(rows as f32);
}

/// Sharded forward pass over `x` with the outputs gathered back into `out`
/// in row order. Bit-identical to a monolithic forward: each output row is
/// computed only from its own input row.
fn forward_gathered(
    mlp: &Mlp,
    x: &Matrix,
    pool: &TrainPool,
    shards: &mut Vec<ShardScratch>,
    out: &mut Matrix,
) {
    let rows = x.rows();
    let s_count = grad_shards(rows);
    ensure_slots(shards, s_count);
    out.reshape(rows, mlp.output_size());
    {
        let slots = ShardSlots::new(&mut shards[..s_count]);
        pool.run(s_count, &|s| {
            // SAFETY: the pool hands each shard index to exactly one worker.
            let slot = unsafe { &mut *slots.slot_ptr(s) };
            let (lo, hi) = shard_span(rows, s_count, s);
            let input = slot.cache.input_mut();
            input.reshape(hi - lo, x.cols());
            input.as_mut_slice().copy_from_slice(&x.as_slice()[lo * x.cols()..hi * x.cols()]);
            mlp.forward_cached(&mut slot.cache);
        });
    }
    for (s, slot) in shards[..s_count].iter().enumerate() {
        let (lo, hi) = shard_span(rows, s_count, s);
        let o = slot.cache.output();
        for r in lo..hi {
            out.row_mut(r).copy_from_slice(o.row(r - lo));
        }
    }
}

/// One sharded classifier gradient step over `batch` (indices into
/// `train`): shard forwards + raw backward sums on the pool, fixed-order
/// reduction into `grads`, mean batch loss returned. Batch-level
/// statistics (the mean class weight) are hoisted out of the shards so the
/// partition never changes them.
fn classifier_batch_step(
    mlp: &Mlp,
    train: &ClassificationData,
    batch: &[usize],
    class_weights: Option<&[f32]>,
    pool: &TrainPool,
    shards: &mut [ShardScratch],
    grads: &mut Gradients,
) -> f32 {
    let rows = batch.len();
    let s_count = grad_shards(rows);
    let weighted =
        class_weights.map(|w| (w, mean_class_weight(batch.iter().map(|&i| train.y[i]), w)));
    {
        let slots = ShardSlots::new(&mut shards[..s_count]);
        pool.run(s_count, &|s| {
            // SAFETY: the pool hands each shard index to exactly one worker.
            let slot = unsafe { &mut *slots.slot_ptr(s) };
            let (lo, hi) = shard_span(rows, s_count, s);
            let idx = &batch[lo..hi];
            train.x.select_rows_into(idx, slot.cache.input_mut());
            slot.y_cls.clear();
            slot.y_cls.extend(idx.iter().map(|&i| train.y[i]));
            mlp.forward_cached(&mut slot.cache);
            let ShardScratch { cache, delta, delta_tmp, grads, y_cls, loss, .. } = slot;
            *loss = match weighted {
                Some((w, mean_w)) => {
                    cross_entropy_weighted_shard_into(cache.output(), y_cls, w, mean_w, delta)
                }
                None => cross_entropy_shard_into(cache.output(), y_cls, delta),
            };
            mlp.backward_batch_shard_into(cache, delta, delta_tmp, grads);
        });
    }
    reduce_shards(&shards[..s_count], grads, rows);
    let loss_sum: f64 = shards[..s_count].iter().map(|s| s.loss).sum();
    (loss_sum / rows as f64) as f32
}

/// The regressor twin of [`classifier_batch_step`].
fn regressor_batch_step(
    mlp: &Mlp,
    train: &RegressionData,
    batch: &[usize],
    pool: &TrainPool,
    shards: &mut [ShardScratch],
    grads: &mut Gradients,
) -> f32 {
    let rows = batch.len();
    let s_count = grad_shards(rows);
    {
        let slots = ShardSlots::new(&mut shards[..s_count]);
        pool.run(s_count, &|s| {
            // SAFETY: the pool hands each shard index to exactly one worker.
            let slot = unsafe { &mut *slots.slot_ptr(s) };
            let (lo, hi) = shard_span(rows, s_count, s);
            let idx = &batch[lo..hi];
            train.x.select_rows_into(idx, slot.cache.input_mut());
            slot.y_reg.clear();
            slot.y_reg.extend(idx.iter().map(|&i| train.y[i]));
            mlp.forward_cached(&mut slot.cache);
            let ShardScratch { cache, delta, delta_tmp, grads, y_reg, loss, .. } = slot;
            *loss = mse_shard_into(cache.output(), y_reg, delta);
            mlp.backward_batch_shard_into(cache, delta, delta_tmp, grads);
        });
    }
    reduce_shards(&shards[..s_count], grads, rows);
    let loss_sum: f64 = shards[..s_count].iter().map(|s| s.loss).sum();
    (loss_sum / rows as f64) as f32
}

/// Trains `mlp` as a softmax classifier, early-stopping on validation
/// accuracy and restoring the best weights.
///
/// # Panics
///
/// Panics if the model output width differs from `train.num_classes` or a
/// dataset is empty.
pub fn train_classifier(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
) -> TrainReport {
    train_classifier_masked(mlp, train, val, config, None)
}

/// [`train_classifier`] with an optional sparsity mask: weights the mask
/// marks as frozen are re-zeroed after every optimizer step, so pruned
/// models can be fine-tuned without losing their sparsity (used by the
/// Section IV compression pipeline).
///
/// # Panics
///
/// As [`train_classifier`], plus if the mask does not match the model.
pub fn train_classifier_masked(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    train_classifier_with(mlp, train, val, config, mask, &mut TrainScratch::new())
}

/// [`train_classifier_masked`] running through a caller-owned
/// [`TrainScratch`], so repeated trainings (RFE rounds, ablations) reuse
/// every epoch buffer. For a given seed the result is identical to the
/// scratch-free entry points.
///
/// # Panics
///
/// As [`train_classifier_masked`].
pub fn train_classifier_with(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
) -> TrainReport {
    train_classifier_parallel_with(mlp, train, val, config, mask, scratch, &TrainPool::serial())
}

/// [`train_classifier_with`] with the shard fan-out running on a
/// caller-owned [`TrainPool`]. The trained model, report and every
/// intermediate float are **byte-identical** to the serial entry points at
/// any worker count: the shard partition depends only on the batch size
/// and the reduction order is fixed (see the module docs).
///
/// # Panics
///
/// As [`train_classifier_with`].
pub fn train_classifier_parallel_with(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
    pool: &TrainPool,
) -> TrainReport {
    assert_eq!(mlp.output_size(), train.num_classes, "output width must equal class count");
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_classifier:{} rows", train.len());
    let _prof = obs::prof::scope("train.classifier");
    // Pre-register the shard counters so a serial run still exports them.
    obs::counter!("train.grad_shards").inc(0);
    obs::counter!("train.parallel_batches").inc(0);
    let class_weights: Option<Vec<f32>> = config.class_balance.then(|| {
        let mut counts = vec![0usize; train.num_classes];
        for &l in &train.y {
            counts[l] += 1;
        }
        let n = train.len() as f32;
        counts
            .iter()
            .map(|&c| (n / (train.num_classes as f32 * c.max(1) as f32)).clamp(0.25, 8.0))
            .collect()
    });
    let TrainScratch { indices, grads, val_out, shards } = scratch;
    let chunk = config.batch_size.max(1);
    ensure_slots(shards, grad_shards(chunk.min(train.len())).max(grad_shards(val.len())));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // The incoming weights are a candidate too (essential when fine-tuning
    // an already-useful model): training must never return something worse
    // than what it started with.
    forward_gathered(mlp, &val.x, pool, shards, val_out);
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_metric: Vec::with_capacity(config.epochs),
        best_metric: accuracy(val_out, &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        // Reset to the identity permutation before shuffling so the batch
        // sequence for a given seed matches the historical fresh-Vec
        // implementation exactly.
        indices.clear();
        indices.extend(0..train.len());
        indices.shuffle(&mut rng);
        let num_batches = train.len().div_ceil(chunk);
        for batch in indices.chunks(chunk) {
            let t0 = Instant::now();
            let loss = classifier_batch_step(
                mlp,
                train,
                batch,
                class_weights.as_deref(),
                pool,
                shards,
                grads,
            );
            opt.step(mlp, grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
            obs::counter!("train.grad_shards").inc(grad_shards(batch.len()) as u64);
            if pool.jobs() > 1 {
                obs::counter!("train.parallel_batches").inc(1);
            }
            obs::histogram!("train.batch_latency_us").record(t0.elapsed().as_secs_f64() * 1e6);
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        forward_gathered(mlp, &val.x, pool, shards, val_out);
        let acc = accuracy(val_out, &val.y);
        report.val_metric.push(acc);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.classifier_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_accuracy").set(acc);
        if acc > report.best_metric {
            report.best_metric = acc;
            report.best_epoch = epoch;
            best_weights.copy_weights_from(mlp);
        } else if epoch - report.best_epoch >= config.patience {
            obs::counter!("tinynn.train.early_stops").inc(1);
            break;
        }
    }
    mlp.copy_weights_from(&best_weights);
    report
}

/// Trains `mlp` as a scalar regressor, early-stopping on validation MAPE and
/// restoring the best weights.
///
/// # Panics
///
/// Panics if a dataset is empty.
pub fn train_regressor(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
) -> TrainReport {
    train_regressor_masked(mlp, train, val, config, None)
}

/// [`train_regressor`] with an optional sparsity mask (see
/// [`train_classifier_masked`]).
///
/// # Panics
///
/// As [`train_regressor`], plus if the mask does not match the model.
pub fn train_regressor_masked(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    train_regressor_with(mlp, train, val, config, mask, &mut TrainScratch::new())
}

/// [`train_regressor_masked`] running through a caller-owned
/// [`TrainScratch`] (see [`train_classifier_with`]).
///
/// # Panics
///
/// As [`train_regressor_masked`].
pub fn train_regressor_with(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
) -> TrainReport {
    train_regressor_parallel_with(mlp, train, val, config, mask, scratch, &TrainPool::serial())
}

/// [`train_regressor_with`] on a caller-owned [`TrainPool`] — byte-identical
/// to the serial entry points at any worker count (see
/// [`train_classifier_parallel_with`]).
///
/// # Panics
///
/// As [`train_regressor_with`].
pub fn train_regressor_parallel_with(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
    pool: &TrainPool,
) -> TrainReport {
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_regressor:{} rows", train.len());
    let _prof = obs::prof::scope("train.regressor");
    obs::counter!("train.grad_shards").inc(0);
    obs::counter!("train.parallel_batches").inc(0);
    let TrainScratch { indices, grads, val_out, shards } = scratch;
    let chunk = config.batch_size.max(1);
    ensure_slots(shards, grad_shards(chunk.min(train.len())).max(grad_shards(val.len())));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // As in the classifier: the incoming weights are the first candidate.
    forward_gathered(mlp, &val.x, pool, shards, val_out);
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_metric: Vec::with_capacity(config.epochs),
        best_metric: mape(val_out, &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        indices.clear();
        indices.extend(0..train.len());
        indices.shuffle(&mut rng);
        let num_batches = train.len().div_ceil(chunk);
        for batch in indices.chunks(chunk) {
            let t0 = Instant::now();
            let loss = regressor_batch_step(mlp, train, batch, pool, shards, grads);
            opt.step(mlp, grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
            obs::counter!("train.grad_shards").inc(grad_shards(batch.len()) as u64);
            if pool.jobs() > 1 {
                obs::counter!("train.parallel_batches").inc(1);
            }
            obs::histogram!("train.batch_latency_us").record(t0.elapsed().as_secs_f64() * 1e6);
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        forward_gathered(mlp, &val.x, pool, shards, val_out);
        let m = mape(val_out, &val.y);
        report.val_metric.push(m);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.regressor_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_mape").set(m);
        if m < report.best_metric {
            report.best_metric = m;
            report.best_epoch = epoch;
            best_weights.copy_weights_from(mlp);
        } else if epoch - report.best_epoch >= config.patience {
            obs::counter!("tinynn.train.early_stops").inc(1);
            break;
        }
    }
    mlp.copy_weights_from(&best_weights);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;

    /// A linearly separable 3-class problem on a ring.
    fn toy_classification(n: usize, seed: u64) -> ClassificationData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let angle = class as f32 * 2.094 + rng.gen_range(-0.4..0.4);
            x[(i, 0)] = angle.cos() + rng.gen_range(-0.1..0.1);
            x[(i, 1)] = angle.sin() + rng.gen_range(-0.1..0.1);
            y.push(class);
        }
        ClassificationData::new(x, y, 3)
    }

    fn toy_regression(n: usize, seed: u64) -> RegressionData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.gen_range(-1.0f32..1.0);
            let b = rng.gen_range(-1.0f32..1.0);
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push(3.0 * a - 2.0 * b + 5.0);
        }
        RegressionData::new(x, y)
    }

    #[test]
    fn classifier_learns_separable_classes() {
        let data = toy_classification(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 3], &mut rng);
        let cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric > 0.9,
            "separable classes should reach >90% accuracy, got {:.3}",
            report.best_metric
        );
    }

    #[test]
    fn regressor_learns_linear_map() {
        let data = toy_regression(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric < 5.0,
            "linear map MAPE should be <5%, got {:.2}",
            report.best_metric
        );
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = toy_classification(120, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (train, val) = data.split(0.3, &mut rng);
        let mut mlp = Mlp::new(&[2, 8, 3], &mut rng);
        let cfg = TrainConfig { epochs: 60, patience: 5, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        // The restored model's validation accuracy equals the best metric.
        let final_acc = accuracy(&mlp.forward(&val.x), &val.y);
        assert!((final_acc - report.best_metric).abs() < 1e-9);
        // Early stopping actually triggered or training ran to the end.
        assert!(report.val_metric.len() <= cfg.epochs);
    }

    #[test]
    fn scratch_reuse_never_changes_results() {
        // A scratch warmed by a previous (different-shape) training must
        // produce bit-identical models and reports to a fresh one.
        let data = toy_classification(150, 9);
        let reg = toy_regression(150, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let (train, val) = data.split(0.25, &mut rng);
        let (rtrain, rval) = reg.split(0.25, &mut rng);
        let cfg = TrainConfig { epochs: 15, ..TrainConfig::default() };

        let mut warm = TrainScratch::new();
        let mut warm_reg = Mlp::new(&[2, 6, 1], &mut StdRng::seed_from_u64(12));
        train_regressor_with(&mut warm_reg, &rtrain, &rval, &cfg, None, &mut warm);

        let mut fresh_mlp = Mlp::new(&[2, 8, 3], &mut StdRng::seed_from_u64(13));
        let mut warm_mlp = fresh_mlp.clone();
        let fresh_report = train_classifier(&mut fresh_mlp, &train, &val, &cfg);
        let warm_report = train_classifier_with(&mut warm_mlp, &train, &val, &cfg, None, &mut warm);
        assert_eq!(fresh_mlp, warm_mlp);
        assert_eq!(fresh_report, warm_report);
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = toy_regression(200, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let (train, val) = data.split(0.2, &mut rng);
        let mut mlp = Mlp::new(&[2, 12, 1], &mut rng);
        let cfg = TrainConfig { epochs: 80, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "loss should at least halve: {first} -> {last}");
    }

    #[test]
    fn shard_spans_cover_every_sample_exactly_once() {
        for rows in [1usize, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 127, 128, 129, 1_000] {
            let shards = grad_shards(rows);
            assert!(shards >= 1 && shards <= rows.min(MAX_SHARDS), "rows={rows} shards={shards}");
            let mut next = 0usize;
            for s in 0..shards {
                let (lo, hi) = shard_span(rows, shards, s);
                assert_eq!(lo, next, "shard {s} of {shards} must start where {rows} left off");
                assert!(hi > lo, "shard {s} of {shards} must be non-empty at {rows} rows");
                next = hi;
            }
            assert_eq!(next, rows, "shards must cover all {rows} rows");
        }
    }

    #[test]
    fn degenerate_batch_sizes_shard_and_train_identically() {
        // Batch sizes of 1, n-1 and a non-divisible tail must produce the
        // same bytes at 1 and 4 workers.
        let data = toy_classification(45, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let (train, val) = data.split(0.2, &mut rng);
        let pool = TrainPool::new(4);
        for batch_size in [1usize, train.len() - 1, 13] {
            let cfg = TrainConfig { epochs: 4, batch_size, ..TrainConfig::default() };
            let init = Mlp::new(&[2, 8, 3], &mut StdRng::seed_from_u64(23));
            let mut serial = init.clone();
            let serial_report = train_classifier_with(
                &mut serial,
                &train,
                &val,
                &cfg,
                None,
                &mut TrainScratch::new(),
            );
            let mut parallel = init.clone();
            let parallel_report = train_classifier_parallel_with(
                &mut parallel,
                &train,
                &val,
                &cfg,
                None,
                &mut TrainScratch::new(),
                &pool,
            );
            assert_eq!(serial, parallel, "batch_size={batch_size} diverged");
            assert_eq!(serial_report, parallel_report, "batch_size={batch_size} report diverged");
        }
    }

    #[test]
    fn parallel_training_is_byte_identical_for_both_heads() {
        let data = toy_classification(150, 31);
        let reg = toy_regression(150, 32);
        let mut rng = StdRng::seed_from_u64(33);
        let (train, val) = data.split(0.25, &mut rng);
        let (rtrain, rval) = reg.split(0.25, &mut rng);
        // class_balance exercises the hoisted batch-mean weight.
        let cfg = TrainConfig { epochs: 10, class_balance: true, ..TrainConfig::default() };

        let init_cls = Mlp::new(&[2, 10, 3], &mut StdRng::seed_from_u64(34));
        let init_reg = Mlp::new(&[2, 10, 1], &mut StdRng::seed_from_u64(35));
        let mut serial_cls = init_cls.clone();
        let mut serial_reg = init_reg.clone();
        let sc = train_classifier_with(
            &mut serial_cls,
            &train,
            &val,
            &cfg,
            None,
            &mut TrainScratch::new(),
        );
        let sr = train_regressor_with(
            &mut serial_reg,
            &rtrain,
            &rval,
            &cfg,
            None,
            &mut TrainScratch::new(),
        );
        for jobs in [2usize, 4, 7] {
            let pool = TrainPool::new(jobs);
            let mut scratch = TrainScratch::new();
            let mut par_cls = init_cls.clone();
            let pc = train_classifier_parallel_with(
                &mut par_cls,
                &train,
                &val,
                &cfg,
                None,
                &mut scratch,
                &pool,
            );
            let mut par_reg = init_reg.clone();
            let pr = train_regressor_parallel_with(
                &mut par_reg,
                &rtrain,
                &rval,
                &cfg,
                None,
                &mut scratch,
                &pool,
            );
            assert_eq!(serial_cls, par_cls, "classifier diverged at {jobs} workers");
            assert_eq!(sc, pc, "classifier report diverged at {jobs} workers");
            assert_eq!(serial_reg, par_reg, "regressor diverged at {jobs} workers");
            assert_eq!(sr, pr, "regressor report diverged at {jobs} workers");
        }
    }
}
