//! Minibatch training loops for classifiers and regressors.
//!
//! The epoch loops are allocation-free after warm-up: every buffer a batch
//! needs — the shuffled index buffer, the gathered minibatch, the forward
//! cache, the loss gradient, the backprop deltas and the per-layer
//! gradients — lives in a reusable [`TrainScratch`]. Callers that retrain
//! many models (RFE, ablations) pass one scratch to the `*_with` variants
//! and amortize even the warm-up across runs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::{ClassificationData, RegressionData};
use crate::loss::{cross_entropy_into, cross_entropy_weighted_into, mse_into};
use crate::matrix::Matrix;
use crate::metrics::{accuracy, mape};
use crate::mlp::{ForwardCache, Gradients, Mlp};
use crate::optim::{Adam, Optimizer};
use crate::prune::ZeroMask;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum passes over the training data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Weight classes inversely to their frequency during classification
    /// training (clamped to [0.25, 8]); counters label imbalance.
    pub class_balance: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 3e-3,
            patience: 25,
            seed: 0xDEC1,
            class_balance: false,
        }
    }
}

/// Per-epoch history and final metrics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation metric per epoch (accuracy for classifiers — higher
    /// better; MAPE for regressors — lower better).
    pub val_metric: Vec<f64>,
    /// Best validation metric seen.
    pub best_metric: f64,
    /// Epoch index of the best metric.
    pub best_epoch: usize,
}

/// Reusable buffers for the training loops: once warm, an epoch performs
/// zero heap allocations. One scratch can serve many trainings (and many
/// model shapes — buffers are resized in place), which is how the RFE and
/// ablation pipelines amortize warm-up across dozens of retrains.
#[derive(Debug, Clone)]
pub struct TrainScratch {
    /// Minibatch order: reset to identity and shuffled in place each epoch
    /// (batches are slices of this buffer, never fresh `Vec`s).
    indices: Vec<usize>,
    /// Forward activations for the current minibatch; the minibatch itself
    /// is gathered into the cache's input slot.
    cache: ForwardCache,
    /// Forward activations for the validation pass.
    val_cache: ForwardCache,
    /// Per-layer gradients.
    grads: Gradients,
    /// Loss gradient / backprop ping-pong buffers.
    delta: Matrix,
    delta_tmp: Matrix,
    /// Gathered minibatch labels / targets.
    y_cls: Vec<usize>,
    y_reg: Vec<f32>,
}

impl TrainScratch {
    /// An empty scratch; every buffer grows on first use.
    pub fn new() -> TrainScratch {
        TrainScratch {
            indices: Vec::new(),
            cache: ForwardCache::empty(),
            val_cache: ForwardCache::empty(),
            grads: Gradients::empty(),
            delta: Matrix::zeros(0, 0),
            delta_tmp: Matrix::zeros(0, 0),
            y_cls: Vec::new(),
            y_reg: Vec::new(),
        }
    }
}

impl Default for TrainScratch {
    fn default() -> TrainScratch {
        TrainScratch::new()
    }
}

/// Trains `mlp` as a softmax classifier, early-stopping on validation
/// accuracy and restoring the best weights.
///
/// # Panics
///
/// Panics if the model output width differs from `train.num_classes` or a
/// dataset is empty.
pub fn train_classifier(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
) -> TrainReport {
    train_classifier_masked(mlp, train, val, config, None)
}

/// [`train_classifier`] with an optional sparsity mask: weights the mask
/// marks as frozen are re-zeroed after every optimizer step, so pruned
/// models can be fine-tuned without losing their sparsity (used by the
/// Section IV compression pipeline).
///
/// # Panics
///
/// As [`train_classifier`], plus if the mask does not match the model.
pub fn train_classifier_masked(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    train_classifier_with(mlp, train, val, config, mask, &mut TrainScratch::new())
}

/// [`train_classifier_masked`] running through a caller-owned
/// [`TrainScratch`], so repeated trainings (RFE rounds, ablations) reuse
/// every epoch buffer. For a given seed the result is identical to the
/// scratch-free entry points.
///
/// # Panics
///
/// As [`train_classifier_masked`].
pub fn train_classifier_with(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
) -> TrainReport {
    assert_eq!(mlp.output_size(), train.num_classes, "output width must equal class count");
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_classifier:{} rows", train.len());
    let _prof = obs::prof::scope("train.classifier");
    let class_weights: Option<Vec<f32>> = config.class_balance.then(|| {
        let mut counts = vec![0usize; train.num_classes];
        for &l in &train.y {
            counts[l] += 1;
        }
        let n = train.len() as f32;
        counts
            .iter()
            .map(|&c| (n / (train.num_classes as f32 * c.max(1) as f32)).clamp(0.25, 8.0))
            .collect()
    });
    let TrainScratch { indices, cache, val_cache, grads, delta, delta_tmp, y_cls, .. } = scratch;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // The incoming weights are a candidate too (essential when fine-tuning
    // an already-useful model): training must never return something worse
    // than what it started with.
    mlp.forward_into(&val.x, val_cache);
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_metric: Vec::with_capacity(config.epochs),
        best_metric: accuracy(val_cache.output(), &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        // Reset to the identity permutation before shuffling so the batch
        // sequence for a given seed matches the historical fresh-Vec
        // implementation exactly.
        indices.clear();
        indices.extend(0..train.len());
        indices.shuffle(&mut rng);
        let chunk = config.batch_size.max(1);
        let num_batches = train.len().div_ceil(chunk);
        for batch in indices.chunks(chunk) {
            train.x.select_rows_into(batch, cache.input_mut());
            y_cls.clear();
            y_cls.extend(batch.iter().map(|&i| train.y[i]));
            mlp.forward_cached(cache);
            let loss = match &class_weights {
                Some(w) => cross_entropy_weighted_into(cache.output(), y_cls, w, delta),
                None => cross_entropy_into(cache.output(), y_cls, delta),
            };
            mlp.backward_into(cache, delta, delta_tmp, grads);
            opt.step(mlp, grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        mlp.forward_into(&val.x, val_cache);
        let acc = accuracy(val_cache.output(), &val.y);
        report.val_metric.push(acc);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.classifier_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_accuracy").set(acc);
        if acc > report.best_metric {
            report.best_metric = acc;
            report.best_epoch = epoch;
            best_weights.copy_weights_from(mlp);
        } else if epoch - report.best_epoch >= config.patience {
            obs::counter!("tinynn.train.early_stops").inc(1);
            break;
        }
    }
    mlp.copy_weights_from(&best_weights);
    report
}

/// Trains `mlp` as a scalar regressor, early-stopping on validation MAPE and
/// restoring the best weights.
///
/// # Panics
///
/// Panics if a dataset is empty.
pub fn train_regressor(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
) -> TrainReport {
    train_regressor_masked(mlp, train, val, config, None)
}

/// [`train_regressor`] with an optional sparsity mask (see
/// [`train_classifier_masked`]).
///
/// # Panics
///
/// As [`train_regressor`], plus if the mask does not match the model.
pub fn train_regressor_masked(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    train_regressor_with(mlp, train, val, config, mask, &mut TrainScratch::new())
}

/// [`train_regressor_masked`] running through a caller-owned
/// [`TrainScratch`] (see [`train_classifier_with`]).
///
/// # Panics
///
/// As [`train_regressor_masked`].
pub fn train_regressor_with(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
    scratch: &mut TrainScratch,
) -> TrainReport {
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_regressor:{} rows", train.len());
    let _prof = obs::prof::scope("train.regressor");
    let TrainScratch { indices, cache, val_cache, grads, delta, delta_tmp, y_reg, .. } = scratch;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // As in the classifier: the incoming weights are the first candidate.
    mlp.forward_into(&val.x, val_cache);
    let mut report = TrainReport {
        train_loss: Vec::with_capacity(config.epochs),
        val_metric: Vec::with_capacity(config.epochs),
        best_metric: mape(val_cache.output(), &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        indices.clear();
        indices.extend(0..train.len());
        indices.shuffle(&mut rng);
        let chunk = config.batch_size.max(1);
        let num_batches = train.len().div_ceil(chunk);
        for batch in indices.chunks(chunk) {
            train.x.select_rows_into(batch, cache.input_mut());
            y_reg.clear();
            y_reg.extend(batch.iter().map(|&i| train.y[i]));
            mlp.forward_cached(cache);
            let loss = mse_into(cache.output(), y_reg, delta);
            mlp.backward_into(cache, delta, delta_tmp, grads);
            opt.step(mlp, grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        mlp.forward_into(&val.x, val_cache);
        let m = mape(val_cache.output(), &val.y);
        report.val_metric.push(m);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.regressor_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_mape").set(m);
        if m < report.best_metric {
            report.best_metric = m;
            report.best_epoch = epoch;
            best_weights.copy_weights_from(mlp);
        } else if epoch - report.best_epoch >= config.patience {
            obs::counter!("tinynn.train.early_stops").inc(1);
            break;
        }
    }
    mlp.copy_weights_from(&best_weights);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;

    /// A linearly separable 3-class problem on a ring.
    fn toy_classification(n: usize, seed: u64) -> ClassificationData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let angle = class as f32 * 2.094 + rng.gen_range(-0.4..0.4);
            x[(i, 0)] = angle.cos() + rng.gen_range(-0.1..0.1);
            x[(i, 1)] = angle.sin() + rng.gen_range(-0.1..0.1);
            y.push(class);
        }
        ClassificationData::new(x, y, 3)
    }

    fn toy_regression(n: usize, seed: u64) -> RegressionData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.gen_range(-1.0f32..1.0);
            let b = rng.gen_range(-1.0f32..1.0);
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push(3.0 * a - 2.0 * b + 5.0);
        }
        RegressionData::new(x, y)
    }

    #[test]
    fn classifier_learns_separable_classes() {
        let data = toy_classification(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 3], &mut rng);
        let cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric > 0.9,
            "separable classes should reach >90% accuracy, got {:.3}",
            report.best_metric
        );
    }

    #[test]
    fn regressor_learns_linear_map() {
        let data = toy_regression(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric < 5.0,
            "linear map MAPE should be <5%, got {:.2}",
            report.best_metric
        );
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = toy_classification(120, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (train, val) = data.split(0.3, &mut rng);
        let mut mlp = Mlp::new(&[2, 8, 3], &mut rng);
        let cfg = TrainConfig { epochs: 60, patience: 5, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        // The restored model's validation accuracy equals the best metric.
        let final_acc = accuracy(&mlp.forward(&val.x), &val.y);
        assert!((final_acc - report.best_metric).abs() < 1e-9);
        // Early stopping actually triggered or training ran to the end.
        assert!(report.val_metric.len() <= cfg.epochs);
    }

    #[test]
    fn scratch_reuse_never_changes_results() {
        // A scratch warmed by a previous (different-shape) training must
        // produce bit-identical models and reports to a fresh one.
        let data = toy_classification(150, 9);
        let reg = toy_regression(150, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let (train, val) = data.split(0.25, &mut rng);
        let (rtrain, rval) = reg.split(0.25, &mut rng);
        let cfg = TrainConfig { epochs: 15, ..TrainConfig::default() };

        let mut warm = TrainScratch::new();
        let mut warm_reg = Mlp::new(&[2, 6, 1], &mut StdRng::seed_from_u64(12));
        train_regressor_with(&mut warm_reg, &rtrain, &rval, &cfg, None, &mut warm);

        let mut fresh_mlp = Mlp::new(&[2, 8, 3], &mut StdRng::seed_from_u64(13));
        let mut warm_mlp = fresh_mlp.clone();
        let fresh_report = train_classifier(&mut fresh_mlp, &train, &val, &cfg);
        let warm_report = train_classifier_with(&mut warm_mlp, &train, &val, &cfg, None, &mut warm);
        assert_eq!(fresh_mlp, warm_mlp);
        assert_eq!(fresh_report, warm_report);
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = toy_regression(200, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let (train, val) = data.split(0.2, &mut rng);
        let mut mlp = Mlp::new(&[2, 12, 1], &mut rng);
        let cfg = TrainConfig { epochs: 80, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "loss should at least halve: {first} -> {last}");
    }
}
