//! Minibatch training loops for classifiers and regressors.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::data::{ClassificationData, RegressionData};
use crate::loss::{cross_entropy, cross_entropy_weighted, mse};
use crate::metrics::{accuracy, mape};
use crate::mlp::Mlp;
use crate::optim::{Adam, Optimizer};
use crate::prune::ZeroMask;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum passes over the training data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Weight classes inversely to their frequency during classification
    /// training (clamped to [0.25, 8]); counters label imbalance.
    pub class_balance: bool,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 3e-3,
            patience: 25,
            seed: 0xDEC1,
            class_balance: false,
        }
    }
}

/// Per-epoch history and final metrics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation metric per epoch (accuracy for classifiers — higher
    /// better; MAPE for regressors — lower better).
    pub val_metric: Vec<f64>,
    /// Best validation metric seen.
    pub best_metric: f64,
    /// Epoch index of the best metric.
    pub best_epoch: usize,
}

fn minibatches(n: usize, batch: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch.max(1)).map(<[usize]>::to_vec).collect()
}

/// Trains `mlp` as a softmax classifier, early-stopping on validation
/// accuracy and restoring the best weights.
///
/// # Panics
///
/// Panics if the model output width differs from `train.num_classes` or a
/// dataset is empty.
pub fn train_classifier(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
) -> TrainReport {
    train_classifier_masked(mlp, train, val, config, None)
}

/// [`train_classifier`] with an optional sparsity mask: weights the mask
/// marks as frozen are re-zeroed after every optimizer step, so pruned
/// models can be fine-tuned without losing their sparsity (used by the
/// Section IV compression pipeline).
///
/// # Panics
///
/// As [`train_classifier`], plus if the mask does not match the model.
pub fn train_classifier_masked(
    mlp: &mut Mlp,
    train: &ClassificationData,
    val: &ClassificationData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    assert_eq!(mlp.output_size(), train.num_classes, "output width must equal class count");
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_classifier:{} rows", train.len());
    let class_weights: Option<Vec<f32>> = config.class_balance.then(|| {
        let mut counts = vec![0usize; train.num_classes];
        for &l in &train.y {
            counts[l] += 1;
        }
        let n = train.len() as f32;
        counts
            .iter()
            .map(|&c| (n / (train.num_classes as f32 * c.max(1) as f32)).clamp(0.25, 8.0))
            .collect()
    });
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // The incoming weights are a candidate too (essential when fine-tuning
    // an already-useful model): training must never return something worse
    // than what it started with.
    let mut report = TrainReport {
        train_loss: Vec::new(),
        val_metric: Vec::new(),
        best_metric: accuracy(&mlp.forward(&val.x), &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        let batches = minibatches(train.len(), config.batch_size, &mut rng);
        let num_batches = batches.len();
        for batch in batches {
            let x = train.x.select_rows(&batch);
            let y: Vec<usize> = batch.iter().map(|&i| train.y[i]).collect();
            let cache = mlp.forward_train(&x);
            let (loss, d) = match &class_weights {
                Some(w) => cross_entropy_weighted(cache.output(), &y, w),
                None => cross_entropy(cache.output(), &y),
            };
            let grads = mlp.backward(&cache, &d);
            opt.step(mlp, &grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        let acc = accuracy(&mlp.forward(&val.x), &val.y);
        report.val_metric.push(acc);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.classifier_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_accuracy").set(acc);
        if acc > report.best_metric {
            report.best_metric = acc;
            report.best_epoch = epoch;
            best_weights = mlp.clone();
        } else if epoch - report.best_epoch >= config.patience {
            break;
        }
    }
    *mlp = best_weights;
    report
}

/// Trains `mlp` as a scalar regressor, early-stopping on validation MAPE and
/// restoring the best weights.
///
/// # Panics
///
/// Panics if a dataset is empty.
pub fn train_regressor(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
) -> TrainReport {
    train_regressor_masked(mlp, train, val, config, None)
}

/// [`train_regressor`] with an optional sparsity mask (see
/// [`train_classifier_masked`]).
///
/// # Panics
///
/// As [`train_regressor`], plus if the mask does not match the model.
pub fn train_regressor_masked(
    mlp: &mut Mlp,
    train: &RegressionData,
    val: &RegressionData,
    config: &TrainConfig,
    mask: Option<&ZeroMask>,
) -> TrainReport {
    assert!(!train.is_empty() && !val.is_empty(), "datasets must be non-empty");
    let _span = obs::span!("train", "train_regressor:{} rows", train.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    // As in the classifier: the incoming weights are the first candidate.
    let mut report = TrainReport {
        train_loss: Vec::new(),
        val_metric: Vec::new(),
        best_metric: mape(&mlp.forward(&val.x), &val.y),
        best_epoch: 0,
    };
    let mut best_weights = mlp.clone();
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0f64;
        let batches = minibatches(train.len(), config.batch_size, &mut rng);
        let num_batches = batches.len();
        for batch in batches {
            let x = train.x.select_rows(&batch);
            let y: Vec<f32> = batch.iter().map(|&i| train.y[i]).collect();
            let cache = mlp.forward_train(&x);
            let (loss, d) = mse(cache.output(), &y);
            let grads = mlp.backward(&cache, &d);
            opt.step(mlp, &grads);
            if let Some(mask) = mask {
                mask.apply(mlp);
            }
            epoch_loss += loss as f64;
        }
        report.train_loss.push((epoch_loss / num_batches as f64) as f32);
        let m = mape(&mlp.forward(&val.x), &val.y);
        report.val_metric.push(m);
        obs::counter!("tinynn.train.epochs").inc(1);
        obs::gauge!("tinynn.train.regressor_loss").set(epoch_loss / num_batches as f64);
        obs::gauge!("tinynn.train.val_mape").set(m);
        if m < report.best_metric {
            report.best_metric = m;
            report.best_epoch = epoch;
            best_weights = mlp.clone();
        } else if epoch - report.best_epoch >= config.patience {
            break;
        }
    }
    *mlp = best_weights;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;

    /// A linearly separable 3-class problem on a ring.
    fn toy_classification(n: usize, seed: u64) -> ClassificationData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let angle = class as f32 * 2.094 + rng.gen_range(-0.4..0.4);
            x[(i, 0)] = angle.cos() + rng.gen_range(-0.1..0.1);
            x[(i, 1)] = angle.sin() + rng.gen_range(-0.1..0.1);
            y.push(class);
        }
        ClassificationData::new(x, y, 3)
    }

    fn toy_regression(n: usize, seed: u64) -> RegressionData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.gen_range(-1.0f32..1.0);
            let b = rng.gen_range(-1.0f32..1.0);
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push(3.0 * a - 2.0 * b + 5.0);
        }
        RegressionData::new(x, y)
    }

    #[test]
    fn classifier_learns_separable_classes() {
        let data = toy_classification(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 3], &mut rng);
        let cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric > 0.9,
            "separable classes should reach >90% accuracy, got {:.3}",
            report.best_metric
        );
    }

    #[test]
    fn regressor_learns_linear_map() {
        let data = toy_regression(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (train, val) = data.split(0.25, &mut rng);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        assert!(
            report.best_metric < 5.0,
            "linear map MAPE should be <5%, got {:.2}",
            report.best_metric
        );
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let data = toy_classification(120, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (train, val) = data.split(0.3, &mut rng);
        let mut mlp = Mlp::new(&[2, 8, 3], &mut rng);
        let cfg = TrainConfig { epochs: 60, patience: 5, ..TrainConfig::default() };
        let report = train_classifier(&mut mlp, &train, &val, &cfg);
        // The restored model's validation accuracy equals the best metric.
        let final_acc = accuracy(&mlp.forward(&val.x), &val.y);
        assert!((final_acc - report.best_metric).abs() < 1e-9);
        // Early stopping actually triggered or training ran to the end.
        assert!(report.val_metric.len() <= cfg.epochs);
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = toy_regression(200, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let (train, val) = data.split(0.2, &mut rng);
        let mut mlp = Mlp::new(&[2, 12, 1], &mut rng);
        let cfg = TrainConfig { epochs: 80, ..TrainConfig::default() };
        let report = train_regressor(&mut mlp, &train, &val, &cfg);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "loss should at least halve: {first} -> {last}");
    }
}
