//! A from-scratch MLP training, compression and feature-selection library.
//!
//! This crate supplies everything the SSMDVFS models need — and nothing
//! more. The paper's networks are tiny (at most nine fully connected layers
//! of twenty ReLU neurons), so a dependency-free `f32` implementation trains
//! them in milliseconds while giving the compression pipeline (Section IV of
//! the paper) direct access to the weights:
//!
//! * [`Matrix`], [`Dense`], [`Mlp`] — the model itself, with dense and
//!   sparse FLOPs accounting;
//! * [`cross_entropy`], [`mse`], [`Adam`], [`Sgd`], [`train_classifier`],
//!   [`train_regressor`] — offline supervised training;
//! * [`prune_magnitude`], [`prune_neurons`], [`prune_two_stage`] — the
//!   paper's two-stage compression;
//! * [`permutation_importance`], [`recursive_feature_elimination`] — the
//!   RFE feature selection of Table I;
//! * [`Normalizer`], [`ClassificationData`], [`RegressionData`] — dataset
//!   plumbing shared by offline training and the runtime controller.
//!
//! # Examples
//!
//! Train a classifier and compress it:
//!
//! ```
//! use rand::SeedableRng;
//! use tinynn::{
//!     prune_two_stage, train_classifier, ClassificationData, Matrix, Mlp, TrainConfig,
//! };
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // y = argmax over two features.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.9, 0.2], &[0.1, 0.8]]);
//! let data = ClassificationData::new(x, vec![0, 1, 0, 1], 2);
//! let (train, val) = data.split(0.5, &mut rng);
//! let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
//! train_classifier(&mut mlp, &train, &val, &TrainConfig::default());
//! let compact = prune_two_stage(&mlp, 0.5, 0.9);
//! assert!(compact.sparse_flops() <= mlp.flops());
//! ```

#![warn(missing_docs)]

mod data;
mod loss;
mod matrix;
mod metrics;
mod mlp;
mod optim;
mod par;
mod prune;
mod quant;
mod select;
mod sparse;
mod train;

pub use data::{ClassificationData, Normalizer, RegressionData};
pub use loss::{
    cross_entropy, cross_entropy_into, cross_entropy_shard_into, cross_entropy_weighted,
    cross_entropy_weighted_into, cross_entropy_weighted_shard_into, mean_class_weight, mse,
    mse_into, mse_shard_into, softmax, softmax_in_place,
};
pub use matrix::Matrix;
pub use metrics::{accuracy, argmax, confusion_matrix, mape, mape_counted, mean_class_distance};
pub use mlp::{Activation, Dense, ForwardCache, Gradients, InferScratch, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use par::TrainPool;
pub use prune::{prune_magnitude, prune_neurons, prune_two_stage, ZeroMask};
pub use quant::{Int8Net, QuantizedLayer, QuantizedMlp};
pub use select::{
    column_importance, permutation_importance, recursive_feature_elimination, splitmix64, RfeStep,
};
pub use sparse::{CsrMatrix, InferenceNet, SparseLayer, SparseMlp};
pub use train::{
    grad_shards, shard_span, train_classifier, train_classifier_masked,
    train_classifier_parallel_with, train_classifier_with, train_regressor, train_regressor_masked,
    train_regressor_parallel_with, train_regressor_with, TrainConfig, TrainReport, TrainScratch,
};
