//! Optimizers: SGD with momentum and Adam.

use serde::{Deserialize, Serialize};

use crate::mlp::{Gradients, Mlp};

/// A first-order optimizer that applies [`Gradients`] to an [`Mlp`].
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Implementations panic if the gradient shapes do not match the model.
    fn step(&mut self, mlp: &mut Mlp, grads: &Gradients);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in [0, 1).
    pub momentum: f32,
    velocity: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp, grads: &Gradients) {
        if self.velocity.is_empty() {
            self.velocity = grads
                .layers
                .iter()
                .map(|(dw, db)| (vec![0.0; dw.as_slice().len()], vec![0.0; db.len()]))
                .collect();
        }
        assert_eq!(grads.layers.len(), mlp.layers().len(), "gradient/model layer mismatch");
        for (l, (dw, db)) in grads.layers.iter().enumerate() {
            let (vw, vb) = &mut self.velocity[l];
            let layer = &mut mlp.layers_mut()[l];
            for ((w, v), g) in layer.w.as_mut_slice().iter_mut().zip(vw).zip(dw.as_slice()) {
                *v = self.momentum * *v - self.lr * g;
                *w += *v;
            }
            for ((b, v), g) in layer.b.iter_mut().zip(vb).zip(db) {
                *v = self.momentum * *v - self.lr * g;
                *b += *v;
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Epsilon for numerical stability.
    pub eps: f32,
    t: u64,
    moments: Vec<AdamMoments>,
}

/// Per-layer Adam state: first/second moments for weights, then biases.
type AdamMoments = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

impl Adam {
    /// Creates an Adam optimizer with the standard β parameters.
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, moments: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp, grads: &Gradients) {
        if self.moments.is_empty() {
            self.moments = grads
                .layers
                .iter()
                .map(|(dw, db)| {
                    (
                        vec![0.0; dw.as_slice().len()],
                        vec![0.0; dw.as_slice().len()],
                        vec![0.0; db.len()],
                        vec![0.0; db.len()],
                    )
                })
                .collect();
        }
        assert_eq!(grads.layers.len(), mlp.layers().len(), "gradient/model layer mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (l, (dw, db)) in grads.layers.iter().enumerate() {
            let (mw, vw, mb, vb) = &mut self.moments[l];
            let layer = &mut mlp.layers_mut()[l];
            for (((w, m), v), g) in layer
                .w
                .as_mut_slice()
                .iter_mut()
                .zip(mw.iter_mut())
                .zip(vw.iter_mut())
                .zip(dw.as_slice())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            for (((b, m), v), g) in layer.b.iter_mut().zip(mb.iter_mut()).zip(vb.iter_mut()).zip(db)
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *b -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = 2x with both optimizers; the loss must fall substantially.
    fn fit(opt: &mut dyn Optimizer) -> f32 {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[1, 8, 1], &mut rng);
        let x = Matrix::from_rows(&[&[-1.0], &[-0.5], &[0.0], &[0.5], &[1.0]]);
        let y = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let mut last = f32::MAX;
        for _ in 0..400 {
            let cache = mlp.forward_train(&x);
            let (loss, d) = mse(cache.output(), &y);
            let grads = mlp.backward(&cache, &d);
            opt.step(&mut mlp, &grads);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_a_line() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!(fit(&mut opt) < 0.01);
    }

    #[test]
    fn adam_converges_on_a_line() {
        let mut opt = Adam::new(0.01);
        assert!(fit(&mut opt) < 0.01);
    }

    #[test]
    fn adam_step_changes_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[2, 3, 1], &mut rng);
        let before = mlp.layers()[0].w.clone();
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let cache = mlp.forward_train(&x);
        let (_, d) = mse(cache.output(), &[5.0]);
        let grads = mlp.backward(&cache, &d);
        let mut opt = Adam::new(0.01);
        opt.step(&mut mlp, &grads);
        assert_ne!(before, mlp.layers()[0].w);
    }
}
