//! Model compression: magnitude pruning and neuron-level pruning.
//!
//! Section IV-C of the paper compresses the combined network in two stages:
//! fine-grained pruning zeroes the smallest fraction `x1` of weights, then
//! neuron-level pruning removes any hidden neuron whose incoming weight
//! vector is at least `x2` zeros. The paper selects `(x1, x2) = (0.6, 0.9)`.

use crate::mlp::{Dense, Mlp};

/// Zeroes the globally smallest `frac` of weights by magnitude. Returns the
/// number of weights zeroed.
///
/// # Panics
///
/// Panics if `frac` is outside [0, 1].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{prune_magnitude, Mlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[5, 12, 6], &mut rng);
/// let before = mlp.nonzero_weights();
/// prune_magnitude(&mut mlp, 0.6);
/// assert!(mlp.nonzero_weights() <= before * 2 / 5 + 1);
/// ```
pub fn prune_magnitude(mlp: &mut Mlp, frac: f32) -> usize {
    assert!((0.0..=1.0).contains(&frac), "pruning fraction must be in [0, 1]");
    if frac == 0.0 {
        return 0;
    }
    // The quota applies per layer: trained layers have very different weight
    // scales, and one global threshold can annihilate a whole layer (a dead
    // ReLU network cannot be recovered by fine-tuning).
    let mut zeroed = 0;
    for layer in mlp.layers_mut() {
        let mut magnitudes: Vec<f32> = layer.w.as_slice().iter().map(|v| v.abs()).collect();
        magnitudes.sort_by(f32::total_cmp);
        let cut = ((magnitudes.len() as f32 * frac) as usize).min(magnitudes.len());
        if cut == 0 {
            continue;
        }
        let threshold = magnitudes[cut - 1];
        for v in layer.w.as_mut_slice() {
            if *v != 0.0 && v.abs() <= threshold {
                *v = 0.0;
                zeroed += 1;
            }
        }
    }
    zeroed
}

/// Removes hidden neurons whose incoming weight row contains at least
/// `zero_frac` zeros, rebuilding a compact network. Input and output widths
/// are preserved, and at least one neuron always survives per layer.
/// Returns the compacted model and the number of neurons removed.
///
/// # Panics
///
/// Panics if `zero_frac` is outside (0, 1].
pub fn prune_neurons(mlp: &Mlp, zero_frac: f32) -> (Mlp, usize) {
    assert!(zero_frac > 0.0 && zero_frac <= 1.0, "neuron-pruning threshold must be in (0, 1]");
    let mut layers: Vec<Dense> = mlp.layers().to_vec();
    let mut removed_total = 0;
    // Hidden neurons are the outputs of every layer but the last.
    for l in 0..layers.len().saturating_sub(1) {
        let layer = &layers[l];
        let cols = layer.w.cols();
        let mut keep: Vec<usize> = (0..layer.w.rows())
            .filter(|&r| {
                let zeros = layer.w.row(r).iter().filter(|v| **v == 0.0).count();
                (zeros as f32) < zero_frac * cols as f32
            })
            .collect();
        if keep.is_empty() {
            // Keep the row with the most non-zeros so the network stays
            // connected.
            let best = (0..layer.w.rows())
                .max_by_key(|&r| layer.w.row(r).iter().filter(|v| **v != 0.0).count())
                .expect("layers are non-empty");
            keep.push(best);
        }
        removed_total += layer.w.rows() - keep.len();
        if keep.len() == layer.w.rows() {
            continue;
        }
        // Shrink this layer's outputs...
        let new_w = layers[l].w.select_rows(&keep);
        let new_b: Vec<f32> = keep.iter().map(|&r| layers[l].b[r]).collect();
        layers[l].w = new_w;
        layers[l].b = new_b;
        // ...and the next layer's inputs.
        let next_w = layers[l + 1].w.select_columns(&keep);
        layers[l + 1].w = next_w;
    }
    (Mlp::from_layers(layers), removed_total)
}

/// A per-layer mask of frozen-zero weights, used to keep pruned weights at
/// zero during fine-tuning.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{prune_magnitude, Mlp, ZeroMask};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// prune_magnitude(&mut mlp, 0.5);
/// let mask = ZeroMask::from_zeros(&mlp);
/// // ... fine-tune, then re-apply the mask to restore sparsity:
/// mask.apply(&mut mlp);
/// assert_eq!(mlp.nonzero_weights(), mask.nonzero_count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroMask {
    /// Per layer, `true` marks a weight frozen at zero.
    frozen: Vec<Vec<bool>>,
}

impl ZeroMask {
    /// Captures the current zero pattern of a model.
    pub fn from_zeros(mlp: &Mlp) -> ZeroMask {
        ZeroMask {
            frozen: mlp
                .layers()
                .iter()
                .map(|l| l.w.as_slice().iter().map(|v| *v == 0.0).collect())
                .collect(),
        }
    }

    /// Re-zeroes every frozen weight (call after each optimizer step or at
    /// the end of fine-tuning).
    ///
    /// # Panics
    ///
    /// Panics if the model's shape no longer matches the mask.
    pub fn apply(&self, mlp: &mut Mlp) {
        assert_eq!(self.frozen.len(), mlp.layers().len(), "mask/model layer mismatch");
        for (layer, mask) in mlp.layers_mut().iter_mut().zip(&self.frozen) {
            assert_eq!(layer.w.as_slice().len(), mask.len(), "mask/layer size mismatch");
            for (w, &frozen) in layer.w.as_mut_slice().iter_mut().zip(mask) {
                if frozen {
                    *w = 0.0;
                }
            }
        }
    }

    /// Number of weights the mask leaves free (non-frozen).
    pub fn nonzero_count(&self) -> u64 {
        self.frozen.iter().map(|l| l.iter().filter(|f| !**f).count() as u64).sum()
    }
}

/// Applies the paper's two-stage pruning: magnitude pruning at `x1`, then
/// neuron pruning at `x2`. Returns the compacted model.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{prune_two_stage, Mlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[5, 12, 12, 6], &mut rng);
/// let pruned = prune_two_stage(&mlp, 0.6, 0.9);
/// assert!(pruned.sparse_flops() < mlp.flops());
/// assert_eq!(pruned.input_size(), 5);
/// assert_eq!(pruned.output_size(), 6);
/// ```
pub fn prune_two_stage(mlp: &Mlp, x1: f32, x2: f32) -> Mlp {
    let mut pruned = mlp.clone();
    prune_magnitude(&mut pruned, x1);
    let (compact, _) = prune_neurons(&pruned, x2);
    compact
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::mlp::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn magnitude_pruning_zeroes_expected_fraction() {
        let mut mlp = Mlp::new(&[10, 20, 20, 6], &mut rng());
        let total = mlp.weight_count();
        prune_magnitude(&mut mlp, 0.6);
        let nz = mlp.nonzero_weights();
        let kept_frac = nz as f64 / total as f64;
        assert!((kept_frac - 0.4).abs() < 0.02, "kept {kept_frac}");
    }

    #[test]
    fn magnitude_pruning_removes_smallest_first() {
        let mut mlp = Mlp::new(&[2, 2, 1], &mut rng());
        mlp.layers_mut()[0].w = Matrix::from_rows(&[&[0.01, 5.0], &[0.02, 4.0]]);
        mlp.layers_mut()[1].w = Matrix::from_rows(&[&[3.0, 0.03]]);
        prune_magnitude(&mut mlp, 0.5);
        assert_eq!(mlp.layers()[0].w[(0, 0)], 0.0);
        assert_eq!(mlp.layers()[0].w[(0, 1)], 5.0);
        assert_eq!(mlp.layers()[1].w[(0, 0)], 3.0);
        assert_eq!(mlp.layers()[1].w[(0, 1)], 0.0);
    }

    #[test]
    fn neuron_pruning_removes_dead_rows_and_fixes_shapes() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[3, 4, 2], &mut r);
        // Kill neuron 1 and 3 of the hidden layer (rows of w0).
        for c in 0..3 {
            mlp.layers_mut()[0].w[(1, c)] = 0.0;
            mlp.layers_mut()[0].w[(3, c)] = 0.0;
        }
        let (compact, removed) = prune_neurons(&mlp, 0.9);
        assert_eq!(removed, 2);
        assert_eq!(compact.sizes(), vec![3, 2, 2]);
        // Forward still works with consistent shapes.
        let y = compact.forward(&Matrix::zeros(1, 3));
        assert_eq!(y.cols(), 2);
    }

    #[test]
    fn neuron_pruning_preserves_function_when_rows_are_dead() {
        // A neuron whose entire incoming row is zero contributes only its
        // bias; zero the bias too and removal must not change the output.
        let mut r = rng();
        let mut mlp = Mlp::new(&[3, 4, 2], &mut r);
        for c in 0..3 {
            mlp.layers_mut()[0].w[(2, c)] = 0.0;
        }
        mlp.layers_mut()[0].b[2] = 0.0;
        let x = Matrix::from_rows(&[&[0.3, -0.8, 0.5]]);
        let before = mlp.forward(&x);
        let (compact, removed) = prune_neurons(&mlp, 1.0);
        assert_eq!(removed, 1);
        let after = compact.forward(&x);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn neuron_pruning_never_empties_a_layer() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 3, 1], &mut r);
        for row in 0..3 {
            for c in 0..2 {
                mlp.layers_mut()[0].w[(row, c)] = 0.0;
            }
        }
        let (compact, removed) = prune_neurons(&mlp, 0.5);
        assert_eq!(removed, 2);
        assert_eq!(compact.sizes(), vec![2, 1, 1]);
    }

    #[test]
    fn output_layer_neurons_are_never_pruned() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 3, 4], &mut r);
        for c in 0..3 {
            mlp.layers_mut()[1].w[(0, c)] = 0.0;
        }
        let (compact, _) = prune_neurons(&mlp, 0.5);
        assert_eq!(compact.output_size(), 4, "class outputs must survive");
    }

    #[test]
    fn two_stage_pipeline_shrinks_flops_substantially() {
        let mlp = Mlp::new(&[5, 12, 12, 12, 6], &mut rng());
        let pruned = prune_two_stage(&mlp, 0.6, 0.9);
        assert!(
            pruned.sparse_flops() as f64 <= mlp.flops() as f64 * 0.45,
            "two-stage pruning should cut FLOPs by >55%: {} -> {}",
            mlp.flops(),
            pruned.sparse_flops()
        );
    }

    #[test]
    fn pruning_preserves_activations() {
        let mut r = rng();
        let mlp = Mlp::new(&[3, 5, 2], &mut r);
        let pruned = prune_two_stage(&mlp, 0.3, 0.9);
        assert_eq!(pruned.layers()[0].activation, Activation::Relu);
        assert_eq!(pruned.layers().last().unwrap().activation, Activation::Identity);
    }
}
