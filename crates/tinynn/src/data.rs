//! Dataset containers, normalization and splitting.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A labeled classification dataset (rows of `x` are samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationData {
    /// Feature rows.
    pub x: Matrix,
    /// Class label per row.
    pub y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl ClassificationData {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if row counts mismatch or a label is out of range.
    pub fn new(x: Matrix, y: Vec<usize>, num_classes: usize) -> ClassificationData {
        assert_eq!(x.rows(), y.len(), "one label per sample");
        assert!(
            y.iter().all(|&l| l < num_classes),
            "labels must be below num_classes ({num_classes})"
        );
        ClassificationData { x, y, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Returns `true` if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Random split into `(train, validation)` with `val_frac` of samples in
    /// the validation part.
    ///
    /// # Panics
    ///
    /// Panics if `val_frac` is not in (0, 1).
    pub fn split(
        &self,
        val_frac: f64,
        rng: &mut impl Rng,
    ) -> (ClassificationData, ClassificationData) {
        let (train_idx, val_idx) = split_indices(self.len(), val_frac, rng);
        (
            ClassificationData {
                x: self.x.select_rows(&train_idx),
                y: train_idx.iter().map(|&i| self.y[i]).collect(),
                num_classes: self.num_classes,
            },
            ClassificationData {
                x: self.x.select_rows(&val_idx),
                y: val_idx.iter().map(|&i| self.y[i]).collect(),
                num_classes: self.num_classes,
            },
        )
    }
}

/// A scalar-target regression dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionData {
    /// Feature rows.
    pub x: Matrix,
    /// Target value per row.
    pub y: Vec<f32>,
}

impl RegressionData {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if row counts mismatch.
    pub fn new(x: Matrix, y: Vec<f32>) -> RegressionData {
        assert_eq!(x.rows(), y.len(), "one target per sample");
        RegressionData { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Returns `true` if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Random split into `(train, validation)`.
    ///
    /// # Panics
    ///
    /// Panics if `val_frac` is not in (0, 1).
    pub fn split(&self, val_frac: f64, rng: &mut impl Rng) -> (RegressionData, RegressionData) {
        let (train_idx, val_idx) = split_indices(self.len(), val_frac, rng);
        (
            RegressionData {
                x: self.x.select_rows(&train_idx),
                y: train_idx.iter().map(|&i| self.y[i]).collect(),
            },
            RegressionData {
                x: self.x.select_rows(&val_idx),
                y: val_idx.iter().map(|&i| self.y[i]).collect(),
            },
        )
    }
}

fn split_indices(n: usize, val_frac: f64, rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&val_frac) && val_frac > 0.0, "val_frac must be in (0, 1)");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let val_len = ((n as f64 * val_frac).round() as usize).clamp(1, n.saturating_sub(1).max(1));
    let val = idx.split_off(n - val_len);
    (idx, val)
}

/// Per-feature standardization (z-score) fitted on training data and applied
/// to anything that flows into the model — including single runtime feature
/// vectors inside the DVFS controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits mean and standard deviation per column.
    ///
    /// # Panics
    ///
    /// Panics on an empty matrix.
    pub fn fit(x: &Matrix) -> Normalizer {
        assert!(x.rows() > 0, "cannot fit a normalizer on an empty matrix");
        let n = x.rows() as f32;
        let cols = x.cols();
        let mut mean = vec![0.0f32; cols];
        for i in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; cols];
        for i in 0..x.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(x.row(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        Normalizer { mean, std }
    }

    /// Number of features this normalizer was fitted on.
    pub fn num_features(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes a matrix (rows are samples).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "feature count mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Per-column means (the compiled-plan path fuses these into its
    /// arena and must replicate [`Normalizer::transform_one`] exactly).
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-column standard deviations (see [`Normalizer::mean`]).
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Standardizes one feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn transform_one(&self, x: &mut [f32]) {
        assert_eq!(x.len(), self.mean.len(), "feature count mismatch");
        for ((v, &m), &s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Restricts the normalizer to the given feature columns (used after
    /// feature selection).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, cols: &[usize]) -> Normalizer {
        Normalizer {
            mean: cols.iter().map(|&c| self.mean[c]).collect(),
            std: cols.iter().map(|&c| self.std[c]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizer_standardizes() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        let n = Normalizer::fit(&x);
        let z = n.transform(&x);
        // Column means become 0, stds 1.
        for c in 0..2 {
            let mean = (z[(0, c)] + z[(1, c)]) / 2.0;
            assert!(mean.abs() < 1e-6);
            assert!((z[(0, c)].abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn transform_one_matches_matrix_path() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[5.0, 4.0], &[3.0, 9.0]]);
        let n = Normalizer::fit(&x);
        let z = n.transform(&x);
        let mut one = [5.0f32, 4.0];
        n.transform_one(&mut one);
        assert_eq!(&one[..], z.row(1));
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0]]);
        let n = Normalizer::fit(&x);
        let z = n.transform(&x);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalizer_select_subsets_features() {
        let x = Matrix::from_rows(&[&[1.0, 100.0, 3.0], &[3.0, 300.0, 5.0]]);
        let n = Normalizer::fit(&x);
        let sub = n.select(&[2, 0]);
        assert_eq!(sub.num_features(), 2);
        let mut v = [4.0f32, 2.0];
        sub.transform_one(&mut v);
        assert!(v.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn classification_split_partitions() {
        let x = Matrix::from_vec(10, 1, (0..10).map(|v| v as f32).collect());
        let y = vec![0usize; 10];
        let data = ClassificationData::new(x, y, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, val) = data.split(0.3, &mut rng);
        assert_eq!(train.len() + val.len(), 10);
        assert_eq!(val.len(), 3);
        // Partition: every original value appears exactly once.
        let mut all: Vec<f32> = train.x.as_slice().to_vec();
        all.extend_from_slice(val.x.as_slice());
        all.sort_by(f32::total_cmp);
        assert_eq!(all, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn regression_split_partitions() {
        let x = Matrix::from_vec(8, 1, (0..8).map(|v| v as f32).collect());
        let y: Vec<f32> = (0..8).map(|v| v as f32 * 2.0).collect();
        let data = RegressionData::new(x, y);
        let mut rng = StdRng::seed_from_u64(3);
        let (train, val) = data.split(0.25, &mut rng);
        assert_eq!(train.len(), 6);
        assert_eq!(val.len(), 2);
        // Targets track their features through the shuffle.
        for (i, &t) in train.y.iter().enumerate() {
            assert_eq!(t, train.x.row(i)[0] * 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "below num_classes")]
    fn bad_labels_rejected() {
        ClassificationData::new(Matrix::zeros(1, 1), vec![5], 3);
    }
}
