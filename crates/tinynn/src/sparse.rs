//! CSR sparse inference (extension).
//!
//! The dense kernels in `tinynn::matrix` are deliberately branch-free: a
//! per-element `== 0.0` test in the inner loop defeats vectorization for
//! every caller, pruned or not. Pruned-network sparsity instead lives here
//! as an explicit compressed-sparse-row format: [`CsrMatrix`] stores only
//! the non-zero weights, [`SparseMlp`] runs the paper's compressed
//! Decision-maker/Calibrator over it, and [`InferenceNet`] picks the dense
//! or sparse engine per model — the `sparse_flops`-aware path the
//! controller's microsecond budget is modeled on.
//!
//! Skipping exact-zero weights never changes a dot product's value (each
//! skipped term contributes an exact `±0.0`), so the sparse forward agrees
//! with the dense forward on every finite input — enforced by tests.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::mlp::{Activation, ForwardCache, InferScratch, Mlp};

/// A compressed-sparse-row `f32` matrix: only non-zero values are stored.
///
/// # Examples
///
/// ```
/// use tinynn::{CsrMatrix, Matrix};
///
/// let dense = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0]]);
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.to_dense(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes this row's entries.
    row_ptr: Vec<u32>,
    /// Column of each stored value, ascending within a row.
    col_idx: Vec<u32>,
    /// The non-zero values, row-major.
    vals: Vec<f32>,
}

impl CsrMatrix {
    /// Compresses a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        CsrMatrix { rows: m.rows(), cols: m.cols(), row_ptr, col_idx, vals }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) values.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries stored, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.vals.len() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// The row-pointer array: `row_ptr()[r]..row_ptr()[r+1]` indexes row
    /// `r`'s entries (exposed so compiled decision plans can flatten the
    /// matrix into their own arenas).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index of each stored value, ascending within a row.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The stored non-zero values, row-major.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let orow = out.row_mut(r);
            for (&c, &v) in self.col_idx[start..end].iter().zip(&self.vals[start..end]) {
                orow[c as usize] = v;
            }
        }
        out
    }

    /// Sparse matrix–vector product `self @ x` into a caller-owned buffer.
    /// Each output sums its stored terms in ascending-column order, matching
    /// the dense kernel's value on finite inputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "input width mismatch");
        out.clear();
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0f32;
            for (&c, &v) in self.col_idx[start..end].iter().zip(&self.vals[start..end]) {
                acc += v * x[c as usize];
            }
            out.push(acc);
        }
    }
}

/// One sparse fully connected layer: `y = act(W_sparse @ x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseLayer {
    /// Compressed weights, `out × in`.
    pub w: CsrMatrix,
    /// Bias vector, length `out`.
    pub b: Vec<f32>,
    /// Post-affine activation.
    pub activation: Activation,
}

/// A pruned MLP compiled to CSR for single-sample inference.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tinynn::{prune_magnitude, InferScratch, Mlp, SparseMlp};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[4, 8, 2], &mut rng);
/// prune_magnitude(&mut mlp, 0.6);
/// let sparse = SparseMlp::from_mlp(&mlp);
/// assert_eq!(sparse.flops(), mlp.sparse_flops());
/// let mut scratch = InferScratch::new();
/// let x = [0.3f32, -0.5, 0.8, 0.1];
/// assert_eq!(sparse.forward_one_into(&x, &mut scratch), &mlp.forward_one(&x)[..]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMlp {
    layers: Vec<SparseLayer>,
}

impl SparseMlp {
    /// Compiles a dense model to CSR.
    pub fn from_mlp(mlp: &Mlp) -> SparseMlp {
        let layers = mlp
            .layers()
            .iter()
            .map(|l| SparseLayer {
                w: CsrMatrix::from_dense(&l.w),
                b: l.b.clone(),
                activation: l.activation,
            })
            .collect();
        SparseMlp { layers }
    }

    /// The compiled layers.
    pub fn layers(&self) -> &[SparseLayer] {
        &self.layers
    }

    /// FLOPs per inference counting only stored weights — by construction
    /// equal to [`Mlp::sparse_flops`] of the source model.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(|l| 2 * l.w.nnz() as u64).sum()
    }

    /// Stored-weight fraction across all layers, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.w.rows() * l.w.cols()).sum();
        let nnz: usize = self.layers.iter().map(|l| l.w.nnz()).sum();
        if total == 0 {
            0.0
        } else {
            nnz as f64 / total as f64
        }
    }

    /// Output width (rows of the last layer's weight matrix).
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.w.rows())
    }

    /// Single-sample forward pass through reusable scratch buffers;
    /// allocation-free once warm, value-equal to the dense forward.
    pub fn forward_one_into<'s>(&self, x: &[f32], scratch: &'s mut InferScratch) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for layer in &self.layers {
            layer.w.mul_vec_into(&scratch.a, &mut scratch.b);
            for (v, &b) in scratch.b.iter_mut().zip(&layer.b) {
                *v += b;
                if layer.activation == Activation::Relu {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        &scratch.a
    }
}

/// Threshold below which [`InferenceNet::compile`] picks the CSR engine:
/// at half density the skipped multiplies outweigh the index indirection.
const SPARSE_DENSITY_THRESHOLD: f64 = 0.5;

#[derive(Debug, Clone)]
enum Engine {
    Dense(Mlp),
    Sparse(SparseMlp),
}

/// A model compiled for the controller hot path: dense or CSR engine plus
/// owned scratch, so every [`InferenceNet::infer`] call is allocation-free.
///
/// The engine choice never changes the produced values — both paths are
/// value-equal to [`Mlp::forward_one`] — only the work done per call.
#[derive(Debug, Clone)]
pub struct InferenceNet {
    engine: Engine,
    scratch: InferScratch,
    batch: ForwardCache,
}

impl InferenceNet {
    /// Compiles a model, selecting CSR when enough weights are pruned away
    /// (density below 0.5) and the branch-free dense kernel otherwise.
    pub fn compile(mlp: &Mlp) -> InferenceNet {
        let sparse = SparseMlp::from_mlp(mlp);
        let engine = if sparse.density() < SPARSE_DENSITY_THRESHOLD {
            Engine::Sparse(sparse)
        } else {
            Engine::Dense(mlp.clone())
        };
        InferenceNet { engine, scratch: InferScratch::new(), batch: ForwardCache::empty() }
    }

    /// Whether the CSR engine was selected.
    pub fn is_sparse(&self) -> bool {
        matches!(self.engine, Engine::Sparse(_))
    }

    /// FLOPs per inference on the selected engine (sparse-aware).
    pub fn flops(&self) -> u64 {
        match &self.engine {
            Engine::Dense(m) => m.flops(),
            Engine::Sparse(s) => s.flops(),
        }
    }

    /// Number of outputs per sample.
    pub fn output_size(&self) -> usize {
        match &self.engine {
            Engine::Dense(m) => m.output_size(),
            Engine::Sparse(s) => s.output_size(),
        }
    }

    /// Single-sample inference; same values as [`Mlp::forward_one`] on the
    /// source model, without per-call allocation.
    pub fn infer(&mut self, x: &[f32]) -> &[f32] {
        match &self.engine {
            Engine::Dense(m) => m.forward_one_into(x, &mut self.scratch),
            Engine::Sparse(s) => s.forward_one_into(x, &mut self.scratch),
        }
    }

    /// Micro-batch inference for the decision-serving path: every row of
    /// `x` is one request; `out` is reshaped to one output row per request.
    ///
    /// Bit-identical to calling [`InferenceNet::infer`] on each row in
    /// order (proptest-enforced): the dense engine runs the batched
    /// transposed-weight kernel ([`Mlp::forward_batch_into`]), which
    /// accumulates over `k` in the same ascending order as the vector
    /// kernel; the CSR engine has no batched kernel, so it runs the rows
    /// through the single-sample path.
    pub fn infer_batch_into(&mut self, x: &Matrix, out: &mut Matrix) {
        match &self.engine {
            Engine::Dense(m) => {
                let y = m.forward_batch_into(x, &mut self.batch);
                out.reshape(y.rows(), y.cols());
                out.as_mut_slice().copy_from_slice(y.as_slice());
            }
            Engine::Sparse(s) => {
                out.reshape(x.rows(), s.output_size());
                for r in 0..x.rows() {
                    let y = s.forward_one_into(x.row(r), &mut self.scratch);
                    out.row_mut(r).copy_from_slice(y);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::prune_magnitude;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Mlp {
        let mut rng = StdRng::seed_from_u64(11);
        Mlp::new(&[5, 12, 12, 6], &mut rng)
    }

    #[test]
    fn csr_roundtrip_and_counts() {
        let dense = Matrix::from_rows(&[&[0.0, 1.5, 0.0], &[0.0, 0.0, 0.0], &[2.0, 0.0, -3.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!((csr.rows(), csr.cols()), (3, 3));
        assert!((csr.density() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn sparse_matvec_matches_dense() {
        let dense = Matrix::from_rows(&[&[0.5, 0.0, -1.0], &[0.0, 2.0, 0.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        let x = [1.0f32, -2.0, 3.0];
        let mut out = Vec::new();
        csr.mul_vec_into(&x, &mut out);
        for (r, &got) in out.iter().enumerate() {
            let want: f32 = dense.row(r).iter().zip(&x).map(|(&w, &v)| w * v).sum();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn pruned_sparse_forward_equals_dense_forward() {
        let mut mlp = model();
        prune_magnitude(&mut mlp, 0.7);
        let sparse = SparseMlp::from_mlp(&mlp);
        let mut scratch = InferScratch::new();
        let x = [0.3f32, -0.8, 1.2, 0.0, -0.1];
        let got = sparse.forward_one_into(&x, &mut scratch).to_vec();
        assert_eq!(got, mlp.forward_one(&x));
        assert_eq!(sparse.flops(), mlp.sparse_flops());
        assert!(sparse.density() < 0.5);
    }

    #[test]
    fn inference_net_picks_engine_by_density() {
        let dense_model = model();
        let net = InferenceNet::compile(&dense_model);
        assert!(!net.is_sparse(), "unpruned model stays dense");
        assert_eq!(net.flops(), dense_model.flops());

        let mut pruned = model();
        prune_magnitude(&mut pruned, 0.8);
        let net = InferenceNet::compile(&pruned);
        assert!(net.is_sparse(), "heavily pruned model compiles to CSR");
        assert_eq!(net.flops(), pruned.sparse_flops());
    }

    #[test]
    fn infer_batch_matches_sequential_singles_on_both_engines() {
        let rows: [&[f32]; 3] =
            [&[0.7, -0.3, 0.9, -1.5, 0.2], &[0.0; 5], &[-2.0, 1.0, 0.5, 0.25, -0.125]];
        let x = Matrix::from_rows(&rows);
        for prune in [0.0, 0.8] {
            let mut mlp = model();
            if prune > 0.0 {
                prune_magnitude(&mut mlp, prune);
            }
            let mut net = InferenceNet::compile(&mlp);
            let mut out = Matrix::zeros(0, 0);
            net.infer_batch_into(&x, &mut out);
            assert_eq!((out.rows(), out.cols()), (3, net.output_size()));
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(out.row(r), net.infer(row), "row {r} at prune {prune}");
            }
            // An empty batch reshapes the output and touches nothing else.
            net.infer_batch_into(&Matrix::zeros(0, 5), &mut out);
            assert_eq!(out.rows(), 0);
        }
    }

    #[test]
    fn inference_net_matches_forward_one_on_both_engines() {
        let x = [0.7f32, -0.3, 0.9, -1.5, 0.2];
        for prune in [0.0, 0.8] {
            let mut mlp = model();
            if prune > 0.0 {
                prune_magnitude(&mut mlp, prune);
            }
            let mut net = InferenceNet::compile(&mlp);
            for _ in 0..3 {
                assert_eq!(net.infer(&x), &mlp.forward_one(&x)[..]);
            }
        }
    }
}
